//! Single-writer sharding adapter over `ccn_sim` content stores.
//!
//! The simulator's O(1) stores ([`ccn_sim::store::LruStore`],
//! [`ccn_sim::store::LfuStore`], …) are deliberately not thread-safe:
//! their intrusive lists and frequency buckets assume one mutator.
//! Instead of rewriting them lock-free, a [`ShardedStore`] partitions
//! the content-id space across worker shards, gives each shard its own
//! store *owned by a dedicated thread*, and reaches every shard through
//! a bounded queue. One writer per store means the stores are reused
//! unchanged; bounded queues mean overload surfaces as backpressure
//! ([`ShardHandle::try_job`] fails) instead of unbounded memory growth.
//!
//! # The batched pipeline
//!
//! The queue is the vendored [`crate::ring`] MPSC ring, not a
//! `std::sync::mpsc::sync_channel`: the uncontended enqueue is a
//! couple of atomics, and a *run* of jobs bound for the same shard
//! moves through **one** claim operation
//! ([`ShardHandle::try_submit_batch`]) instead of one queue hop per
//! job. Workers drain in bulk ([`crate::ring::Consumer::pop_batch`])
//! and idle with a configurable spin → yield → park escalation
//! ([`IdleStrategy`]) instead of blocking inside a channel `recv()`.
//!
//! # Completion batching
//!
//! Synchronous ops ([`ShardHandle::apply`],
//! [`ShardHandle::apply_batch`], [`ShardHandle::shard_contents`])
//! carry no mutex or condvar: each submitter checks a completion set
//! out of a pool — one SPSC completion ring per shard — workers
//! publish tagged replies into the submitter's lane for their shard,
//! and the submitter drains them in bulk. A batched submitter
//! ([`ShardHandle::apply_batch`]) therefore never blocks per-op: a
//! whole window of churn is in flight before the first reply is
//! awaited, and tags restore input order across shards. Once the
//! pool is warm the paths allocate nothing per call.
//!
//! # Producer seal protocol (SPSC demotion)
//!
//! Rings start multi-producer. A store built in [`RingMode::Auto`]
//! counts registered producers ([`ShardHandle::register_producer`])
//! and *seals* at the first job submission (or an explicit
//! [`ShardHandle::seal_producers`]): exactly one registrant demotes
//! every shard ring to the SPSC fast path — the claim CAS becomes a
//! plain store — otherwise the rings stay MPSC. Registration after
//! an SPSC seal is refused, and the seal's critical section gives
//! demotion a happens-before edge over every subsequent push.

use std::sync::atomic::{fence, AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

use ccn_sim::store::ContentStore;
use ccn_sim::ContentId;

use crate::affinity::{pin_current_thread, PinOutcome};
use crate::error::EngineError;
use crate::pad::CachePadded;
use crate::ring::{ring_with, Consumer, Mode, Producer};

/// Poison-tolerant lock: a worker that panicked while holding one of
/// the engine's mutexes (fault injection makes that survivable rather
/// than hypothetical) must not cascade the panic into every other
/// thread touching the lock. The protected data here (reply slots,
/// pooled `Arc`s, fault logs) is valid at every instruction, so the
/// poison flag carries no information — recover the guard.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// SplitMix64 finalizer — the same scrambling step the placement layer
/// uses, so shard routing is uniform even for the sequential rank ids
/// the paper's model hands out.
pub(crate) fn mix(mut v: u64) -> u64 {
    v = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    v = (v ^ (v >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    v = (v ^ (v >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    v ^ (v >> 31)
}

/// Maps a content id to the shard that owns it (stable for a fixed
/// shard count; every caller — provisioning, routing, benchmarks —
/// must agree on this function).
#[must_use]
pub fn shard_of(content: ContentId, shards: usize) -> usize {
    (mix(content.rank()) % shards as u64) as usize
}

/// How a shard worker waits when its queue runs dry.
///
/// The escalation is spin → yield → park: busy-spin `spins` times
/// (lowest wake latency, burns the core), then `thread::yield_now()`
/// `yields` times (gives the producer the core — essential on
/// single-core hosts), then park until a producer wakes it. Parking
/// uses a bounded timeout as a belt-and-braces backstop, so a lost
/// wake costs at most [`IdleStrategy::PARK_TIMEOUT`], never a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleStrategy {
    /// Busy-spin iterations before yielding.
    pub spins: u32,
    /// `yield_now` iterations before parking.
    pub yields: u32,
    /// Whether to park after spinning and yielding; `false` keeps
    /// yielding forever (no wake protocol on the producer side ever
    /// needed, but an idle shard keeps getting scheduled).
    pub park: bool,
}

impl IdleStrategy {
    /// Backstop timeout for a parked worker: even a lost wake (or a
    /// producer that crashed between enqueue and wake) only delays
    /// the queue by this much.
    pub const PARK_TIMEOUT: Duration = Duration::from_millis(1);

    /// The default: short spin, brief yield phase, then park. Cheap
    /// on idle clusters, sub-microsecond wake on busy ones.
    #[must_use]
    pub fn spin_then_park() -> Self {
        Self { spins: 64, yields: 16, park: true }
    }

    /// Never park: spin briefly, then yield forever. Lowest latency
    /// jitter on multi-core hosts with cores to burn.
    #[must_use]
    pub fn yielding() -> Self {
        Self { spins: 64, yields: 16, park: false }
    }

    /// Parses a CLI-style name: `spin-then-park`, `yield`, or
    /// `spin:S,yield:Y[,park]` for explicit knobs.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "spin-then-park" | "park" => Ok(Self::spin_then_park()),
            "yield" | "yielding" => Ok(Self::yielding()),
            other => {
                let mut strategy = Self { spins: 0, yields: 0, park: false };
                let mut recognized = false;
                for part in other.split(',') {
                    if part == "park" {
                        strategy.park = true;
                        recognized = true;
                    } else if let Some(n) = part.strip_prefix("spin:") {
                        strategy.spins =
                            n.parse().map_err(|e| format!("bad spin count {n:?}: {e}"))?;
                        recognized = true;
                    } else if let Some(n) = part.strip_prefix("yield:") {
                        strategy.yields =
                            n.parse().map_err(|e| format!("bad yield count {n:?}: {e}"))?;
                        recognized = true;
                    } else {
                        return Err(format!(
                            "unknown idle strategy {other:?}: expected spin-then-park, yield, \
                             or spin:S,yield:Y[,park]"
                        ));
                    }
                }
                if recognized {
                    Ok(strategy)
                } else {
                    Err(format!("empty idle strategy {other:?}"))
                }
            }
        }
    }

    /// Canonical name for reports (`spin-then-park`, `yield`, or the
    /// explicit `spin:S,yield:Y[,park]` form).
    #[must_use]
    pub fn name(&self) -> String {
        if *self == Self::spin_then_park() {
            "spin-then-park".to_owned()
        } else if *self == Self::yielding() {
            "yield".to_owned()
        } else {
            let mut name = format!("spin:{},yield:{}", self.spins, self.yields);
            if self.park {
                name.push_str(",park");
            }
            name
        }
    }
}

impl Default for IdleStrategy {
    fn default() -> Self {
        Self::spin_then_park()
    }
}

/// Reply payload for the synchronous shard ops.
enum Reply {
    /// `apply` answer: was the content already present? `tag` is the
    /// submitter-chosen index, so a batch spanning shards can restore
    /// input order however the per-shard completions interleave.
    Hit { tag: u32, hit: bool },
    /// `shard_contents` answer.
    Contents(Vec<ContentId>),
    /// `replace_store` answer: the old store has been retired and the
    /// worker now serves from the replacement.
    Replaced,
}

/// Capacity of each completion ring — also the apply-batch window
/// (max replies in flight per lane), so a worker's publish can stall
/// only while the submitter is actively draining.
const COMPLETION_CAPACITY: usize = 256;

/// One submitter's reply channel from one shard worker. The ring is
/// SPSC by construction: exactly one worker (the lane's shard) ever
/// publishes into it, and the lane is owned exclusively by whoever
/// checked the set out of the pool.
struct CompletionLane {
    tx: Producer<Reply>,
    rx: Consumer<Reply>,
}

/// Per-submitter completion queues, one lane per shard. Pooled and
/// reused — replaces the old pooled `Mutex<Option<Reply>>`+`Condvar`
/// slots, so completion costs two atomics instead of a lock and a
/// condvar wake, and batched submitters drain replies in bulk.
struct CompletionSet {
    lanes: Vec<CompletionLane>,
    /// Reusable per-shard submission runs for `apply_batch`: the
    /// `(content, tag)` ops destined for each shard in the current
    /// window. Pooled with the set so a warm batch submitter builds
    /// its shard runs without allocating.
    pending: Vec<Vec<(ContentId, u32)>>,
    /// Reusable bulk-drain buffer for completion replies.
    drained: Vec<Reply>,
}

impl CompletionSet {
    fn new(shards: usize) -> Self {
        let lanes = (0..shards)
            .map(|_| {
                // SPSC is sound here without any seal protocol: the
                // only thread that ever pushes into a lane is the
                // worker of the shard the lane indexes, and workers
                // process their queue serially.
                let (tx, rx) = ring_with(COMPLETION_CAPACITY, Mode::Spsc);
                CompletionLane { tx, rx }
            })
            .collect();
        Self {
            lanes,
            pending: (0..shards).map(|_| Vec::new()).collect(),
            drained: Vec::with_capacity(COMPLETION_CAPACITY),
        }
    }
}

/// Worker-side publish: retries until the lane has room (the
/// submitter is draining, so room appears).
fn publish_reply(done: &Producer<Reply>, mut reply: Reply) {
    loop {
        match done.try_push(reply) {
            Ok(()) => return,
            Err(returned) => {
                reply = returned;
                std::thread::yield_now();
            }
        }
    }
}

/// Submitter-side wait for a single reply: spin briefly, then yield.
/// No park/wake protocol is needed — the worker is already awake
/// (it is processing the message we are waiting on).
fn await_reply(rx: &mut Consumer<Reply>) -> Reply {
    let mut spins = 0u32;
    loop {
        if let Some(reply) = rx.pop() {
            return reply;
        }
        if spins < 64 {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

enum ShardMsg<J> {
    /// An asynchronous unit of work handled by the engine's callback.
    Job(J),
    /// Synchronous churn op: hit → touch; miss → insert when `insert`
    /// is set, otherwise the store is left untouched (a pure probe).
    /// Publishes `Reply::Hit` tagged with `tag` into `done`.
    Apply { content: ContentId, insert: bool, tag: u32, done: Producer<Reply> },
    /// Synchronous eviction-order snapshot of one shard's store.
    Snapshot { done: Producer<Reply> },
    /// Synchronous store swap: the worker retires its current store
    /// and serves every later message from `store`. Used by the
    /// adaptive controller to re-pin a provisioned shard after a
    /// re-slice without restarting the worker. Publishes
    /// `Reply::Replaced` into `done` once the swap is visible.
    Replace { store: Box<dyn ContentStore>, done: Producer<Reply> },
    /// Drain sentinel: the shard thread exits after seeing this.
    Stop,
}

struct Shard<J> {
    queue: Producer<ShardMsg<J>>,
    /// Jobs currently queued (control messages are not counted).
    /// Cache-padded: each shard's depth is hammered by its producers
    /// and its worker; without padding, adjacent shards' counters
    /// share a line and every update invalidates the neighbours.
    depth: Arc<CachePadded<AtomicUsize>>,
    /// Set by the worker just before parking; producers that see it
    /// unpark the worker after publishing. Padded for the same
    /// reason as `depth`.
    sleeping: Arc<CachePadded<AtomicBool>>,
    /// The worker thread, for unparking.
    thread: Thread,
}

impl<J: Send + 'static> Shard<J> {
    /// Publishes-then-wakes: called after every successful enqueue.
    ///
    /// The SeqCst fence orders the enqueue's Release publish before
    /// the `sleeping` load; the worker runs the mirror-image sequence
    /// (store `sleeping`, fence, re-check queue) before parking, so at
    /// least one side always observes the other — either the producer
    /// sees `sleeping` and unparks, or the worker sees the message on
    /// its final pre-park check. `unpark` is sticky, so racing ahead
    /// of the actual `park` call still wakes it. A lost wake is
    /// additionally bounded by [`IdleStrategy::PARK_TIMEOUT`].
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.sleeping.load(Ordering::Relaxed) {
            self.thread.unpark();
        }
    }

    /// Blocking control-message send: retries until the ring has room
    /// (the worker is draining, so room appears), then wakes.
    fn send_control(&self, mut msg: ShardMsg<J>) {
        loop {
            match self.queue.try_push(msg) {
                Ok(()) => break,
                Err(returned) => {
                    msg = returned;
                    std::thread::yield_now();
                }
            }
        }
        self.wake();
    }
}

/// Producer claim discipline of a [`ShardedStore`]'s shard rings.
///
/// `Auto` is the demotion protocol from the module docs: producers
/// register, the first job submission seals, and a sole registrant
/// gets the SPSC fast path. In `Auto` **every job submitter must
/// register before its first submission** — an unregistered
/// submitter can defeat the count and race a demoted ring. The
/// synchronous ops (`apply*`, `shard_contents`) ride the same rings:
/// once a store may seal SPSC they must be separated from job
/// submission by a happens-before edge (the engine's warm-up runs
/// before the load generators spawn and its drain after they join,
/// which is exactly that). `Mpsc` (the default) never demotes;
/// `Spsc` builds the rings single-producer from the start and admits
/// exactly one registrant — under the same whole-ring contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RingMode {
    /// Always multi-producer; registration is a no-op. The default.
    #[default]
    Mpsc,
    /// Count registrations; demote to SPSC at seal iff exactly one.
    Auto,
    /// Single-producer from construction; one registration allowed.
    Spsc,
}

impl RingMode {
    /// Canonical report name (`mpsc`, `auto`, `spsc`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Mpsc => "mpsc",
            Self::Auto => "auto",
            Self::Spsc => "spsc",
        }
    }
}

/// Seal states. `>= SEAL_MPSC` means the decision is final and the
/// submission fast path can skip the protocol with one Acquire load.
const SEAL_OPEN: u8 = 0;
const SEAL_SEALING: u8 = 1;
const SEAL_MPSC: u8 = 2;
const SEAL_SPSC: u8 = 3;

struct HandleInner<J> {
    shards: Vec<Shard<J>>,
    /// High-water mark of any single shard queue. Padded: updated
    /// (via `fetch_max`) by every producer on every accepted push.
    max_depth: CachePadded<AtomicUsize>,
    capacity: usize,
    /// The mode requested at construction; the *resolved* discipline
    /// lives in `seal`.
    requested_mode: RingMode,
    /// Registered job producers (the seal protocol's census).
    producers: CachePadded<AtomicUsize>,
    seal: AtomicU8,
    /// Workers that successfully pinned themselves to a core.
    pinned_workers: Arc<AtomicUsize>,
    /// Reusable per-submitter completion sets for `apply`/
    /// `apply_batch`/`shard_contents`; grown on first use per
    /// concurrent caller, then recycled forever.
    completion_pool: Mutex<Vec<CompletionSet>>,
}

impl<J> HandleInner<J> {
    fn checkout_completion_set(&self) -> CompletionSet {
        lock_recover(&self.completion_pool)
            .pop()
            .unwrap_or_else(|| CompletionSet::new(self.shards.len()))
    }

    fn return_completion_set(&self, set: CompletionSet) {
        lock_recover(&self.completion_pool).push(set);
    }

    /// Fast-path guard on every job submission: one Acquire load once
    /// the seal is final.
    #[inline]
    fn ensure_sealed(&self) {
        if self.seal.load(Ordering::Acquire) >= SEAL_MPSC {
            return;
        }
        self.seal_slow();
    }

    /// Seal critical section. Exactly one thread wins the CAS, reads
    /// the census, demotes if it saw a sole registrant, and publishes
    /// the final state; everyone else spins on `SEAL_SEALING`.
    ///
    /// Race-freedom with [`ShardHandle::register_producer`] (SeqCst
    /// total order): a registrant increments the census *then* loads
    /// the seal state, while the sealer stores `SEAL_SEALING` *then*
    /// reads the census. If the increment precedes the census read,
    /// the sealer counts the newcomer (≥ 2 ⇒ MPSC). Otherwise the
    /// `SEAL_SEALING` store precedes the newcomer's state load, so
    /// the newcomer spins until the decision lands and — if it was
    /// SPSC — is refused. There is no interleaving in which a ring
    /// demotes with a second producer admitted.
    #[cold]
    fn seal_slow(&self) {
        match self.seal.compare_exchange(
            SEAL_OPEN,
            SEAL_SEALING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {
                let spsc = self.requested_mode == RingMode::Auto
                    && self.producers.load(Ordering::SeqCst) == 1;
                if spsc {
                    self.demote_rings();
                }
                // SeqCst publish: demotion happens-before any push
                // that observed the final state (submitters load the
                // seal before pushing).
                self.seal.store(if spsc { SEAL_SPSC } else { SEAL_MPSC }, Ordering::SeqCst);
            }
            Err(_) => {
                while self.seal.load(Ordering::SeqCst) < SEAL_MPSC {
                    std::hint::spin_loop();
                }
            }
        }
    }

    // The one unsafe call site outside `ring`: demotion inside the
    // seal critical section.
    #[allow(unsafe_code)]
    fn demote_rings(&self) {
        for shard in &self.shards {
            // SAFETY: we hold the seal critical section (`seal ==
            // SEAL_SEALING`), every submission path loads the seal
            // before its first push and spins while sealing, and the
            // census proved exactly one registered producer — so from
            // a point that happens-before every subsequent push, at
            // most one thread pushes at a time (see `seal_slow`).
            unsafe { shard.queue.demote_to_spsc() };
        }
    }
}

/// Clonable, shareable access to a [`ShardedStore`]'s queues.
///
/// Handles outlive nothing: once the owning store is shut down, job
/// submission fails and the synchronous ops panic.
pub struct ShardHandle<J> {
    inner: Arc<HandleInner<J>>,
}

impl<J> Clone for ShardHandle<J> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<J: Send + 'static> ShardHandle<J> {
    /// Number of worker shards behind this handle.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Per-shard queue capacity (the admission bound; the requested
    /// capacity rounded up to the ring's power of two).
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Registers the calling submitter with the seal protocol (see
    /// [`RingMode`]). Must be called before the registrant's first
    /// job submission; meaningful in `Auto` (census) and `Spsc`
    /// (sole-producer gate) modes, a no-op under `Mpsc`.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when the store already sealed
    /// to SPSC (late registration would add a second producer to a
    /// single-producer ring) or an explicit-`Spsc` store already has
    /// its one registrant.
    pub fn register_producer(&self) -> Result<(), EngineError> {
        let inner = &*self.inner;
        // Census first, state second — the mirror image of
        // `seal_slow` (state first, census second); see its doc
        // comment for why this ordering closes the race.
        inner.producers.fetch_add(1, Ordering::SeqCst);
        loop {
            match inner.seal.load(Ordering::SeqCst) {
                SEAL_SEALING => std::hint::spin_loop(),
                SEAL_SPSC => {
                    // An explicit-Spsc store admits its first (sole)
                    // registrant; a demoted Auto store admits none —
                    // its census is already ≥ 1 from the original
                    // registrant, so the == 1 check refuses here too.
                    if inner.requested_mode == RingMode::Spsc
                        && inner.producers.load(Ordering::SeqCst) == 1
                    {
                        return Ok(());
                    }
                    inner.producers.fetch_sub(1, Ordering::SeqCst);
                    return Err(EngineError::InvalidConfig {
                        reason: "store is sealed single-producer; cannot register another \
                                 job producer"
                            .into(),
                    });
                }
                _ => return Ok(()),
            }
        }
    }

    /// Seals the producer census now instead of at the first job
    /// submission. Idempotent; concurrent callers all return with
    /// the decision final.
    pub fn seal_producers(&self) {
        self.inner.ensure_sealed();
    }

    /// The resolved claim discipline: `Mpsc`/`Spsc` once sealed, the
    /// requested [`RingMode`] while an `Auto` store is still open.
    #[must_use]
    pub fn ring_mode(&self) -> RingMode {
        match self.inner.seal.load(Ordering::Acquire) {
            SEAL_MPSC => RingMode::Mpsc,
            SEAL_SPSC => RingMode::Spsc,
            _ => self.inner.requested_mode,
        }
    }

    /// The current producer census (registrants counted by the seal
    /// protocol). Observability for census-accounting assertions —
    /// e.g. that a wire node's re-provision registers only the delta
    /// of newly accepted connections, never the full census again.
    #[must_use]
    pub fn producer_census(&self) -> usize {
        self.inner.producers.load(Ordering::SeqCst)
    }

    /// Workers that successfully pinned themselves to the core their
    /// [`ShardSpec::pin_cores`] assignment named.
    #[must_use]
    pub fn pinned_workers(&self) -> usize {
        self.inner.pinned_workers.load(Ordering::Relaxed)
    }

    /// Enqueues `job` on the shard owning `content`.
    ///
    /// # Errors
    ///
    /// Returns the job back when that shard's bounded queue is full
    /// (or the store was shut down) so the caller can shed or degrade.
    pub fn try_job(&self, content: ContentId, job: J) -> Result<(), J> {
        self.inner.ensure_sealed();
        let shard = &self.inner.shards[shard_of(content, self.shards())];
        // Count *before* pushing: the worker decrements only after
        // processing a pushed job, so depth can never underflow; the
        // add-after-push order would let the decrement race ahead and
        // wrap the counter.
        let occupied = shard.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match shard.queue.try_push(ShardMsg::Job(job)) {
            Ok(()) => {
                self.inner.max_depth.fetch_max(occupied, Ordering::Relaxed);
                shard.wake();
                Ok(())
            }
            Err(ShardMsg::Job(job)) => {
                shard.depth.fetch_sub(1, Ordering::Relaxed);
                Err(job)
            }
            // try_push returns exactly the message we pushed.
            Err(_) => unreachable!("non-job message rejected"),
        }
    }

    /// Enqueues a run of jobs — **already grouped by
    /// [`shard_of`]** — on shard `shard` with a single queue claim,
    /// draining the accepted prefix out of `jobs`. Returns how many
    /// jobs were accepted; the remainder stays in `jobs` for the
    /// caller to shed or retry. One wake, one depth update, one
    /// claim CAS per run: the per-job queue-hop cost is amortized
    /// across the batch.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn try_submit_batch(&self, shard: usize, jobs: &mut Vec<J>) -> usize {
        let want = jobs.len();
        if want == 0 {
            return 0;
        }
        self.inner.ensure_sealed();
        let shard = &self.inner.shards[shard];
        // Same count-before-push discipline as `try_job`; the
        // rejected remainder is subtracted back below.
        let occupied = shard.depth.fetch_add(want, Ordering::Relaxed) + want;
        let accepted = shard.queue.try_push_batch_map(jobs, ShardMsg::Job);
        if accepted < want {
            shard.depth.fetch_sub(want - accepted, Ordering::Relaxed);
        }
        if accepted > 0 {
            self.inner.max_depth.fetch_max(occupied - (want - accepted), Ordering::Relaxed);
            shard.wake();
        }
        accepted
    }

    /// Blocking variant of [`ShardHandle::try_submit_batch`]: retries
    /// (yielding) until the whole run is enqueued. Returns the number
    /// of jobs submitted.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn submit_batch(&self, shard: usize, jobs: &mut Vec<J>) -> usize {
        let mut submitted = 0;
        while !jobs.is_empty() {
            let accepted = self.try_submit_batch(shard, jobs);
            submitted += accepted;
            if accepted == 0 {
                std::thread::yield_now();
            }
        }
        submitted
    }

    /// Synchronous churn against the owning shard: on a hit the store
    /// is touched and `true` comes back; on a miss the content is
    /// inserted (evicting per policy) and `false` comes back.
    ///
    /// The round trip through the queue is the per-op cost this
    /// adapter adds over calling the store directly — benchmarked in
    /// `ccn-bench`'s `engine` bench, deliberately not hidden (and
    /// amortized by [`ShardHandle::try_submit_batch`] on the serve
    /// path, by [`ShardHandle::apply_batch`] on the churn path). The
    /// reply rides a pooled completion lane, so the call allocates
    /// nothing once the pool is warm.
    ///
    /// # Panics
    ///
    /// Panics if the owning [`ShardedStore`] has been shut down.
    pub fn apply(&self, content: ContentId) -> bool {
        self.apply_inner(content, true)
    }

    /// Synchronous read-mostly lookup against the owning shard: on a
    /// hit the store is touched (recency/frequency state advances,
    /// exactly as a served request would) and `true` comes back; on a
    /// miss the store is **left untouched** and `false` comes back.
    ///
    /// This is the wire tier's local-lookup primitive: unlike
    /// [`ShardHandle::apply`], a miss must not insert, because whether
    /// the content is admitted at the edge depends on the routing
    /// decision that *follows* the probe (coordinated content belongs
    /// to its holder, not to whichever edge node was asked first).
    ///
    /// # Panics
    ///
    /// Panics if the owning [`ShardedStore`] has been shut down.
    pub fn probe(&self, content: ContentId) -> bool {
        self.apply_inner(content, false)
    }

    fn apply_inner(&self, content: ContentId, insert: bool) -> bool {
        let mut set = self.inner.checkout_completion_set();
        let index = shard_of(content, self.shards());
        let lane = &mut set.lanes[index];
        self.inner.shards[index].send_control(ShardMsg::Apply {
            content,
            insert,
            tag: 0,
            done: lane.tx.clone(),
        });
        let Reply::Hit { hit, .. } = await_reply(&mut lane.rx) else {
            unreachable!("apply always answers Hit");
        };
        self.inner.return_completion_set(set);
        hit
    }

    /// Batched synchronous churn: every content in `run` is applied
    /// to its owning shard (hit → touch, miss → insert) and `hits`
    /// is filled with the per-op hit verdicts **in input order**.
    ///
    /// Unlike a loop over [`ShardHandle::apply`], the submitter never
    /// blocks per-op: a window of up to [`COMPLETION_CAPACITY`] ops
    /// is in flight across all shards before the first reply is
    /// awaited, submissions ride the batch claim, and completions
    /// drain in bulk from the per-shard lanes — tags restore input
    /// order however the shards interleave.
    ///
    /// # Panics
    ///
    /// Panics if the owning [`ShardedStore`] has been shut down or
    /// `run` exceeds `u32::MAX` ops.
    pub fn apply_batch(&self, run: &[ContentId], hits: &mut Vec<bool>) {
        self.apply_batch_inner(run, hits, true);
    }

    /// Batched [`ShardHandle::probe`]: every content in `run` is
    /// probed against its owning shard (hit → touch, miss → store
    /// untouched) and `hits` is filled with per-op verdicts in input
    /// order, with the same windowed in-flight pipeline as
    /// [`ShardHandle::apply_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the owning [`ShardedStore`] has been shut down or
    /// `run` exceeds `u32::MAX` ops.
    pub fn probe_batch(&self, run: &[ContentId], hits: &mut Vec<bool>) {
        self.apply_batch_inner(run, hits, false);
    }

    fn apply_batch_inner(&self, run: &[ContentId], hits: &mut Vec<bool>, insert: bool) {
        hits.clear();
        hits.resize(run.len(), false);
        if run.is_empty() {
            return;
        }
        assert!(u32::try_from(run.len()).is_ok(), "apply_batch run too long to tag");
        let shards = self.shards();
        let mut set = self.inner.checkout_completion_set();
        // The shard runs and the drain buffer live in the pooled set,
        // so a warm submitter allocates nothing per batch.
        let CompletionSet { lanes, pending, drained } = &mut set;
        for window_start in (0..run.len()).step_by(COMPLETION_CAPACITY) {
            let window = &run[window_start..run.len().min(window_start + COMPLETION_CAPACITY)];
            for (offset, &content) in window.iter().enumerate() {
                let tag = (window_start + offset) as u32;
                pending[shard_of(content, shards)].push((content, tag));
            }
            // Submit the whole window before awaiting anything: one
            // batch claim and one wake per shard with work.
            for (index, ops) in pending.iter_mut().enumerate() {
                if ops.is_empty() {
                    continue;
                }
                let shard = &self.inner.shards[index];
                let done = &lanes[index].tx;
                while !ops.is_empty() {
                    let accepted = shard.queue.try_push_batch_map(ops, |(content, tag)| {
                        ShardMsg::Apply { content, insert, tag, done: done.clone() }
                    });
                    if accepted == 0 {
                        std::thread::yield_now();
                    } else {
                        shard.wake();
                    }
                }
            }
            // Drain the window's replies in bulk; the window bound
            // (≤ lane capacity) guarantees no lane ever stalls a
            // worker for longer than this loop takes to come around.
            let mut outstanding = window.len();
            while outstanding > 0 {
                let mut progressed = false;
                for lane in lanes.iter_mut() {
                    drained.clear();
                    lane.rx.pop_batch(drained, COMPLETION_CAPACITY);
                    for reply in drained.drain(..) {
                        let Reply::Hit { tag, hit } = reply else {
                            unreachable!("apply always answers Hit");
                        };
                        hits[tag as usize] = hit;
                        outstanding -= 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    std::thread::yield_now();
                }
            }
        }
        self.inner.return_completion_set(set);
    }

    /// Synchronously swaps one shard worker's store for `store`,
    /// blocking until the worker has retired the old one. Messages
    /// already queued ahead of the swap run against the old store;
    /// everything after runs against the new — there is no window
    /// where the shard serves from neither.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or the owning
    /// [`ShardedStore`] has been shut down.
    pub fn replace_store(&self, shard: usize, store: Box<dyn ContentStore>) {
        let mut set = self.inner.checkout_completion_set();
        let lane = &mut set.lanes[shard];
        self.inner.shards[shard].send_control(ShardMsg::Replace { store, done: lane.tx.clone() });
        let Reply::Replaced = await_reply(&mut lane.rx) else {
            unreachable!("replace always answers Replaced");
        };
        self.inner.return_completion_set(set);
    }

    /// Eviction-order contents of one shard's store.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or the store was shut down.
    #[must_use]
    pub fn shard_contents(&self, shard: usize) -> Vec<ContentId> {
        let mut set = self.inner.checkout_completion_set();
        let lane = &mut set.lanes[shard];
        self.inner.shards[shard].send_control(ShardMsg::Snapshot { done: lane.tx.clone() });
        let Reply::Contents(contents) = await_reply(&mut lane.rx) else {
            unreachable!("snapshot always answers Contents");
        };
        self.inner.return_completion_set(set);
        contents
    }

    /// Contents across all shards, sorted by rank.
    ///
    /// # Panics
    ///
    /// Panics if the store was shut down.
    #[must_use]
    pub fn contents(&self) -> Vec<ContentId> {
        let mut all: Vec<ContentId> =
            (0..self.shards()).flat_map(|s| self.shard_contents(s)).collect();
        all.sort_unstable();
        all
    }

    /// Jobs currently queued across all shards.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.shards.iter().map(|s| s.depth.load(Ordering::Relaxed)).sum()
    }

    /// High-water mark of any single shard queue since spawn.
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.inner.max_depth.load(Ordering::Relaxed)
    }
}

/// Full construction recipe for a [`ShardedStore`]: shape, idle
/// strategy, producer discipline, and thread-per-core placement.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Worker shard count (≥ 1).
    pub shards: usize,
    /// Per-shard bounded queue capacity (≥ 1; rounded up to a power
    /// of two).
    pub queue_capacity: usize,
    /// How workers wait when their queue runs dry.
    pub idle: IdleStrategy,
    /// Producer claim discipline (see [`RingMode`]).
    pub ring_mode: RingMode,
    /// Optional per-shard core assignment: `pin_cores[shard]` names
    /// the core that shard's worker pins itself to at thread start
    /// (`None` floats). Empty means no pinning. Must be empty or
    /// exactly `shards` long.
    pub pin_cores: Vec<Option<usize>>,
}

impl ShardSpec {
    /// A spec with the defaults the two-argument constructors used:
    /// spin-then-park idling, MPSC rings, no pinning.
    #[must_use]
    pub fn new(shards: usize, queue_capacity: usize) -> Self {
        Self {
            shards,
            queue_capacity,
            idle: IdleStrategy::default(),
            ring_mode: RingMode::default(),
            pin_cores: Vec::new(),
        }
    }

    /// Replaces the idle strategy.
    #[must_use]
    pub fn idle(mut self, idle: IdleStrategy) -> Self {
        self.idle = idle;
        self
    }

    /// Replaces the producer discipline.
    #[must_use]
    pub fn ring_mode(mut self, mode: RingMode) -> Self {
        self.ring_mode = mode;
        self
    }

    /// Replaces the per-shard core assignment.
    #[must_use]
    pub fn pin_cores(mut self, pins: Vec<Option<usize>>) -> Self {
        self.pin_cores = pins;
        self
    }
}

/// A content store sharded across single-writer worker threads.
///
/// `J` is the asynchronous job type routed by content id; each job is
/// handed to the `handler` callback together with exclusive access to
/// the owning shard's store. Synchronous ops ([`ShardHandle::apply`],
/// [`ShardHandle::contents`]) ride the same queues, so they observe a
/// consistent single-writer view.
pub struct ShardedStore<J: Send + 'static> {
    handle: ShardHandle<J>,
    workers: Vec<JoinHandle<()>>,
}

impl<J: Send + 'static> ShardedStore<J> {
    /// Spawns `shards` worker threads, each owning the store built by
    /// `store_factory(shard)` and processing jobs via `handler`,
    /// idling per `idle` when its queue runs dry.
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread (see
    /// [`ShardedStore::try_spawn`] for the fallible form) or on a
    /// zero shard count / queue capacity.
    pub fn spawn<F, H>(
        shards: usize,
        queue_capacity: usize,
        idle: IdleStrategy,
        store_factory: F,
        handler: Arc<H>,
    ) -> Self
    where
        F: FnMut(usize) -> Box<dyn ContentStore>,
        H: Fn(&mut dyn ContentStore, J) + Send + Sync + 'static,
    {
        match Self::try_spawn(shards, queue_capacity, idle, store_factory, handler) {
            Ok(store) => store,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`ShardedStore::spawn`]: a refused thread
    /// spawn (or zero shards / queue capacity) surfaces as a typed
    /// [`EngineError`] instead of aborting the process. Workers
    /// already spawned before the failure are drained and joined, so
    /// a partial bring-up leaks nothing.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] for zero `shards` or
    /// `queue_capacity`; [`EngineError::Spawn`] when the OS refuses a
    /// worker thread.
    pub fn try_spawn<F, H>(
        shards: usize,
        queue_capacity: usize,
        idle: IdleStrategy,
        store_factory: F,
        handler: Arc<H>,
    ) -> Result<Self, EngineError>
    where
        F: FnMut(usize) -> Box<dyn ContentStore>,
        H: Fn(&mut dyn ContentStore, J) + Send + Sync + 'static,
    {
        Self::try_spawn_with(
            ShardSpec::new(shards, queue_capacity).idle(idle),
            store_factory,
            handler,
        )
    }

    /// Full-form constructor: everything [`ShardedStore::try_spawn`]
    /// accepts plus the producer discipline and per-shard core
    /// pinning of a [`ShardSpec`]. Workers pin themselves first
    /// thing on their own thread (affinity is inherited by children
    /// on Linux, so the spawner must not pin on the workers' behalf);
    /// a refused pin is counted, not fatal — see
    /// [`ShardHandle::pinned_workers`].
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] for zero `shards` or
    /// `queue_capacity` or a `pin_cores` of the wrong length;
    /// [`EngineError::Spawn`] when the OS refuses a worker thread.
    pub fn try_spawn_with<F, H>(
        spec: ShardSpec,
        mut store_factory: F,
        handler: Arc<H>,
    ) -> Result<Self, EngineError>
    where
        F: FnMut(usize) -> Box<dyn ContentStore>,
        H: Fn(&mut dyn ContentStore, J) + Send + Sync + 'static,
    {
        if spec.shards == 0 {
            return Err(EngineError::InvalidConfig { reason: "need at least one shard".into() });
        }
        if spec.queue_capacity == 0 {
            return Err(EngineError::InvalidConfig { reason: "need a non-empty queue".into() });
        }
        if !spec.pin_cores.is_empty() && spec.pin_cores.len() != spec.shards {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "pin_cores names {} shards but the store has {}",
                    spec.pin_cores.len(),
                    spec.shards
                ),
            });
        }
        // Explicit-Spsc rings are single-producer from birth; Auto
        // rings start MPSC and may demote at seal; Mpsc rings are
        // born sealed.
        let birth_mode = match spec.ring_mode {
            RingMode::Spsc => Mode::Spsc,
            _ => Mode::Mpsc,
        };
        let initial_seal = match spec.ring_mode {
            RingMode::Mpsc => SEAL_MPSC,
            RingMode::Auto => SEAL_OPEN,
            RingMode::Spsc => SEAL_SPSC,
        };
        let pinned_workers = Arc::new(AtomicUsize::new(0));
        let make_inner = |shards: Vec<Shard<J>>, capacity: usize| HandleInner {
            shards,
            max_depth: CachePadded::new(AtomicUsize::new(0)),
            capacity,
            requested_mode: spec.ring_mode,
            producers: CachePadded::new(AtomicUsize::new(0)),
            seal: AtomicU8::new(initial_seal),
            pinned_workers: Arc::clone(&pinned_workers),
            completion_pool: Mutex::new(Vec::new()),
        };
        let mut shard_handles = Vec::with_capacity(spec.shards);
        let mut workers = Vec::with_capacity(spec.shards);
        let mut capacity = spec.queue_capacity;
        for shard in 0..spec.shards {
            let (producer, consumer) = ring_with(spec.queue_capacity, birth_mode);
            capacity = producer.capacity();
            let depth = Arc::new(CachePadded::new(AtomicUsize::new(0)));
            let sleeping = Arc::new(CachePadded::new(AtomicBool::new(false)));
            let store = store_factory(shard);
            let worker_depth = Arc::clone(&depth);
            let worker_sleeping = Arc::clone(&sleeping);
            let worker_handler = Arc::clone(&handler);
            let worker_pinned = Arc::clone(&pinned_workers);
            let pin_core = spec.pin_cores.get(shard).copied().flatten();
            let idle = spec.idle;
            let spawned =
                std::thread::Builder::new().name(format!("ccn-shard-{shard}")).spawn(move || {
                    if let Some(core) = pin_core {
                        if pin_current_thread(core) == PinOutcome::Pinned {
                            worker_pinned.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    worker_loop(
                        store,
                        consumer,
                        &worker_depth,
                        &worker_sleeping,
                        idle,
                        &*worker_handler,
                    );
                });
            let worker = match spawned {
                Ok(worker) => worker,
                Err(e) => {
                    // Unwind the partial bring-up before reporting.
                    let mut partial = Self {
                        handle: ShardHandle {
                            inner: Arc::new(make_inner(shard_handles, capacity)),
                        },
                        workers,
                    };
                    partial.shutdown();
                    return Err(EngineError::Spawn { reason: e.to_string() });
                }
            };
            let thread = worker.thread().clone();
            shard_handles.push(Shard { queue: producer, depth, sleeping, thread });
            workers.push(worker);
        }
        let inner = make_inner(shard_handles, capacity);
        Ok(Self { handle: ShardHandle { inner: Arc::new(inner) }, workers })
    }

    /// A clonable handle for submitting work.
    #[must_use]
    pub fn handle(&self) -> ShardHandle<J> {
        self.handle.clone()
    }

    /// Sends the drain sentinel to every shard and joins the workers.
    ///
    /// Queued messages ahead of the sentinel are still processed;
    /// idempotent (second call is a no-op). Callers must stop feeding
    /// jobs first or late submissions are silently dropped.
    pub fn shutdown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        for shard in &self.handle.inner.shards {
            shard.send_control(ShardMsg::Stop);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<J: Send + 'static> Drop for ShardedStore<J> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Messages drained per worker wakeup — bounds the bulk-drain scratch
/// buffer and how long one drain can monopolize the store.
const DRAIN_MAX: usize = 256;

fn worker_loop<J, H>(
    mut store: Box<dyn ContentStore>,
    mut queue: Consumer<ShardMsg<J>>,
    depth: &AtomicUsize,
    sleeping: &AtomicBool,
    idle: IdleStrategy,
    handler: &H,
) where
    H: Fn(&mut dyn ContentStore, J),
{
    let mut batch: Vec<ShardMsg<J>> = Vec::with_capacity(DRAIN_MAX);
    let mut spins = 0u32;
    let mut yields = 0u32;
    loop {
        batch.clear();
        if queue.pop_batch(&mut batch, DRAIN_MAX) > 0 {
            spins = 0;
            yields = 0;
            let mut jobs = 0usize;
            let mut stop = false;
            for msg in batch.drain(..) {
                match msg {
                    ShardMsg::Job(job) => {
                        jobs += 1;
                        handler(store.as_mut(), job);
                    }
                    ShardMsg::Apply { content, insert, tag, done } => {
                        let hit = store.contains(content);
                        if hit {
                            store.on_hit(content);
                        } else if insert {
                            store.on_data(content);
                        }
                        publish_reply(&done, Reply::Hit { tag, hit });
                    }
                    ShardMsg::Snapshot { done } => {
                        publish_reply(&done, Reply::Contents(store.contents()));
                    }
                    ShardMsg::Replace { store: replacement, done } => {
                        store = replacement;
                        publish_reply(&done, Reply::Replaced);
                    }
                    ShardMsg::Stop => {
                        stop = true;
                        break;
                    }
                }
            }
            if jobs > 0 {
                depth.fetch_sub(jobs, Ordering::Relaxed);
            }
            if stop {
                return;
            }
            continue;
        }
        // Queue dry: escalate spin → yield → park.
        if spins < idle.spins {
            spins += 1;
            std::hint::spin_loop();
        } else if yields < idle.yields || !idle.park {
            yields = yields.saturating_add(1);
            std::thread::yield_now();
        } else {
            // Mirror image of `Shard::wake` (see its doc comment):
            // publish intent to sleep, fence, re-check, then park.
            sleeping.store(true, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if queue.has_pending() {
                sleeping.store(false, Ordering::Relaxed);
                continue;
            }
            std::thread::park_timeout(IdleStrategy::PARK_TIMEOUT);
            sleeping.store(false, Ordering::Relaxed);
            spins = 0;
            yields = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccn_sim::store::LruStore;

    fn noop() -> Arc<impl Fn(&mut dyn ContentStore, ()) + Send + Sync> {
        Arc::new(|_: &mut dyn ContentStore, (): ()| {})
    }

    fn spawn_lru(shards: usize, queue: usize, capacity: usize) -> ShardedStore<()> {
        ShardedStore::spawn(
            shards,
            queue,
            IdleStrategy::default(),
            move |_| Box::new(LruStore::new(capacity)),
            noop(),
        )
    }

    #[test]
    fn single_shard_apply_matches_raw_lru() {
        let mut raw = LruStore::new(8);
        let mut sharded = spawn_lru(1, 64, 8);
        let handle = sharded.handle();
        // Deterministic churny access pattern over a small catalogue.
        let stream: Vec<u64> = (0..400).map(|i| mix(i) % 24 + 1).collect();
        for &rank in &stream {
            let c = ContentId(rank);
            let raw_hit = raw.contains(c);
            if raw_hit {
                raw.on_hit(c);
            } else {
                raw.on_data(c);
            }
            assert_eq!(handle.apply(c), raw_hit, "divergence at rank {rank}");
        }
        assert_eq!(handle.contents(), {
            let mut v = raw.contents();
            v.sort_unstable();
            v
        });
        sharded.shutdown();
    }

    #[test]
    fn contents_land_on_their_owning_shard() {
        let shards = 4;
        let mut sharded = spawn_lru(shards, 64, 1_000);
        let handle = sharded.handle();
        for rank in 1..=200u64 {
            handle.apply(ContentId(rank));
        }
        for s in 0..shards {
            for c in handle.shard_contents(s) {
                assert_eq!(shard_of(c, shards), s, "{c} stored on wrong shard");
            }
        }
        assert_eq!(handle.contents().len(), 200);
        sharded.shutdown();
    }

    #[test]
    fn replace_store_swaps_one_shard_and_keeps_the_rest_warm() {
        let shards = 4;
        let mut sharded = spawn_lru(shards, 64, 1_000);
        let handle = sharded.handle();
        for rank in 1..=200u64 {
            handle.apply(ContentId(rank));
        }
        let before: Vec<Vec<ContentId>> = (0..shards).map(|s| handle.shard_contents(s)).collect();
        // Re-pin shard 1 with a pre-warmed replacement store.
        let mut replacement = LruStore::new(1_000);
        let seeded: Vec<u64> =
            (500..900u64).filter(|&r| shard_of(ContentId(r), shards) == 1).collect();
        for &rank in &seeded {
            replacement.on_data(ContentId(rank));
        }
        handle.replace_store(1, Box::new(replacement));
        // Shard 1 now serves from the replacement; the others are
        // untouched (warmth survives).
        let swapped = handle.shard_contents(1);
        assert_eq!(swapped.len(), seeded.len());
        assert!(swapped.iter().all(|c| seeded.contains(&c.rank())));
        for s in [0, 2, 3] {
            assert_eq!(handle.shard_contents(s), before[s], "shard {s} disturbed");
        }
        // The swapped shard keeps working: hits on seeded content,
        // misses (then inserts) on the evicted old contents.
        assert!(handle.apply(ContentId(seeded[0])));
        let old_on_shard_1 = before[1][0];
        assert!(!handle.apply(old_on_shard_1), "old store's content must be gone");
        sharded.shutdown();
    }

    #[test]
    fn full_queue_returns_the_job_to_the_caller() {
        // A handler that blocks until released, so the queue backs up.
        let gate = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let seen = Arc::clone(&gate);
        let handler = Arc::new(move |_: &mut dyn ContentStore, v: u64| {
            while seen.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            let _ = v;
        });
        let mut sharded = ShardedStore::spawn(
            1,
            2,
            IdleStrategy::default(),
            |_| Box::new(LruStore::new(4)),
            handler,
        );
        let handle = sharded.handle();
        // One job may be in the handler plus two queued: the fourth
        // (or at latest fifth) submission must bounce.
        let mut bounced = None;
        for v in 0..8u64 {
            if handle.try_job(ContentId(1), v).is_err() {
                bounced = Some(v);
                break;
            }
        }
        assert!(bounced.is_some(), "bounded queue never pushed back");
        assert!(handle.max_queue_depth() >= 2);
        gate.store(1, Ordering::Release);
        sharded.shutdown();
    }

    #[test]
    fn batched_submission_accepts_up_to_capacity_and_returns_the_rest() {
        // Park the worker behind a gate so the queue fills.
        let gate = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let seen = Arc::clone(&gate);
        let handler = Arc::new(move |_: &mut dyn ContentStore, v: u64| {
            while seen.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
            let _ = v;
        });
        let mut sharded = ShardedStore::spawn(
            1,
            8,
            IdleStrategy::default(),
            |_| Box::new(LruStore::new(4)),
            handler,
        );
        let handle = sharded.handle();
        let mut jobs: Vec<u64> = (0..32).collect();
        let accepted = handle.try_submit_batch(0, &mut jobs);
        // 8 queued (worker may have pulled a few into its drain batch
        // before blocking, so allow a small overshoot window).
        assert!((8..=9).contains(&accepted), "accepted {accepted}");
        assert_eq!(jobs.len(), 32 - accepted, "rejected jobs stay with the caller");
        assert_eq!(jobs[0], accepted as u64, "accepted prefix preserved order");
        assert!(handle.max_queue_depth() >= accepted.min(8));
        gate.store(1, Ordering::Release);
        // With the worker released, the rest drains via the blocking path.
        handle.submit_batch(0, &mut jobs);
        assert!(jobs.is_empty());
        sharded.shutdown();
    }

    #[test]
    fn batched_and_per_op_submission_agree_on_store_state() {
        let stream: Vec<u64> = (0..600).map(|i| mix(i) % 48 + 1).collect();
        let churn = Arc::new(|store: &mut dyn ContentStore, rank: u64| {
            let c = ContentId(rank);
            if store.contains(c) {
                store.on_hit(c);
            } else {
                store.on_data(c);
            }
        });
        let run = |batch: usize| {
            let mut sharded: ShardedStore<u64> = ShardedStore::spawn(
                1,
                64,
                IdleStrategy::default(),
                |_| Box::new(LruStore::new(16)),
                Arc::clone(&churn),
            );
            let handle = sharded.handle();
            let mut pending = Vec::with_capacity(batch);
            for &rank in &stream {
                pending.push(rank);
                if pending.len() >= batch {
                    handle.submit_batch(0, &mut pending);
                }
            }
            handle.submit_batch(0, &mut pending);
            while handle.queue_depth() > 0 {
                std::thread::yield_now();
            }
            let contents = handle.contents();
            sharded.shutdown();
            contents
        };
        let per_op = run(1);
        for batch in [2, 16, 256] {
            assert_eq!(run(batch), per_op, "batch={batch} diverged from per-op");
        }
    }

    #[test]
    fn idle_strategy_parses_presets_and_explicit_forms() {
        assert_eq!(IdleStrategy::parse("spin-then-park").unwrap(), IdleStrategy::spin_then_park());
        assert_eq!(IdleStrategy::parse("yield").unwrap(), IdleStrategy::yielding());
        let explicit = IdleStrategy::parse("spin:10,yield:3,park").unwrap();
        assert_eq!(explicit, IdleStrategy { spins: 10, yields: 3, park: true });
        assert_eq!(IdleStrategy::parse(&explicit.name()).unwrap(), explicit);
        assert!(IdleStrategy::parse("nonsense").is_err());
        assert!(IdleStrategy::parse("spin:abc").is_err());
    }

    #[test]
    fn try_spawn_rejects_degenerate_shapes_with_typed_errors() {
        let r: Result<ShardedStore<()>, _> = ShardedStore::try_spawn(
            0,
            64,
            IdleStrategy::default(),
            |_| Box::new(LruStore::new(4)),
            noop(),
        );
        assert!(matches!(r, Err(EngineError::InvalidConfig { .. })));
        let r: Result<ShardedStore<()>, _> = ShardedStore::try_spawn(
            1,
            0,
            IdleStrategy::default(),
            |_| Box::new(LruStore::new(4)),
            noop(),
        );
        assert!(matches!(r, Err(EngineError::InvalidConfig { .. })));
    }

    /// Regression guard for the sleeping-flag/SeqCst-fence wake
    /// protocol: with zero spins and zero yields the worker parks
    /// after *every* dry poll, so each of the serial submissions below
    /// races a worker entering park. A lost wake would stall each op
    /// behind the 1 ms park backstop; 4000 ops would then need ≥ 4 s,
    /// so the 2 s budget fails loudly while a working protocol
    /// finishes in milliseconds.
    #[test]
    fn park_happy_wake_protocol_never_loses_a_submission() {
        let park_eagerly = IdleStrategy { spins: 0, yields: 0, park: true };
        let done = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&done);
        let handler = Arc::new(move |_: &mut dyn ContentStore, _v: u64| {
            observed.fetch_add(1, Ordering::Release);
        });
        let mut sharded =
            ShardedStore::spawn(1, 64, park_eagerly, |_| Box::new(LruStore::new(4)), handler);
        let handle = sharded.handle();
        const OPS: usize = 4_000;
        let budget = Duration::from_secs(2);
        let start = std::time::Instant::now();
        for v in 0..OPS as u64 {
            // Serial round trips: wait for the previous job to finish
            // so the worker is guaranteed idle (and parking) when the
            // next submission lands.
            while handle.try_job(ContentId(v + 1), v).is_err() {
                std::thread::yield_now();
            }
            while done.load(Ordering::Acquire) <= v as usize {
                assert!(
                    start.elapsed() < budget,
                    "lost wake: stuck at {} of {OPS} after {:?}",
                    done.load(Ordering::Acquire),
                    start.elapsed()
                );
                std::hint::spin_loop();
            }
        }
        assert_eq!(done.load(Ordering::Acquire), OPS);
        sharded.shutdown();
    }

    /// Multi-producer variant: several submitters hammer one
    /// eagerly-parking worker concurrently. Every job must be
    /// processed well inside the park-backstop-dominated worst case.
    #[test]
    fn racing_producers_never_strand_jobs_behind_a_parked_worker() {
        let park_eagerly = IdleStrategy { spins: 0, yields: 0, park: true };
        let done = Arc::new(AtomicUsize::new(0));
        let observed = Arc::clone(&done);
        let handler = Arc::new(move |_: &mut dyn ContentStore, _v: u64| {
            observed.fetch_add(1, Ordering::Release);
        });
        let mut sharded =
            ShardedStore::spawn(1, 1_024, park_eagerly, |_| Box::new(LruStore::new(4)), handler);
        let handle = sharded.handle();
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let handle = handle.clone();
                scope.spawn(move || {
                    for v in 0..PER_PRODUCER as u64 {
                        let id = (p as u64) << 32 | v;
                        while handle.try_job(ContentId(v + 1), id).is_err() {
                            std::thread::yield_now();
                        }
                        if v % 7 == 0 {
                            // Let the queue run dry regularly so the
                            // worker actually reaches the park path
                            // mid-race instead of staying hot.
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                });
            }
        });
        let total = PRODUCERS * PER_PRODUCER;
        let start = std::time::Instant::now();
        while done.load(Ordering::Acquire) < total {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "stranded jobs: {} of {total} processed",
                done.load(Ordering::Acquire)
            );
            std::thread::yield_now();
        }
        assert_eq!(handle.queue_depth(), 0);
        sharded.shutdown();
    }

    #[test]
    fn apply_batch_matches_per_op_apply_across_shards() {
        let shards = 4;
        let stream: Vec<ContentId> = (0..700).map(|i| ContentId(mix(i) % 60 + 1)).collect();
        let mut serial = spawn_lru(shards, 64, 8);
        let mut batched = spawn_lru(shards, 64, 8);
        let serial_handle = serial.handle();
        let batched_handle = batched.handle();
        let serial_hits: Vec<bool> = stream.iter().map(|&c| serial_handle.apply(c)).collect();
        let mut batched_hits = Vec::new();
        batched_handle.apply_batch(&stream, &mut batched_hits);
        assert_eq!(batched_hits, serial_hits, "hit verdicts diverged");
        assert_eq!(batched_handle.contents(), serial_handle.contents(), "stores diverged");
        // Windowing: a run far longer than one completion window.
        let long: Vec<ContentId> = (0..3 * 256 + 17).map(|i| ContentId(mix(i) % 60 + 1)).collect();
        let mut a = Vec::new();
        batched_handle.apply_batch(&long, &mut a);
        let b: Vec<bool> = long.iter().map(|&c| serial_handle.apply(c)).collect();
        assert_eq!(a, b);
        serial.shutdown();
        batched.shutdown();
    }

    #[test]
    fn auto_mode_demotes_for_a_sole_registrant_and_matches_mpsc() {
        let stream: Vec<u64> = (0..600).map(|i| mix(i) % 48 + 1).collect();
        let churn = Arc::new(|store: &mut dyn ContentStore, rank: u64| {
            let c = ContentId(rank);
            if store.contains(c) {
                store.on_hit(c);
            } else {
                store.on_data(c);
            }
        });
        let run = |mode: RingMode| {
            let mut sharded: ShardedStore<u64> = ShardedStore::try_spawn_with(
                ShardSpec::new(2, 64).ring_mode(mode),
                |_| Box::new(LruStore::new(16)),
                Arc::clone(&churn),
            )
            .unwrap();
            let handle = sharded.handle();
            if mode != RingMode::Mpsc {
                handle.register_producer().unwrap();
            }
            assert_eq!(handle.ring_mode(), mode, "seal decided before first submission");
            let mut pending: Vec<Vec<u64>> = vec![Vec::new(); 2];
            for &rank in &stream {
                pending[shard_of(ContentId(rank), 2)].push(rank);
            }
            for (shard, mut jobs) in pending.into_iter().enumerate() {
                handle.submit_batch(shard, &mut jobs);
            }
            let resolved = handle.ring_mode();
            while handle.queue_depth() > 0 {
                std::thread::yield_now();
            }
            let contents = handle.contents();
            sharded.shutdown();
            (resolved, contents)
        };
        let (mpsc_mode, mpsc_contents) = run(RingMode::Mpsc);
        let (auto_mode, auto_contents) = run(RingMode::Auto);
        let (spsc_mode, spsc_contents) = run(RingMode::Spsc);
        assert_eq!(mpsc_mode, RingMode::Mpsc);
        assert_eq!(auto_mode, RingMode::Spsc, "sole registrant must demote");
        assert_eq!(spsc_mode, RingMode::Spsc);
        assert_eq!(auto_contents, mpsc_contents, "SPSC fast path diverged from MPSC");
        assert_eq!(spsc_contents, mpsc_contents);
    }

    #[test]
    fn auto_mode_stays_mpsc_with_two_registrants() {
        let mut sharded = spawn_auto_lru();
        let handle = sharded.handle();
        handle.register_producer().unwrap();
        handle.register_producer().unwrap();
        handle.try_job(ContentId(1), ()).unwrap();
        assert_eq!(handle.ring_mode(), RingMode::Mpsc);
        // Registration stays open after an MPSC seal.
        handle.register_producer().unwrap();
        sharded.shutdown();
    }

    #[test]
    fn registration_after_an_spsc_seal_is_refused() {
        let mut sharded = spawn_auto_lru();
        let handle = sharded.handle();
        handle.register_producer().unwrap();
        handle.try_job(ContentId(1), ()).unwrap();
        assert_eq!(handle.ring_mode(), RingMode::Spsc);
        assert!(matches!(handle.register_producer(), Err(EngineError::InvalidConfig { .. })));
        // Explicit-Spsc stores admit exactly one registrant.
        let mut explicit: ShardedStore<()> = ShardedStore::try_spawn_with(
            ShardSpec::new(1, 64).ring_mode(RingMode::Spsc),
            |_| Box::new(LruStore::new(4)),
            noop(),
        )
        .unwrap();
        let h = explicit.handle();
        h.register_producer().unwrap();
        assert!(h.register_producer().is_err());
        explicit.shutdown();
        sharded.shutdown();
    }

    fn spawn_auto_lru() -> ShardedStore<()> {
        ShardedStore::try_spawn_with(
            ShardSpec::new(1, 64).ring_mode(RingMode::Auto),
            |_| Box::new(LruStore::new(4)),
            noop(),
        )
        .unwrap()
    }

    /// Loom-style interleaving stress for the seal protocol: threads
    /// race registration against the demotion decision (triggered by
    /// whichever registrant submits first). The invariant under every
    /// interleaving: an SPSC seal admitted exactly one registrant,
    /// and every job submitted by an admitted registrant is
    /// processed. Repetition plus scheduler yields stands in for
    /// loom's exhaustive schedule exploration (the workspace vendors
    /// no loom).
    #[test]
    fn racing_registration_vs_demotion_admits_at_most_one_spsc_producer() {
        const ITERS: usize = 150;
        const RACERS: usize = 3;
        const JOBS_PER_RACER: usize = 40;
        for iter in 0..ITERS {
            let done = Arc::new(AtomicUsize::new(0));
            let observed = Arc::clone(&done);
            let handler = Arc::new(move |_: &mut dyn ContentStore, _v: u64| {
                observed.fetch_add(1, Ordering::Release);
            });
            let mut sharded: ShardedStore<u64> = ShardedStore::try_spawn_with(
                ShardSpec::new(1, 256).ring_mode(RingMode::Auto),
                |_| Box::new(LruStore::new(4)),
                handler,
            )
            .unwrap();
            let handle = sharded.handle();
            let admitted: usize = std::thread::scope(|scope| {
                let threads: Vec<_> = (0..RACERS)
                    .map(|racer| {
                        let handle = handle.clone();
                        scope.spawn(move || {
                            // Stagger arrival differently every
                            // iteration to vary the interleaving.
                            for _ in 0..(iter + racer) % 5 {
                                std::thread::yield_now();
                            }
                            if handle.register_producer().is_err() {
                                return 0usize;
                            }
                            for v in 0..JOBS_PER_RACER as u64 {
                                while handle.try_job(ContentId(v + 1), v).is_err() {
                                    std::thread::yield_now();
                                }
                            }
                            1
                        })
                    })
                    .collect();
                threads.into_iter().map(|t| t.join().unwrap()).sum()
            });
            let expected = admitted * JOBS_PER_RACER;
            let start = std::time::Instant::now();
            while done.load(Ordering::Acquire) < expected {
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "iter {iter}: stuck at {} of {expected}",
                    done.load(Ordering::Acquire)
                );
                std::thread::yield_now();
            }
            assert_eq!(done.load(Ordering::Acquire), expected, "iter {iter}: job count drifted");
            if handle.ring_mode() == RingMode::Spsc {
                assert_eq!(admitted, 1, "iter {iter}: SPSC seal admitted {admitted} producers");
            } else {
                assert!(admitted >= 1, "iter {iter}: MPSC seal refused everyone");
            }
            sharded.shutdown();
        }
    }

    /// The high-water mark uses `fetch_max`, so racing producers can
    /// never lose an observation: with the worker gated, the last of
    /// N concurrent accepted submissions must record depth == N.
    #[test]
    fn max_depth_high_water_survives_racing_producers() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 50;
        let gate = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&gate);
        let handler = Arc::new(move |_: &mut dyn ContentStore, _v: u64| {
            while seen.load(Ordering::Acquire) == 0 {
                std::thread::yield_now();
            }
        });
        let mut sharded = ShardedStore::spawn(
            1,
            1_024,
            IdleStrategy::default(),
            |_| Box::new(LruStore::new(4)),
            handler,
        );
        let handle = sharded.handle();
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let handle = handle.clone();
                scope.spawn(move || {
                    for v in 0..PER_PRODUCER as u64 {
                        handle.try_job(ContentId(v + 1), (p as u64) << 32 | v).unwrap();
                    }
                });
            }
        });
        // All 200 accepted and none processed (worker gated): the
        // producer whose fetch_add returned the final count also
        // fetch_maxed it, whatever the interleaving.
        assert_eq!(handle.max_queue_depth(), PRODUCERS * PER_PRODUCER);
        gate.store(1, Ordering::Release);
        sharded.shutdown();
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in 1..=8 {
            for rank in 1..=1_000u64 {
                let s = shard_of(ContentId(rank), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(ContentId(rank), shards));
            }
        }
    }
}
