//! Concurrent live-serving cache engine for the CCN coordinated
//! in-network caching suite.
//!
//! The analytical model (ccn-model) and the discrete-event simulator
//! (ccn-sim) evaluate the paper's provisioning offline. This crate
//! runs it *live*: an in-process cluster of multi-threaded cache nodes
//! serving real concurrent requests under open-loop load, so
//! throughput, queueing, and overload behavior are measured rather
//! than modeled.
//!
//! Architecture:
//!
//! - [`ring`] — a vendored, dependency-free bounded MPSC ring queue
//!   (with its happens-before edges documented inline): uncontended
//!   enqueue is a couple of atomics and a whole run of messages moves
//!   through one CAS — or, once a ring is proven single-producer and
//!   demoted to SPSC mode, through a plain store.
//! - [`affinity`] — thread-per-core placement: dependency-free
//!   `sched_setaffinity` (raw syscall on Linux, honest no-op
//!   elsewhere) and the [`ShardPlacement`] policy pinning each shard
//!   worker and its load-generator lane to a core.
//! - [`pad`] — [`CachePadded`], a `#[repr(align(64))]` wrapper that
//!   keeps independently-written hot counters (queue depths, ring
//!   indices, per-node tallies) off each other's cache lines.
//! - [`shard`] — each node's content store is partitioned across
//!   single-writer worker shards behind bounded ring queues
//!   ([`ShardedStore`]); the simulator's O(1) LRU/LFU/static stores
//!   are reused unchanged because only one thread ever mutates each.
//!   Batched submission ([`ShardHandle::try_submit_batch`]) amortizes
//!   the queue hop across a run; workers drain in bulk and idle with
//!   a configurable spin → yield → park strategy ([`IdleStrategy`]).
//! - [`routing`] — a [`RoutingTable`] derived from the coordination
//!   plane's slice assignments answers "which live node holds this
//!   coordinated content?", with rendezvous-hash failover that moves
//!   only a failed node's share; [`LiveRouting`] is its lock-free,
//!   epoch-stamped runtime view, updated mid-run by fault injection
//!   and the health detector.
//! - [`fault`] — deterministic, operation-count-scheduled fault
//!   injection ([`FaultPlan`]): kill/revive whole nodes or single
//!   shard workers, slow or stall nodes, hand-written or drawn from a
//!   seeded MTBF/MTTR renewal process; plus the degradation-ladder
//!   knobs ([`DegradeConfig`]).
//! - [`cluster`] — [`Cluster`] wires nodes together: requests escalate
//!   local → peer → origin, mirroring the model's `d0`/`d1`/`d2`
//!   latency tiers, with bounded admission (shed) and a graceful
//!   degradation ladder (deadline-bounded forwards, bounded
//!   retry-with-backoff, dead-mode fault serving) that keeps
//!   `completed + shed == offered` exact through any fault schedule.
//! - [`control`] — the live adaptive-provisioning controller
//!   ([`Controller`] / [`ClusterController`]): a lock-free sampled
//!   [`RankTap`] on the admission path feeds a decayed
//!   maximum-likelihood re-fit of the Zipf exponent; the paper's
//!   exact optimum is re-solved under hysteresis, and retargets are
//!   applied as an *incremental chain* of config epochs, each moving
//!   at most a budgeted number of slice slots.
//! - [`load`] — open-loop Poisson/Zipf generators
//!   ([`load::drive`]) reusing `ccn_sim::workload`, so the engine and
//!   the simulator can be fed bit-identical request streams; with
//!   `batch > 1` requests are grouped into per-shard runs (paced
//!   runs flush before sleeping, so batching never delays a due
//!   request), and batch size provably does not change the outcome.
//! - [`report`] — [`serve_bench`] runs the whole pipeline and emits a
//!   `ccn-obs`-wired, JSON-serializable outcome with per-tier latency
//!   histograms and the accounting invariant
//!   `completed + shed == offered` enforced.
//!
//! # Example
//!
//! ```
//! use ccn_engine::{serve_bench, ServeBenchConfig};
//!
//! let mut config = ServeBenchConfig::default();
//! config.cluster.nodes = 2;
//! config.cluster.catalogue = 1_000;
//! config.cluster.capacity = 20;
//! config.load.horizon_ms = 50.0;
//! let outcome = serve_bench(&config).unwrap();
//! assert_eq!(outcome.offered, outcome.completed + outcome.shed);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod affinity;
#[cfg(test)]
mod alloc_count;
pub mod cluster;
pub mod control;
pub mod error;
pub mod fault;
pub mod load;
pub mod net;
pub mod pad;
pub mod report;
pub mod ring;
pub mod routing;
pub mod shard;

pub use affinity::{available_cores, pin_current_thread, PinOutcome, ShardPlacement};
pub use cluster::{
    BatchSubmitter, Cluster, ClusterConfig, EngineMetrics, StorePolicy, ENGINE_LATENCY_MS_BOUNDS,
};
pub use control::{
    ClusterController, Controller, ControllerConfig, ControllerDecision, ControllerReport,
    LayoutStep, RankTap, TapCursor,
};
pub use error::EngineError;
pub use fault::{AppliedFault, DegradeConfig, FaultEvent, FaultKind, FaultPlan};
pub use load::{DriftSegment, LoadReport, OpenLoopConfig};
pub use net::{wire_bench, NodeLaunch, NodeServer, WireOutcome, WirePipelineStats, WireSpec};
pub use pad::CachePadded;
pub use report::{controller_json, serve_bench, ServeBenchConfig, ServeBenchOutcome};
pub use routing::{LiveRouting, RoutingTable};
pub use shard::{shard_of, IdleStrategy, RingMode, ShardHandle, ShardSpec, ShardedStore};
