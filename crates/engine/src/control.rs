//! The live adaptive-provisioning controller.
//!
//! The paper solves a *static* optimum ℓ* for a known Zipf exponent
//! and names online self-adaptation as future work (§VII). This module
//! closes the loop against the serving engine:
//!
//! 1. **Sample** — a [`RankTap`] rides the admission path: per-node
//!    single-writer overwrite rings record a strided sample of offered
//!    request ranks for two relaxed atomic stores each, so the hot
//!    path pays nothing measurable and never takes a lock.
//! 2. **Re-fit** — each controller tick drains the tap into a
//!    [`ccn_zipf::StreamingFit`] decayed window and re-estimates the
//!    exponent from the window's sufficient statistics (no sample is
//!    ever re-sorted).
//! 3. **Re-solve** — the fitted ŝ feeds the paper's exact optimum
//!    (`ccn_model::CacheModel::optimal_exact`); the controller
//!    retargets only when the new ℓ* moved by more than a hysteresis
//!    threshold, so estimation noise never flaps the layout.
//! 4. **Re-slice incrementally** — a retarget is never applied in one
//!    jump. The layout delta is split into a *chain* of config epochs
//!    by linear interpolation of the slice boundaries, each epoch
//!    moving at most [`ControllerConfig::movement_budget`] slots, and
//!    each installed through the same epoch mechanism the fault plane
//!    uses ([`crate::Cluster::apply_layout`] in process, the
//!    `ConfigEpoch` push on the wire) — so warm slices survive, and
//!    `offered == completed + shed` stays exact across every
//!    transition.
//!
//! The planner ([`Controller`]) is transport-agnostic: it turns
//! observed ranks into a sequence of [`LayoutStep`]s.
//! [`ClusterController`] binds it to an in-process [`Cluster`]; the
//! wire driver in [`crate::net`] binds the same planner to TCP epoch
//! pushes.
//!
//! # Budget guarantee
//!
//! For boundaries interpolated over `K` steps, each step moves each of
//! the `n + 1` slice boundaries by at most `|Δᵢ|/K + 1` slots, and
//! every router re-fetches prefix growth independently. The chain
//! length is chosen as `K = ceil(W′ / (B − 3n))` with
//! `W′ = n·|Δ₀| + 2·Σ|Δᵢ|` (a conservative overcount of the true
//! movement), which bounds every step's total movement by `B`. The
//! constructor therefore requires `B ≥ 3n + 1`; tests verify the
//! per-step bound against the exact [`ccn_coord::LayoutDelta`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ccn_coord::{LayoutDelta, RouterAssignment};
use ccn_sim::ContentId;
use ccn_zipf::StreamingFit;

use crate::cluster::Cluster;
use crate::error::EngineError;
use crate::pad::CachePadded;

/// One node's sampling lane: a fixed overwrite ring with exactly one
/// writer (the generator lane that owns the node) and one reader (the
/// controller). Overwrite semantics — the controller reads whatever
/// survived since its last drain; a slow controller loses old samples,
/// never blocks the writer.
struct TapLane {
    /// Requests seen on this lane (pre-stride).
    seen: AtomicU64,
    /// Monotone count of samples ever written; `slots[head % len]` is
    /// the next write position.
    head: AtomicU64,
    slots: Vec<AtomicU64>,
}

/// A lock-free sampled tap on the admission path.
///
/// Created by [`ClusterController::attach`] (or directly for the wire
/// driver) and installed on the cluster; every admitted batch records
/// a 1-in-`sample_every` stride of its ranks. All stores are relaxed
/// except the head publish — torn values are impossible (`u64` slots)
/// and a racily overwritten sample only perturbs the window by one
/// observation.
pub struct RankTap {
    lanes: Vec<CachePadded<TapLane>>,
    sample_every: u64,
}

/// The reader's position in each tap lane. One cursor per reader.
#[derive(Debug, Clone)]
pub struct TapCursor {
    heads: Vec<u64>,
}

impl RankTap {
    /// A tap with one lane per node, each holding up to `capacity`
    /// samples, recording every `sample_every`-th request.
    ///
    /// # Errors
    ///
    /// Rejects zero nodes, zero capacity, or a zero stride.
    pub fn new(nodes: usize, capacity: usize, sample_every: u64) -> Result<Self, EngineError> {
        if nodes == 0 || capacity == 0 || sample_every == 0 {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "rank tap needs nodes >= 1, capacity >= 1, stride >= 1 \
                     (got {nodes}, {capacity}, {sample_every})"
                ),
            });
        }
        let lanes = (0..nodes)
            .map(|_| {
                CachePadded::new(TapLane {
                    seen: AtomicU64::new(0),
                    head: AtomicU64::new(0),
                    slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
                })
            })
            .collect();
        Ok(Self { lanes, sample_every })
    }

    /// Number of per-node lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Records one offered request's rank on `node`'s lane (strided).
    /// Must only be called by the node's single producer thread.
    #[inline]
    pub fn record(&self, node: usize, content: ContentId) {
        let lane = &self.lanes[node];
        // Single writer per lane: load + store beats fetch_add.
        let seen = lane.seen.load(Ordering::Relaxed) + 1;
        lane.seen.store(seen, Ordering::Relaxed);
        if !seen.is_multiple_of(self.sample_every) {
            return;
        }
        let head = lane.head.load(Ordering::Relaxed);
        let at = (head % self.slots_len()) as usize;
        lane.slots[at].store(content.rank(), Ordering::Relaxed);
        // Release-publish the slot write before advancing the head.
        lane.head.store(head + 1, Ordering::Release);
    }

    /// Records a whole admitted run (strided, same single-writer
    /// contract as [`RankTap::record`]).
    pub fn record_run(&self, node: usize, contents: &[ContentId]) {
        for &content in contents {
            self.record(node, content);
        }
    }

    /// A fresh cursor positioned at "now" for lanes written so far.
    #[must_use]
    pub fn cursor(&self) -> TapCursor {
        TapCursor { heads: vec![0; self.lanes.len()] }
    }

    /// Drains every sample written since the cursor's last visit into
    /// `out` (appending). Samples overwritten in the interim are lost,
    /// not re-read.
    pub fn drain(&self, cursor: &mut TapCursor, out: &mut Vec<u64>) {
        for (lane, last) in self.lanes.iter().zip(cursor.heads.iter_mut()) {
            let head = lane.head.load(Ordering::Acquire);
            let start = (*last).max(head.saturating_sub(self.slots_len()));
            for i in start..head {
                out.push(lane.slots[(i % self.slots_len()) as usize].load(Ordering::Relaxed));
            }
            *last = head;
        }
    }

    fn slots_len(&self) -> u64 {
        self.lanes[0].slots.len() as u64
    }
}

/// Tuning of the adaptive loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Trade-off weight `α` for the model re-solve.
    pub alpha: f64,
    /// Per-tick decay of the observation window (see
    /// [`ccn_zipf::StreamingFit`]).
    pub decay: f64,
    /// Minimum decayed window weight before a fit is trusted.
    pub min_window: f64,
    /// Retarget only when `|ℓ_new − ℓ_current|` exceeds this.
    pub hysteresis: f64,
    /// Maximum slots any single config epoch may move (`B`). Must be
    /// at least `3·nodes + 1` for the chain bound to hold.
    pub movement_budget: u64,
    /// Record every `sample_every`-th offered request into the tap.
    pub sample_every: u64,
    /// Per-lane tap ring capacity.
    pub tap_capacity: usize,
    /// Cadence of the threaded runner (ignored by synchronous
    /// [`ClusterController::step`] calls).
    pub tick_interval: Duration,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            alpha: 0.9,
            decay: 0.8,
            min_window: 2_000.0,
            hysteresis: 0.05,
            movement_budget: 256,
            sample_every: 4,
            tap_capacity: 4_096,
            tick_interval: Duration::from_millis(50),
        }
    }
}

impl ControllerConfig {
    pub(crate) fn validate(&self, nodes: usize) -> Result<(), EngineError> {
        let reject = |reason: String| Err(EngineError::InvalidConfig { reason });
        if nodes < 2 {
            return reject("adaptive control needs nodes >= 2 (the model requires n > 1)".into());
        }
        if !(self.decay > 0.0 && self.decay <= 1.0) {
            return reject(format!("decay {} must be in (0, 1]", self.decay));
        }
        if !(self.min_window > 0.0 && self.min_window.is_finite()) {
            return reject(format!("min_window {} must be finite and > 0", self.min_window));
        }
        if !(self.hysteresis >= 0.0 && self.hysteresis.is_finite()) {
            return reject(format!("hysteresis {} must be finite and >= 0", self.hysteresis));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return reject(format!("alpha {} must be in [0, 1]", self.alpha));
        }
        let floor = 3 * nodes as u64 + 1;
        if self.movement_budget < floor {
            return reject(format!(
                "movement_budget {} must be >= 3*nodes + 1 = {floor} \
                 for the per-epoch bound to hold",
                self.movement_budget
            ));
        }
        if self.sample_every == 0 || self.tap_capacity == 0 {
            return reject("sample_every and tap_capacity must be >= 1".into());
        }
        Ok(())
    }
}

/// One decision the controller took, in order. The full log is part of
/// [`ControllerReport`] and lands in the bench manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerDecision {
    /// The decayed window was too light to trust a fit.
    InsufficientWindow {
        /// Window weight at the time.
        weight: f64,
    },
    /// A fit landed within the hysteresis band; nothing changed.
    Hold {
        /// Freshly fitted exponent.
        fitted_s: f64,
        /// ℓ* the fit implied.
        candidate_ell: f64,
    },
    /// The optimum moved: a new epoch chain was planned.
    Retarget {
        /// Freshly fitted exponent.
        fitted_s: f64,
        /// The new target coordination level.
        target_ell: f64,
        /// Epochs the transition was split into.
        steps: usize,
        /// Exact total slots the whole chain moves.
        total_move: u64,
    },
    /// One chain epoch was issued.
    ChainStep {
        /// Exact slots this epoch moved.
        moved_slots: u64,
        /// Epochs still pending after this one.
        remaining: usize,
    },
}

impl std::fmt::Display for ControllerDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InsufficientWindow { weight } => write!(f, "window:{weight:.1}"),
            Self::Hold { fitted_s, candidate_ell } => {
                write!(f, "hold:s={fitted_s:.4},ell={candidate_ell:.4}")
            }
            Self::Retarget { fitted_s, target_ell, steps, total_move } => {
                write!(
                    f,
                    "retarget:s={fitted_s:.4},ell={target_ell:.4},steps={steps},move={total_move}"
                )
            }
            Self::ChainStep { moved_slots, remaining } => {
                write!(f, "step:moved={moved_slots},remaining={remaining}")
            }
        }
    }
}

/// One layout the engine should install next, produced by
/// [`Controller::plan`].
#[derive(Debug, Clone)]
pub struct LayoutStep {
    /// The complete slice layout for this epoch (identity router
    /// order; empty slices allowed mid-chain).
    pub assignments: Vec<RouterAssignment>,
    /// Exact slots moved relative to the previous layout.
    pub moved_slots: u64,
    /// Chain epochs still pending after this one.
    pub remaining: usize,
}

/// Observability snapshot of the controller, exported through
/// `ccn-obs` into bench manifests.
#[derive(Debug, Clone)]
pub struct ControllerReport {
    /// Most recent fitted exponent (None before the first fit).
    pub fitted_s: Option<f64>,
    /// Decayed window weight at snapshot time.
    pub window_weight: f64,
    /// Raw ranks ever drained into the estimator.
    pub samples_observed: u64,
    /// Fits attempted over a sufficient window.
    pub refits: u64,
    /// Fits that landed within hysteresis.
    pub holds: u64,
    /// Target changes (each spawning an epoch chain).
    pub retargets: u64,
    /// Config epochs issued (chain steps actually installed).
    pub epochs_issued: u64,
    /// Total slots moved across all issued epochs.
    pub slices_moved: u64,
    /// The currently targeted coordination level ℓ.
    pub current_ell: f64,
    /// The per-epoch movement budget in force.
    pub movement_budget: u64,
    /// Chain epochs still pending.
    pub pending_steps: usize,
    /// Every decision taken, in order.
    pub decisions: Vec<ControllerDecision>,
}

/// The transport-agnostic planner: observed ranks in, layout epochs
/// out. Owns the decayed estimator, the hysteresis state, and the
/// pending epoch chain.
pub struct Controller {
    config: ControllerConfig,
    nodes: usize,
    capacity: u64,
    fit: StreamingFit,
    current_ell: f64,
    /// Current layout as slice boundaries: `boundaries[i]` is the
    /// start of router `i`'s slice, `boundaries[n]` the end of the
    /// last; the shared prefix is `boundaries[0] - 1`.
    boundaries: Vec<u64>,
    chain: VecDeque<Vec<u64>>,
    fitted_s: Option<f64>,
    refits: u64,
    holds: u64,
    retargets: u64,
    epochs_issued: u64,
    slices_moved: u64,
    decisions: Vec<ControllerDecision>,
}

/// Boundaries for `x = round(ell * capacity)` slots per node.
fn boundaries_for(ell: f64, capacity: u64, nodes: usize) -> Vec<u64> {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let x = (ell * capacity as f64).round() as u64;
    let start = capacity - x + 1;
    (0..=nodes as u64).map(|i| start + i * x).collect()
}

fn assignments_from(boundaries: &[u64]) -> Vec<RouterAssignment> {
    let prefix = boundaries[0] - 1;
    boundaries
        .windows(2)
        .enumerate()
        .map(|(router, pair)| RouterAssignment {
            router,
            local_prefix: prefix,
            slice: pair[0]..pair[1],
        })
        .collect()
}

impl Controller {
    /// A planner for a cluster of `nodes` nodes with per-node
    /// `capacity`, a catalogue of `catalogue` ranks, and an enacted
    /// starting level `initial_ell`.
    ///
    /// # Errors
    ///
    /// Rejects invalid tuning (see [`ControllerConfig`]) and
    /// degenerate cluster geometry.
    pub fn new(
        nodes: usize,
        catalogue: u64,
        capacity: u64,
        initial_ell: f64,
        config: ControllerConfig,
    ) -> Result<Self, EngineError> {
        config.validate(nodes)?;
        if capacity == 0 || capacity > catalogue {
            return Err(EngineError::InvalidConfig {
                reason: format!("capacity {capacity} must be in 1..={catalogue}"),
            });
        }
        if !(0.0..=1.0).contains(&initial_ell) {
            return Err(EngineError::InvalidConfig {
                reason: format!("initial ell {initial_ell} must be in [0, 1]"),
            });
        }
        let fit = StreamingFit::new(catalogue, config.decay).map_err(|e| {
            EngineError::InvalidConfig { reason: format!("estimator rejected window: {e}") }
        })?;
        Ok(Self {
            config,
            nodes,
            capacity,
            fit,
            current_ell: initial_ell,
            boundaries: boundaries_for(initial_ell, capacity, nodes),
            chain: VecDeque::new(),
            fitted_s: None,
            refits: 0,
            holds: 0,
            retargets: 0,
            epochs_issued: 0,
            slices_moved: 0,
            decisions: Vec::new(),
        })
    }

    /// The currently targeted coordination level.
    #[must_use]
    pub fn current_ell(&self) -> f64 {
        self.current_ell
    }

    /// Chain epochs still pending.
    #[must_use]
    pub fn pending_steps(&self) -> usize {
        self.chain.len()
    }

    /// Most recent fitted exponent (None before the first fit) —
    /// cheaper than [`Controller::report`] when only the fit is
    /// needed per issued epoch.
    #[must_use]
    pub fn fitted(&self) -> Option<f64> {
        self.fitted_s
    }

    /// The layout currently enacted (or mid-chain) as assignments.
    #[must_use]
    pub fn current_assignments(&self) -> Vec<RouterAssignment> {
        assignments_from(&self.boundaries)
    }

    /// Folds one tick's worth of observed ranks into the decayed
    /// window. Out-of-catalogue ranks (impossible from the tap, but
    /// cheap to guard) are dropped.
    pub fn observe(&mut self, ranks: &[u64]) {
        let catalogue = self.fit.catalogue();
        if ranks.iter().all(|&r| r >= 1 && r <= catalogue) {
            let _ = self.fit.observe(ranks);
        } else {
            let valid: Vec<u64> =
                ranks.iter().copied().filter(|&r| r >= 1 && r <= catalogue).collect();
            let _ = self.fit.observe(&valid);
        }
    }

    /// One control tick: advances the pending chain if there is one,
    /// otherwise re-fits and (past hysteresis) plans a new chain.
    /// Returns the next layout to install, if any.
    ///
    /// # Errors
    ///
    /// Propagates model re-solve failures. Estimation failures on a
    /// degenerate window are not errors — the tick just holds.
    pub fn plan(&mut self) -> Result<Option<LayoutStep>, EngineError> {
        if let Some(step) = self.advance_chain() {
            return Ok(Some(step));
        }
        if self.fit.weight() < self.config.min_window {
            self.decisions
                .push(ControllerDecision::InsufficientWindow { weight: self.fit.weight() });
            return Ok(None);
        }
        let Ok(fitted) = self.fit.fit() else {
            self.decisions
                .push(ControllerDecision::InsufficientWindow { weight: self.fit.weight() });
            return Ok(None);
        };
        self.refits += 1;
        // Clamp into the model's admissible domain (s in (0,1)∪(1,2)):
        // the MLE search range is wider, and s = 1 is a pole.
        let mut s = fitted.exponent.clamp(0.05, 1.95);
        if (s - 1.0).abs() < 0.005 {
            s = if fitted.exponent >= 1.0 { 1.005 } else { 0.995 };
        }
        self.fitted_s = Some(s);
        let candidate_ell = self.solve_ell(s)?;
        if (candidate_ell - self.current_ell).abs() <= self.config.hysteresis {
            self.holds += 1;
            self.decisions.push(ControllerDecision::Hold { fitted_s: s, candidate_ell });
            return Ok(None);
        }
        let target = boundaries_for(candidate_ell, self.capacity, self.nodes);
        let chain = build_chain(&self.boundaries, &target, self.config.movement_budget, self.nodes);
        let total_move =
            LayoutDelta::between(&assignments_from(&self.boundaries), &assignments_from(&target))
                .moved_slots();
        self.retargets += 1;
        self.decisions.push(ControllerDecision::Retarget {
            fitted_s: s,
            target_ell: candidate_ell,
            steps: chain.len(),
            total_move,
        });
        self.current_ell = candidate_ell;
        self.chain = chain;
        Ok(self.advance_chain())
    }

    /// Re-plays the remainder of the current layout unconditionally —
    /// the wire driver uses this to re-push state to a revived node
    /// (the cumulative current layout *is* the partial chain's state).
    #[must_use]
    pub fn replay_layout(&self) -> Vec<RouterAssignment> {
        self.current_assignments()
    }

    /// Snapshot for manifests. The decision log is cloned, not
    /// drained.
    #[must_use]
    pub fn report(&self) -> ControllerReport {
        ControllerReport {
            fitted_s: self.fitted_s,
            window_weight: self.fit.weight(),
            samples_observed: self.fit.observed(),
            refits: self.refits,
            holds: self.holds,
            retargets: self.retargets,
            epochs_issued: self.epochs_issued,
            slices_moved: self.slices_moved,
            current_ell: self.current_ell,
            movement_budget: self.config.movement_budget,
            pending_steps: self.chain.len(),
            decisions: self.decisions.clone(),
        }
    }

    fn advance_chain(&mut self) -> Option<LayoutStep> {
        let next = self.chain.pop_front()?;
        let moved_slots =
            LayoutDelta::between(&assignments_from(&self.boundaries), &assignments_from(&next))
                .moved_slots();
        self.boundaries = next;
        self.epochs_issued += 1;
        self.slices_moved += moved_slots;
        let remaining = self.chain.len();
        self.decisions.push(ControllerDecision::ChainStep { moved_slots, remaining });
        Some(LayoutStep { assignments: assignments_from(&self.boundaries), moved_slots, remaining })
    }

    fn solve_ell(&self, s: f64) -> Result<f64, EngineError> {
        let mut builder = ccn_model::ModelParams::builder();
        #[allow(clippy::cast_possible_truncation)]
        builder
            .zipf_exponent(s)
            .routers(self.nodes as u32)
            .catalogue(self.fit.catalogue() as f64)
            .capacity(self.capacity as f64)
            .alpha(self.config.alpha);
        let params = builder.build().map_err(|e| EngineError::InvalidConfig {
            reason: format!("controller re-solve rejected parameters: {e}"),
        })?;
        let model = ccn_model::CacheModel::new(params).map_err(|e| EngineError::InvalidConfig {
            reason: format!("controller re-solve failed: {e}"),
        })?;
        let optimum = model.optimal_exact().map_err(|e| EngineError::InvalidConfig {
            reason: format!("controller re-solve failed: {e}"),
        })?;
        Ok(optimum.ell_star)
    }
}

/// Splits the boundary transition `from → to` into interpolated
/// steps, each moving at most `budget` slots (see the module docs for
/// the bound). Returns the chain *excluding* the starting layout,
/// ending exactly at `to`; empty when the layouts already agree.
fn build_chain(from: &[u64], to: &[u64], budget: u64, nodes: usize) -> VecDeque<Vec<u64>> {
    if from == to {
        return VecDeque::new();
    }
    let deltas: Vec<i64> = from
        .iter()
        .zip(to)
        .map(|(&a, &b)| i64::try_from(b).unwrap_or(i64::MAX) - i64::try_from(a).unwrap_or(0))
        .collect();
    let n = nodes as u64;
    let weight: u64 =
        n * deltas[0].unsigned_abs() + 2 * deltas.iter().map(|d| d.unsigned_abs()).sum::<u64>();
    let effective = budget.saturating_sub(3 * n).max(1);
    let steps = weight.div_ceil(effective).max(1);
    let mut chain = VecDeque::new();
    let mut previous = from.to_vec();
    for t in 1..=steps {
        let layout: Vec<u64> = from
            .iter()
            .zip(&deltas)
            .map(|(&base, &delta)| {
                let offset = (i128::from(delta) * i128::from(t)).div_euclid(i128::from(steps));
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                let moved = (i128::from(base) + offset) as u64;
                moved
            })
            .collect();
        if layout != previous {
            previous = layout.clone();
            chain.push_back(layout);
        }
    }
    chain
}

/// The in-process binding: a [`Controller`] wired to a [`Cluster`]'s
/// tap and epoch mechanism.
pub struct ClusterController {
    inner: Controller,
    tap: Arc<RankTap>,
    cursor: TapCursor,
    scratch: Vec<u64>,
}

impl ClusterController {
    /// Builds the controller for `cluster`, creates the rank tap, and
    /// installs it on the cluster's admission path. Call before
    /// driving load (the tap only sees requests offered after it is
    /// installed).
    ///
    /// # Errors
    ///
    /// Propagates configuration errors; rejects a cluster that
    /// already has a tap installed.
    pub fn attach(cluster: &Cluster, config: ControllerConfig) -> Result<Self, EngineError> {
        let cc = cluster.config();
        let inner = Controller::new(cc.nodes, cc.catalogue, cc.capacity, cc.ell, config)?;
        let tap = Arc::new(RankTap::new(cc.nodes, config.tap_capacity, config.sample_every)?);
        cluster.install_tap(Arc::clone(&tap))?;
        let cursor = tap.cursor();
        Ok(Self { inner, tap, cursor, scratch: Vec::new() })
    }

    /// The shared tap (for tests and extra producers).
    #[must_use]
    pub fn tap(&self) -> Arc<RankTap> {
        Arc::clone(&self.tap)
    }

    /// Read-only access to the planner.
    #[must_use]
    pub fn controller(&self) -> &Controller {
        &self.inner
    }

    /// One synchronous control tick: drains the tap, feeds the
    /// estimator, and — when the planner emits a layout — installs it
    /// on the cluster through the config-epoch mechanism. Returns the
    /// installed epoch, if any.
    ///
    /// # Errors
    ///
    /// Propagates re-solve and layout-installation failures.
    pub fn step(&mut self, cluster: &Cluster) -> Result<Option<u64>, EngineError> {
        self.scratch.clear();
        self.tap.drain(&mut self.cursor, &mut self.scratch);
        let drained = std::mem::take(&mut self.scratch);
        self.inner.observe(&drained);
        self.scratch = drained;
        match self.inner.plan()? {
            Some(step) => {
                let epoch = cluster.apply_layout(&step.assignments)?;
                Ok(Some(epoch))
            }
            None => Ok(None),
        }
    }

    /// Runs [`ClusterController::step`] until the pending chain is
    /// fully drained (useful in tests and at end of run, so a drift
    /// late in the run still converges). Returns epochs issued.
    ///
    /// # Errors
    ///
    /// Propagates step failures.
    pub fn drain_chain(&mut self, cluster: &Cluster) -> Result<u64, EngineError> {
        let mut issued = 0;
        while self.inner.pending_steps() > 0 {
            if self.step(cluster)?.is_some() {
                issued += 1;
            }
        }
        Ok(issued)
    }

    /// Planner snapshot for manifests.
    #[must_use]
    pub fn report(&self) -> ControllerReport {
        self.inner.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_records_strided_and_drains_once() {
        let tap = RankTap::new(2, 8, 2).unwrap();
        let mut cursor = tap.cursor();
        for rank in 1..=10u64 {
            tap.record(0, ContentId(rank));
        }
        let mut out = Vec::new();
        tap.drain(&mut cursor, &mut out);
        // Every 2nd of ranks 1..=10: 2, 4, 6, 8, 10.
        assert_eq!(out, vec![2, 4, 6, 8, 10]);
        out.clear();
        tap.drain(&mut cursor, &mut out);
        assert!(out.is_empty(), "second drain must see nothing new");
        // Overflow loses oldest samples, never duplicates.
        for rank in 1..=40u64 {
            tap.record(1, ContentId(rank));
        }
        tap.drain(&mut cursor, &mut out);
        assert_eq!(out, vec![26, 28, 30, 32, 34, 36, 38, 40]);
    }

    #[test]
    fn tap_rejects_degenerate_shapes() {
        assert!(RankTap::new(0, 8, 1).is_err());
        assert!(RankTap::new(2, 0, 1).is_err());
        assert!(RankTap::new(2, 8, 0).is_err());
    }

    fn boundary_chain(from: &[u64], to: &[u64], budget: u64, nodes: usize) -> Vec<Vec<u64>> {
        build_chain(from, to, budget, nodes).into_iter().collect()
    }

    #[test]
    fn chain_reaches_the_target_monotonically() {
        let from = boundaries_for(0.2, 100, 4); // x=20, start 81
        let to = boundaries_for(0.8, 100, 4); // x=80, start 21
        let chain = boundary_chain(&from, &to, 40, 4);
        assert!(!chain.is_empty());
        assert_eq!(chain.last().unwrap(), &to, "chain must land exactly on target");
        for layout in &chain {
            assert!(layout.windows(2).all(|p| p[0] <= p[1]), "non-monotone {layout:?}");
            assert!(layout[0] >= 1, "start below rank 1: {layout:?}");
        }
    }

    #[test]
    fn every_chain_step_respects_the_movement_budget() {
        for (ell_a, ell_b, budget) in
            [(0.1, 0.9, 13u64), (0.9, 0.1, 16), (0.0, 1.0, 40), (0.3, 0.35, 13), (0.5, 0.5, 13)]
        {
            let nodes = 4;
            let from = boundaries_for(ell_a, 100, nodes);
            let to = boundaries_for(ell_b, 100, nodes);
            let chain = boundary_chain(&from, &to, budget, nodes);
            let mut previous = from.clone();
            for layout in &chain {
                let moved =
                    LayoutDelta::between(&assignments_from(&previous), &assignments_from(layout))
                        .moved_slots();
                assert!(
                    moved <= budget,
                    "step moved {moved} > budget {budget} ({ell_a} -> {ell_b}): {layout:?}"
                );
                previous = layout.clone();
            }
            if ell_a != ell_b {
                assert_eq!(chain.last().unwrap(), &to);
            } else {
                assert!(chain.is_empty(), "no-op transition must not emit epochs");
            }
        }
    }

    #[test]
    fn controller_holds_inside_hysteresis_and_retargets_outside() {
        let config = ControllerConfig {
            min_window: 100.0,
            movement_budget: 64,
            ..ControllerConfig::default()
        };
        let mut ctl = Controller::new(4, 10_000, 100, 0.5, config).unwrap();
        // Starved window: no decision beyond "insufficient".
        assert!(ctl.plan().unwrap().is_none());
        assert_eq!(ctl.report().refits, 0);
        // Feed a workload whose optimum (ℓ*(0.7) ≈ 0.91 at n=4,
        // α=0.9) sits far outside the hysteresis band around 0.5.
        let sampler = ccn_zipf::ZipfSampler::new(0.7, 10_000).unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        ctl.observe(&sampler.sample_many(&mut rng, 20_000));
        let first = ctl.plan().unwrap();
        assert!(first.is_some(), "a large drift must retarget");
        let report = ctl.report();
        assert_eq!(report.retargets, 1);
        let fitted = report.fitted_s.unwrap();
        assert!((fitted - 0.7).abs() < 0.1, "fit missed the drift: {fitted}");
        assert!((report.current_ell - 0.9).abs() < 0.1, "unexpected target {}", report.current_ell);
        // Drain the chain; each step is budgeted.
        while ctl.pending_steps() > 0 {
            let step = ctl.plan().unwrap().expect("pending chain must advance");
            assert!(step.moved_slots <= 64);
        }
        // Same workload again: the fit lands where we already are.
        ctl.observe(&sampler.sample_many(&mut rng, 20_000));
        assert!(ctl.plan().unwrap().is_none(), "stationary workload must hold");
        let report = ctl.report();
        assert_eq!(report.holds, 1);
        assert_eq!(report.pending_steps, 0);
        assert!(report.slices_moved > 0);
    }

    #[test]
    fn controller_rejects_undersized_budgets() {
        let config = ControllerConfig { movement_budget: 12, ..ControllerConfig::default() };
        // 4 nodes need >= 13.
        assert!(Controller::new(4, 10_000, 100, 0.5, config).is_err());
        let config = ControllerConfig { movement_budget: 13, ..ControllerConfig::default() };
        assert!(Controller::new(4, 10_000, 100, 0.5, config).is_ok());
    }
}
