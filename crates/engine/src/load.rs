//! Open-loop Poisson/Zipf load generation against a [`Cluster`].
//!
//! Generators reuse the simulator's workload machinery
//! ([`ccn_sim::workload::zipf_irm`]): per-node Poisson arrivals with
//! Zipf-distributed content popularity, pre-drawn from a fixed seed so
//! the offered load is reproducible. The loop is *open*: a generator
//! issues each request at its scheduled arrival time (or flat-out in
//! unpaced mode) regardless of whether earlier requests completed.
//! When admission pushes back the request is counted as **shed**, not
//! retried — exactly the overload behavior a closed loop would mask.
//!
//! With [`OpenLoopConfig::batch`] > 1 the generator runs the
//! **batched pipeline**: requests are grouped into per-`(node,
//! shard)` runs (by [`crate::shard::shard_of`], the same routing the
//! cluster applies) and each full run is admitted through a single
//! queue claim ([`crate::cluster::BatchSubmitter`]). In paced mode
//! every buffered run is flushed before the generator sleeps, so
//! batching never delays a request past its own arrival time; only
//! already-due backlog is coalesced.
//!
//! # Placement
//!
//! When the cluster's [`ShardPlacement`](crate::ShardPlacement) pins,
//! generator lane `g` pins itself to
//! [`generator_core`](crate::ShardPlacement::generator_core) — the
//! core of the first shard of the first node the lane owns — so under
//! thread-per-core the producer and the consumer it feeds most share
//! a core. [`drive`] also registers each lane in the cluster's
//! producer census *before* spawning it (the spawn gives the
//! happens-before edge), so a single-lane run under
//! [`RingMode::Auto`](crate::RingMode) demotes the shard rings to the
//! SPSC fast path with no registration race.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ccn_sim::workload::{self, Request};

use crate::cluster::Cluster;
use crate::error::EngineError;
use crate::shard::shard_of;

/// One scripted popularity change: from `at_ms` of workload time
/// onward the offered traffic is drawn with exponent `zipf_s`
/// (until the next segment, or the horizon).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSegment {
    /// Workload time the new exponent takes effect, in milliseconds.
    pub at_ms: f64,
    /// The Zipf exponent from `at_ms` onward.
    pub zipf_s: f64,
}

/// Configuration of one open-loop driving session.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Generator (client) threads; clamped to the node count.
    pub generators: usize,
    /// Zipf popularity exponent `s` of the offered traffic (until the
    /// first [`DriftSegment`], if any).
    pub zipf_s: f64,
    /// Poisson arrival rate per node, in requests per millisecond of
    /// workload time.
    pub rate_per_node_per_ms: f64,
    /// Workload horizon in milliseconds (with `paced`, also the
    /// approximate wall-clock duration).
    pub horizon_ms: f64,
    /// `true` issues each request at its Poisson arrival time;
    /// `false` replays the same request stream as fast as possible
    /// (saturation / throughput mode).
    pub paced: bool,
    /// Workload seed. With a single generator the request stream is
    /// identical to the simulator's for the same seed and parameters.
    pub seed: u64,
    /// Maximum requests admitted per queue operation. `1` submits
    /// per-op (the pre-batching pipeline); larger values group
    /// requests by owning shard and admit each run with one queue
    /// claim. Tier attribution and (single-shard) determinism are
    /// batch-size invariant — property-tested in this module.
    pub batch: usize,
    /// Scripted popularity drift: each segment switches the offered
    /// exponent at its `at_ms`. Must be strictly increasing and
    /// inside `(0, horizon_ms)`. Empty (the default) keeps `zipf_s`
    /// for the whole run — and keeps the single-generator stream
    /// bit-identical to the simulator's for the same seed.
    pub drift: Vec<DriftSegment>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            generators: 1,
            zipf_s: 0.8,
            rate_per_node_per_ms: 0.05,
            horizon_ms: 1_000.0,
            paced: false,
            seed: 42,
            batch: 1,
            drift: Vec::new(),
        }
    }
}

impl OpenLoopConfig {
    /// The run as constant-exponent spans `(start_ms, end_ms, s)`
    /// covering `[0, horizon_ms)`.
    ///
    /// # Errors
    ///
    /// Rejects drift points that are not strictly increasing or lie
    /// outside `(0, horizon_ms)`.
    fn spans(&self) -> Result<Vec<(f64, f64, f64)>, EngineError> {
        let mut spans = Vec::with_capacity(self.drift.len() + 1);
        let mut start = 0.0;
        let mut s = self.zipf_s;
        for segment in &self.drift {
            if !(segment.at_ms > start && segment.at_ms < self.horizon_ms) {
                return Err(EngineError::InvalidConfig {
                    reason: format!(
                        "drift point {} ms must be strictly increasing and inside (0, {})",
                        segment.at_ms, self.horizon_ms
                    ),
                });
            }
            spans.push((start, segment.at_ms, s));
            start = segment.at_ms;
            s = segment.zipf_s;
        }
        spans.push((start, self.horizon_ms, s));
        Ok(spans)
    }
}

/// A deterministic per-(lane, span) workload seed: lanes already space
/// by `+ g`, so spans mix a large odd constant to keep every
/// (lane, span) stream independent of every other.
fn span_seed(seed: u64, lane: usize, span: usize) -> u64 {
    seed.wrapping_add(lane as u64).wrapping_add((span as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// What the generators offered and what admission did with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests issued by all generators.
    pub offered: u64,
    /// Requests rejected at admission (bounded queue full).
    pub shed: u64,
    /// Generator threads actually used.
    pub generators: usize,
    /// Generator threads that successfully pinned to their placement
    /// core (0 when the cluster's placement does not pin).
    pub pinned_generators: usize,
    /// Wall-clock duration from first issue until the cluster drained,
    /// in milliseconds.
    pub wall_ms: u64,
}

/// Sleeps (coarsely) then spins (precisely) until `at_ms` of workload
/// time has elapsed since `start`.
fn pace_until(start: Instant, at_ms: f64) {
    let target = Duration::from_secs_f64(at_ms / 1e3);
    loop {
        let now = start.elapsed();
        if now >= target {
            return;
        }
        let left = target - now;
        if left > Duration::from_millis(2) {
            std::thread::sleep(left - Duration::from_millis(1));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// One generator's view of the workload: issues requests per-op or in
/// per-shard runs, tracking offered/shed counts.
struct Generator<'a> {
    cluster: &'a Cluster,
    /// Per-`(owned-node, shard)` pending runs, indexed
    /// `local_node * shards + shard`.
    buffers: Vec<Vec<ccn_sim::ContentId>>,
    /// Dense node → owned-slot map (`usize::MAX` = not ours).
    local_index: Vec<usize>,
    /// Reverse of `local_index`: owned slot → node id.
    owned: Vec<usize>,
    shards: usize,
    batch: usize,
    issued: u64,
    rejected: u64,
}

impl<'a> Generator<'a> {
    fn new(cluster: &'a Cluster, owned: &[usize], batch: usize) -> Self {
        let shards = cluster.config().shards_per_node;
        let mut local_index = vec![usize::MAX; cluster.config().nodes];
        for (slot, &node) in owned.iter().enumerate() {
            local_index[node] = slot;
        }
        Self {
            cluster,
            buffers: vec![Vec::with_capacity(batch); owned.len() * shards],
            local_index,
            owned: owned.to_vec(),
            shards,
            batch,
            issued: 0,
            rejected: 0,
        }
    }

    /// Queues one request, flushing its run if it reached the batch
    /// size. With `batch == 1` this is the per-op path (no buffering).
    fn issue(&mut self, submitter: &mut crate::cluster::BatchSubmitter<'a>, request: &Request) {
        self.issued += 1;
        if self.batch <= 1 {
            if !self.cluster.try_submit(request.router, request.content) {
                self.rejected += 1;
            }
            return;
        }
        let shard = shard_of(request.content, self.shards);
        let slot = self.local_index[request.router] * self.shards + shard;
        self.buffers[slot].push(request.content);
        if self.buffers[slot].len() >= self.batch {
            self.flush_slot(submitter, slot);
        }
    }

    fn flush_slot(&mut self, submitter: &mut crate::cluster::BatchSubmitter<'a>, slot: usize) {
        let run = &mut self.buffers[slot];
        if run.is_empty() {
            return;
        }
        let offered = run.len();
        let node = self.owned[slot / self.shards];
        let accepted = submitter.submit_run(node, slot % self.shards, run);
        self.rejected += (offered - accepted) as u64;
    }

    /// Flushes every pending run — called before a paced sleep and at
    /// end of stream, so batching never holds back due requests.
    fn flush_all(&mut self, submitter: &mut crate::cluster::BatchSubmitter<'a>) {
        for slot in 0..self.buffers.len() {
            self.flush_slot(submitter, slot);
        }
    }
}

/// Drives `cluster` with open-loop load and blocks until every
/// admitted request has completed.
///
/// # Errors
///
/// Returns [`EngineError::InvalidConfig`] for a zero generator count
/// or zero batch size, and [`EngineError::Workload`] when the
/// workload parameters are rejected.
pub fn drive(cluster: &Cluster, config: &OpenLoopConfig) -> Result<LoadReport, EngineError> {
    if config.generators == 0 {
        return Err(EngineError::InvalidConfig { reason: "generators must be >= 1".into() });
    }
    if config.batch == 0 {
        return Err(EngineError::InvalidConfig { reason: "batch must be >= 1".into() });
    }
    let nodes = cluster.config().nodes;
    let catalogue = cluster.config().catalogue;
    let generators = config.generators.min(nodes);
    // Round-robin node ownership: generator g drives nodes g, g+G, …
    // so every node has exactly one producer.
    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); generators];
    for node in 0..nodes {
        partitions[node % generators].push(node);
    }
    // Pre-draw every stream before starting the clock: sampling is
    // not part of the measured serving path. Drifted runs concatenate
    // one constant-exponent draw per span, shifted to span time.
    let spans = config.spans()?;
    let streams = partitions
        .iter()
        .enumerate()
        .map(|(g, owned)| -> Result<Vec<Request>, EngineError> {
            let mut stream = Vec::new();
            for (j, &(span_start, span_end, s)) in spans.iter().enumerate() {
                let mut part = workload::zipf_irm(
                    owned,
                    s,
                    catalogue,
                    config.rate_per_node_per_ms,
                    span_end - span_start,
                    span_seed(config.seed, g, j),
                )?;
                for request in &mut part {
                    request.time += span_start;
                }
                stream.append(&mut part);
            }
            Ok(stream)
        })
        .collect::<Result<Vec<_>, _>>()?;
    // Register every lane in the producer census before any lane can
    // submit: the spawns below give the happens-before edge, so under
    // RingMode::Auto the first submission's seal sees the full count
    // (1 lane ⇒ SPSC demotion, more ⇒ MPSC) with no race.
    for _ in 0..generators {
        cluster.register_producer()?;
    }
    let placement = cluster.config().placement;
    let shards_per_node = cluster.config().shards_per_node;
    let offered = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let pinned = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (lane, (stream, owned)) in streams.iter().zip(&partitions).enumerate() {
            let offered = &offered;
            let shed = &shed;
            let pinned = &pinned;
            scope.spawn(move || {
                if placement.pin_to(placement.generator_core(lane, shards_per_node)) {
                    pinned.fetch_add(1, Ordering::Relaxed);
                }
                let mut submitter = cluster.batch_submitter();
                let mut generator = Generator::new(cluster, owned, config.batch);
                for request in stream {
                    if config.paced {
                        let target = Duration::from_secs_f64(request.time / 1e3);
                        if start.elapsed() < target {
                            // Issue all due backlog before sleeping:
                            // batching must not delay due requests.
                            generator.flush_all(&mut submitter);
                            pace_until(start, request.time);
                        }
                    }
                    generator.issue(&mut submitter, request);
                }
                generator.flush_all(&mut submitter);
                offered.fetch_add(generator.issued, Ordering::AcqRel);
                shed.fetch_add(generator.rejected, Ordering::AcqRel);
            });
        }
    });
    cluster.drain();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let wall_ms = (start.elapsed().as_secs_f64() * 1e3).ceil() as u64;
    Ok(LoadReport {
        offered: offered.into_inner(),
        shed: shed.into_inner(),
        generators,
        pinned_generators: pinned.into_inner(),
        wall_ms: wall_ms.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, StorePolicy};
    use ccn_sim::TierCounts;

    fn small_cluster(shards: usize) -> ClusterConfig {
        ClusterConfig {
            nodes: 3,
            shards_per_node: shards,
            // Large enough that these short workloads never shed: the
            // determinism assertions compare complete tier counts.
            queue_capacity: 8_192,
            catalogue: 2_000,
            capacity: 50,
            ell: 0.5,
            policy: StorePolicy::Provisioned,
            ..ClusterConfig::default()
        }
    }

    fn run(shards: usize, seed: u64) -> (LoadReport, TierCounts) {
        let cluster = Cluster::new(small_cluster(shards)).unwrap();
        let load = OpenLoopConfig {
            rate_per_node_per_ms: 2.0,
            horizon_ms: 400.0,
            seed,
            ..OpenLoopConfig::default()
        };
        let report = drive(&cluster, &load).unwrap();
        let metrics = cluster.finish();
        (report, metrics.totals())
    }

    #[test]
    fn every_offered_request_is_accounted() {
        let (report, totals) = run(2, 11);
        assert!(report.offered > 1_000, "workload too small: {report:?}");
        assert_eq!(report.offered, totals.total() + report.shed);
    }

    #[test]
    fn single_shard_runs_are_deterministic() {
        let (report_a, totals_a) = run(1, 7);
        let (report_b, totals_b) = run(1, 7);
        assert_eq!(report_a.offered, report_b.offered);
        assert_eq!(totals_a, totals_b);
        // All three tiers are exercised by the coordinated layout.
        assert!(totals_a.local > 0 && totals_a.peer > 0 && totals_a.origin > 0);
    }

    #[test]
    fn paced_mode_respects_the_horizon() {
        let cluster = Cluster::new(small_cluster(1)).unwrap();
        let load = OpenLoopConfig {
            rate_per_node_per_ms: 0.5,
            horizon_ms: 120.0,
            paced: true,
            ..OpenLoopConfig::default()
        };
        let report = drive(&cluster, &load).unwrap();
        assert!(report.wall_ms >= 60, "paced run finished implausibly fast: {} ms", report.wall_ms);
        let _ = cluster.finish();
    }

    #[test]
    fn rejects_zero_generators() {
        let cluster = Cluster::new(small_cluster(1)).unwrap();
        let load = OpenLoopConfig { generators: 0, ..OpenLoopConfig::default() };
        assert!(drive(&cluster, &load).is_err());
        let _ = cluster.finish();
    }

    #[test]
    fn drift_spans_cover_the_horizon_and_reject_bad_points() {
        let base = OpenLoopConfig { horizon_ms: 100.0, zipf_s: 0.7, ..OpenLoopConfig::default() };
        assert_eq!(base.spans().unwrap(), vec![(0.0, 100.0, 0.7)]);
        let drifted = OpenLoopConfig {
            drift: vec![
                DriftSegment { at_ms: 40.0, zipf_s: 1.1 },
                DriftSegment { at_ms: 70.0, zipf_s: 0.9 },
            ],
            ..base.clone()
        };
        assert_eq!(
            drifted.spans().unwrap(),
            vec![(0.0, 40.0, 0.7), (40.0, 70.0, 1.1), (70.0, 100.0, 0.9)]
        );
        for bad in [
            vec![DriftSegment { at_ms: 0.0, zipf_s: 1.1 }],
            vec![DriftSegment { at_ms: 100.0, zipf_s: 1.1 }],
            vec![
                DriftSegment { at_ms: 70.0, zipf_s: 1.1 },
                DriftSegment { at_ms: 40.0, zipf_s: 0.9 },
            ],
        ] {
            let config = OpenLoopConfig { drift: bad, ..base.clone() };
            assert!(config.spans().is_err(), "accepted bad drift {:?}", config.drift);
        }
    }

    #[test]
    fn drifted_runs_stay_accounted_and_shift_the_popularity_mix() {
        // s jumps 0.4 → 1.6 halfway: the second half concentrates on
        // low ranks, so local hits (prefix + own slice) must rise.
        let cluster = Cluster::new(small_cluster(1)).unwrap();
        let load = OpenLoopConfig {
            zipf_s: 0.4,
            rate_per_node_per_ms: 2.0,
            horizon_ms: 400.0,
            drift: vec![DriftSegment { at_ms: 200.0, zipf_s: 1.6 }],
            ..OpenLoopConfig::default()
        };
        let before = cluster.tier_totals();
        let report = drive(&cluster, &load).unwrap();
        cluster.drain();
        let after = cluster.tier_totals();
        let metrics = cluster.finish();
        assert_eq!(report.offered, metrics.totals().total() + report.shed);
        let local: u64 = after.iter().zip(&before).map(|(a, b)| a.local - b.local).sum();
        let total: u64 = metrics.completed();
        assert!(total > 1_000, "workload too small");
        // A pure s=0.4 run over catalogue 2000 with capacity 50 hits
        // locally well under half the time; the drifted second half
        // pulls the blended local fraction up decisively.
        #[allow(clippy::cast_precision_loss)]
        let fraction = local as f64 / total as f64;
        assert!(fraction > 0.3, "drift never concentrated traffic: {fraction}");
    }

    #[test]
    fn rejects_zero_batch() {
        let cluster = Cluster::new(small_cluster(1)).unwrap();
        let load = OpenLoopConfig { batch: 0, ..OpenLoopConfig::default() };
        assert!(drive(&cluster, &load).is_err());
        let _ = cluster.finish();
    }

    #[test]
    fn batched_runs_account_every_offered_request() {
        let cluster = Cluster::new(small_cluster(2)).unwrap();
        let load = OpenLoopConfig {
            rate_per_node_per_ms: 2.0,
            horizon_ms: 400.0,
            batch: 64,
            ..OpenLoopConfig::default()
        };
        let report = drive(&cluster, &load).unwrap();
        let metrics = cluster.finish();
        assert!(report.offered > 1_000, "workload too small: {report:?}");
        assert_eq!(report.offered, metrics.totals().total() + report.shed);
    }

    #[test]
    fn single_lane_drive_under_auto_demotes_and_matches_mpsc() {
        use crate::affinity::ShardPlacement;
        use crate::shard::RingMode;
        use ccn_sim::ContentId;
        let base = ClusterConfig {
            nodes: 1,
            queue_capacity: 8_192,
            catalogue: 500,
            capacity: 16,
            ell: 0.0,
            policy: StorePolicy::Lru,
            placement: ShardPlacement::new(0, true),
            ..ClusterConfig::default()
        };
        let run = |ring_mode: RingMode| -> (RingMode, LoadReport, TierCounts, Vec<ContentId>) {
            let cluster = Cluster::new(ClusterConfig { ring_mode, ..base.clone() }).unwrap();
            let load = OpenLoopConfig {
                rate_per_node_per_ms: 2.0,
                horizon_ms: 60.0,
                batch: 32,
                ..OpenLoopConfig::default()
            };
            let report = drive(&cluster, &load).unwrap();
            let resolved = cluster.ring_mode();
            let contents = cluster.node_contents(0);
            (resolved, report, cluster.finish().totals(), contents)
        };
        let (mpsc_mode, mpsc_report, mpsc_totals, mpsc_contents) = run(RingMode::Mpsc);
        let (auto_mode, auto_report, auto_totals, auto_contents) = run(RingMode::Auto);
        assert_eq!(mpsc_mode, RingMode::Mpsc);
        assert_eq!(auto_mode, RingMode::Spsc, "one registered lane must demote");
        assert_eq!(auto_report.offered, mpsc_report.offered);
        assert_eq!(auto_report.shed, mpsc_report.shed, "queues sized to never shed");
        assert_eq!(auto_totals, mpsc_totals, "SPSC fast path changed tier counts");
        assert_eq!(auto_contents, mpsc_contents, "SPSC fast path changed store state");
        assert_eq!(auto_report.offered, auto_totals.total() + auto_report.shed);
    }

    mod equivalence {
        //! Satellite property: batched submission is observationally
        //! equivalent to per-op submission — same seed + same jobs ⇒
        //! identical `TierCounts`, and identical final store contents
        //! on a single-shard cluster (where submission order is the
        //! only order).
        use super::*;
        use ccn_sim::ContentId;
        use proptest::prelude::*;

        /// Runs one workload and returns (tiers, final node-0 store).
        fn observe(config: ClusterConfig, seed: u64, batch: usize) -> (TierCounts, Vec<ContentId>) {
            let cluster = Cluster::new(config).unwrap();
            let load = OpenLoopConfig {
                rate_per_node_per_ms: 2.0,
                horizon_ms: 30.0,
                seed,
                batch,
                ..OpenLoopConfig::default()
            };
            let report = drive(&cluster, &load).unwrap();
            assert_eq!(report.shed, 0, "queues sized to never shed");
            let contents = cluster.node_contents(0);
            (cluster.finish().totals(), contents)
        }

        proptest! {
            /// Single-shard LRU cluster: the strictest check — the
            /// store's final eviction state depends on request order,
            /// so equality proves batching preserved it exactly.
            #[test]
            fn batched_matches_per_op_on_a_single_shard_lru_cluster(
                seed in 0u64..24,
                batch in prop::sample::select(vec![2usize, 7, 64, 256]),
            ) {
                let config = ClusterConfig {
                    nodes: 1,
                    queue_capacity: 8_192,
                    catalogue: 500,
                    capacity: 16,
                    ell: 0.0,
                    policy: StorePolicy::Lru,
                    ..ClusterConfig::default()
                };
                let per_op = observe(config.clone(), seed, 1);
                let batched = observe(config, seed, batch);
                prop_assert_eq!(&batched.0, &per_op.0, "tier counts diverged");
                prop_assert_eq!(&batched.1, &per_op.1, "store contents diverged");
            }

            /// Provisioned multi-node cluster: tier attribution is a
            /// pure function of (requester, content), so counts must
            /// match even with concurrent peer forwarding.
            #[test]
            fn batched_matches_per_op_tier_counts_on_a_provisioned_cluster(
                seed in 0u64..24,
                batch in prop::sample::select(vec![3usize, 32, 256]),
            ) {
                let config = small_cluster(1);
                let per_op = observe(config.clone(), seed, 1);
                let batched = observe(config, seed, batch);
                prop_assert_eq!(&batched.0, &per_op.0, "tier counts diverged");
            }
        }
    }
}
