//! Open-loop Poisson/Zipf load generation against a [`Cluster`].
//!
//! Generators reuse the simulator's workload machinery
//! ([`ccn_sim::workload::zipf_irm`]): per-node Poisson arrivals with
//! Zipf-distributed content popularity, pre-drawn from a fixed seed so
//! the offered load is reproducible. The loop is *open*: a generator
//! issues each request at its scheduled arrival time (or flat-out in
//! unpaced mode) regardless of whether earlier requests completed.
//! When admission pushes back the request is counted as **shed**, not
//! retried — exactly the overload behavior a closed loop would mask.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ccn_sim::workload;

use crate::cluster::Cluster;
use crate::error::EngineError;

/// Configuration of one open-loop driving session.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Generator (client) threads; clamped to the node count.
    pub generators: usize,
    /// Zipf popularity exponent `s` of the offered traffic.
    pub zipf_s: f64,
    /// Poisson arrival rate per node, in requests per millisecond of
    /// workload time.
    pub rate_per_node_per_ms: f64,
    /// Workload horizon in milliseconds (with `paced`, also the
    /// approximate wall-clock duration).
    pub horizon_ms: f64,
    /// `true` issues each request at its Poisson arrival time;
    /// `false` replays the same request stream as fast as possible
    /// (saturation / throughput mode).
    pub paced: bool,
    /// Workload seed. With a single generator the request stream is
    /// identical to the simulator's for the same seed and parameters.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            generators: 1,
            zipf_s: 0.8,
            rate_per_node_per_ms: 0.05,
            horizon_ms: 1_000.0,
            paced: false,
            seed: 42,
        }
    }
}

/// What the generators offered and what admission did with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Requests issued by all generators.
    pub offered: u64,
    /// Requests rejected at admission (bounded queue full).
    pub shed: u64,
    /// Generator threads actually used.
    pub generators: usize,
    /// Wall-clock duration from first issue until the cluster drained,
    /// in milliseconds.
    pub wall_ms: u64,
}

/// Sleeps (coarsely) then spins (precisely) until `at_ms` of workload
/// time has elapsed since `start`.
fn pace_until(start: Instant, at_ms: f64) {
    let target = Duration::from_secs_f64(at_ms / 1e3);
    loop {
        let now = start.elapsed();
        if now >= target {
            return;
        }
        let left = target - now;
        if left > Duration::from_millis(2) {
            std::thread::sleep(left - Duration::from_millis(1));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Drives `cluster` with open-loop load and blocks until every
/// admitted request has completed.
///
/// # Errors
///
/// Returns [`EngineError::InvalidConfig`] for a zero generator count
/// and [`EngineError::Workload`] when the workload parameters are
/// rejected.
pub fn drive(cluster: &Cluster, config: &OpenLoopConfig) -> Result<LoadReport, EngineError> {
    if config.generators == 0 {
        return Err(EngineError::InvalidConfig { reason: "generators must be >= 1".into() });
    }
    let nodes = cluster.config().nodes;
    let catalogue = cluster.config().catalogue;
    let generators = config.generators.min(nodes);
    // Round-robin node ownership: generator g drives nodes g, g+G, …
    // so every node has exactly one producer.
    let mut partitions: Vec<Vec<usize>> = vec![Vec::new(); generators];
    for node in 0..nodes {
        partitions[node % generators].push(node);
    }
    // Pre-draw every stream before starting the clock: sampling is
    // not part of the measured serving path.
    let streams = partitions
        .iter()
        .enumerate()
        .map(|(g, owned)| {
            workload::zipf_irm(
                owned,
                config.zipf_s,
                catalogue,
                config.rate_per_node_per_ms,
                config.horizon_ms,
                config.seed + g as u64,
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    let offered = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for stream in &streams {
            let offered = &offered;
            let shed = &shed;
            scope.spawn(move || {
                let mut issued = 0u64;
                let mut rejected = 0u64;
                for request in stream {
                    if config.paced {
                        pace_until(start, request.time);
                    }
                    issued += 1;
                    if !cluster.try_submit(request.router, request.content) {
                        rejected += 1;
                    }
                }
                offered.fetch_add(issued, Ordering::AcqRel);
                shed.fetch_add(rejected, Ordering::AcqRel);
            });
        }
    });
    cluster.drain();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let wall_ms = (start.elapsed().as_secs_f64() * 1e3).ceil() as u64;
    Ok(LoadReport {
        offered: offered.into_inner(),
        shed: shed.into_inner(),
        generators,
        wall_ms: wall_ms.max(1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, StorePolicy};
    use ccn_sim::TierCounts;

    fn small_cluster(shards: usize) -> ClusterConfig {
        ClusterConfig {
            nodes: 3,
            shards_per_node: shards,
            // Large enough that these short workloads never shed: the
            // determinism assertions compare complete tier counts.
            queue_capacity: 8_192,
            catalogue: 2_000,
            capacity: 50,
            ell: 0.5,
            policy: StorePolicy::Provisioned,
            ..ClusterConfig::default()
        }
    }

    fn run(shards: usize, seed: u64) -> (LoadReport, TierCounts) {
        let cluster = Cluster::new(small_cluster(shards)).unwrap();
        let load = OpenLoopConfig {
            rate_per_node_per_ms: 2.0,
            horizon_ms: 400.0,
            seed,
            ..OpenLoopConfig::default()
        };
        let report = drive(&cluster, &load).unwrap();
        let metrics = cluster.finish();
        (report, metrics.totals())
    }

    #[test]
    fn every_offered_request_is_accounted() {
        let (report, totals) = run(2, 11);
        assert!(report.offered > 1_000, "workload too small: {report:?}");
        assert_eq!(report.offered, totals.total() + report.shed);
    }

    #[test]
    fn single_shard_runs_are_deterministic() {
        let (report_a, totals_a) = run(1, 7);
        let (report_b, totals_b) = run(1, 7);
        assert_eq!(report_a.offered, report_b.offered);
        assert_eq!(totals_a, totals_b);
        // All three tiers are exercised by the coordinated layout.
        assert!(totals_a.local > 0 && totals_a.peer > 0 && totals_a.origin > 0);
    }

    #[test]
    fn paced_mode_respects_the_horizon() {
        let cluster = Cluster::new(small_cluster(1)).unwrap();
        let load = OpenLoopConfig {
            rate_per_node_per_ms: 0.5,
            horizon_ms: 120.0,
            paced: true,
            ..OpenLoopConfig::default()
        };
        let report = drive(&cluster, &load).unwrap();
        assert!(report.wall_ms >= 60, "paced run finished implausibly fast: {} ms", report.wall_ms);
        let _ = cluster.finish();
    }

    #[test]
    fn rejects_zero_generators() {
        let cluster = Cluster::new(small_cluster(1)).unwrap();
        let load = OpenLoopConfig { generators: 0, ..OpenLoopConfig::default() };
        assert!(drive(&cluster, &load).is_err());
        let _ = cluster.finish();
    }
}
