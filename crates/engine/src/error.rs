//! Engine error type.

use std::error::Error;
use std::fmt;

use ccn_sim::SimError;

/// Errors produced when configuring or running the serving engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// An engine parameter was out of range or inconsistent.
    InvalidConfig {
        /// Explanation of the rejected configuration.
        reason: String,
    },
    /// The generated workload was invalid (bad Zipf exponent, rate…).
    Workload(SimError),
    /// The accounting invariant `completed + shed == offered` was
    /// violated — requests were lost inside the engine.
    Accounting {
        /// Requests issued by the load generators.
        offered: u64,
        /// Requests completed by some tier.
        completed: u64,
        /// Requests rejected at admission.
        shed: u64,
    },
    /// The OS refused to spawn a shard worker thread — the cluster
    /// cannot be brought up (surfaced at construction, never mid-run).
    Spawn {
        /// The underlying spawn failure.
        reason: String,
    },
    /// A fault plan or `--faults` spec was malformed or referenced
    /// nodes/shards outside the cluster.
    FaultSpec {
        /// Explanation of the rejected plan.
        reason: String,
    },
    /// A wire-tier socket operation failed: connect, frame I/O, or a
    /// torn-down peer mid-conversation. Carries the operation that
    /// failed so a degradation decision (retry, re-route, shed) can be
    /// made without string matching.
    Net {
        /// The operation that failed (`"connect"`, `"read-frame"`, …).
        op: String,
        /// The underlying I/O or protocol detail.
        detail: String,
        /// `true` when the failure was a socket timeout
        /// (`io::ErrorKind::WouldBlock` / `TimedOut`). Classified from
        /// the error *kind*, never from platform-dependent error text
        /// ("Resource temporarily unavailable" on Linux), so idle and
        /// deadline decisions stay portable.
        timeout: bool,
    },
    /// A wire frame violated the protocol: unknown kind, truncated
    /// payload, oversized length prefix, or a reply that does not
    /// answer the request that was sent.
    Protocol {
        /// Explanation of the malformed or unexpected frame.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig { reason } => {
                write!(f, "invalid engine configuration: {reason}")
            }
            EngineError::Workload(e) => write!(f, "workload error: {e}"),
            EngineError::Accounting { offered, completed, shed } => write!(
                f,
                "request accounting violated: offered {offered} != completed {completed} + shed {shed}"
            ),
            EngineError::Spawn { reason } => write!(f, "failed to spawn shard worker: {reason}"),
            EngineError::FaultSpec { reason } => write!(f, "invalid fault plan: {reason}"),
            EngineError::Net { op, detail, .. } => write!(f, "wire {op} failed: {detail}"),
            EngineError::Protocol { reason } => write!(f, "wire protocol violation: {reason}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for EngineError {
    fn from(e: SimError) -> Self {
        EngineError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let e = EngineError::InvalidConfig { reason: "nodes must be >= 1".into() };
        assert!(e.to_string().contains("nodes must be >= 1"));
        let e: EngineError = SimError::InvalidConfig { reason: "bad rate".into() }.into();
        assert!(e.to_string().contains("bad rate"));
        let e = EngineError::Accounting { offered: 10, completed: 8, shed: 1 };
        assert!(e.to_string().contains("offered 10"));
        let e = EngineError::Spawn { reason: "resource exhausted".into() };
        assert!(e.to_string().contains("resource exhausted"));
        let e = EngineError::FaultSpec { reason: "node 9 out of range".into() };
        assert!(e.to_string().contains("node 9 out of range"));
        let e = EngineError::Net { op: "connect".into(), detail: "refused".into(), timeout: false };
        assert!(e.to_string().contains("wire connect failed: refused"));
        let e = EngineError::Protocol { reason: "unknown frame kind 0x7f".into() };
        assert!(e.to_string().contains("unknown frame kind"));
    }
}
