//! Test-only counting allocator proving the wire hot path is
//! allocation-free once a connection is warm.
//!
//! Counts are kept per thread, so a test measures exactly the
//! allocations its own thread performed — concurrent node threads
//! (which own their own scratch) never pollute the measurement.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

std::thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with`: the allocator runs during TLS teardown too, when
    // the counter cell may already be destroyed.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

/// Heap allocations performed by the calling thread so far.
pub(crate) fn allocations() -> u64 {
    ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
