//! Rendezvous-backed routing for the coordinated content range.
//!
//! The paper's provisioning assigns each router one contiguous slice
//! of the coordinated range (`ccn_coord::contiguous_slices` /
//! `centrality_ordered_slices`). A [`RoutingTable`] turns those
//! assignments into the lookup the serving path needs: *which live
//! node holds this content?* While every node is up the answer is the
//! assigned primary — the table agrees exactly with the coordination
//! plane. When a node fails, only *its* share re-homes: orphaned
//! contents fall back to highest-random-weight (rendezvous) hashing
//! over the survivors, so no other node's share moves and a recovering
//! node gets its exact old share back.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use ccn_coord::RouterAssignment;
use ccn_sim::ContentId;

use crate::error::EngineError;
use crate::shard::mix;

/// Maps coordinated content ids onto live nodes.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    range: Range<u64>,
    /// Non-empty assigned slices, sorted by start, tiling `range`.
    slices: Vec<(Range<u64>, usize)>,
    live: Vec<bool>,
}

impl RoutingTable {
    /// A table with no coordinated range (non-coordinated mode):
    /// every lookup answers `None`, so misses go straight to origin.
    #[must_use]
    pub fn empty(nodes: usize) -> Self {
        Self { range: 0..0, slices: Vec::new(), live: vec![true; nodes] }
    }

    /// Builds the table from the coordination plane's slice
    /// assignments for a cluster of `nodes` nodes (all initially
    /// live).
    ///
    /// # Errors
    ///
    /// Rejects assignments referencing nodes outside the cluster,
    /// assigning one node twice, or whose non-empty slices do not tile
    /// a contiguous range.
    pub fn from_assignments(
        assignments: &[RouterAssignment],
        nodes: usize,
    ) -> Result<Self, EngineError> {
        let mut seen = vec![false; nodes];
        for a in assignments {
            if a.router >= nodes {
                return Err(EngineError::InvalidConfig {
                    reason: format!("assignment references node {} of {nodes}", a.router),
                });
            }
            if seen[a.router] {
                return Err(EngineError::InvalidConfig {
                    reason: format!("node {} assigned twice", a.router),
                });
            }
            seen[a.router] = true;
        }
        let mut slices: Vec<(Range<u64>, usize)> = assignments
            .iter()
            .filter(|a| !a.slice.is_empty())
            .map(|a| (a.slice.clone(), a.router))
            .collect();
        slices.sort_by_key(|(s, _)| s.start);
        for pair in slices.windows(2) {
            if pair[0].0.end != pair[1].0.start {
                return Err(EngineError::InvalidConfig {
                    reason: format!(
                        "slices {:?} and {:?} do not tile a contiguous range",
                        pair[0].0, pair[1].0
                    ),
                });
            }
        }
        let range = match (slices.first(), slices.last()) {
            (Some((first, _)), Some((last, _))) => first.start..last.end,
            _ => 0..0,
        };
        Ok(Self { range, slices, live: vec![true; nodes] })
    }

    /// Number of nodes the table routes over.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.live.len()
    }

    /// The coordinated rank range `[c−x+1, c−x+1+n·x)` (empty in
    /// non-coordinated mode).
    #[must_use]
    pub fn coordinated_range(&self) -> Range<u64> {
        self.range.clone()
    }

    /// Whether `content` falls in the coordinated range.
    #[must_use]
    pub fn is_coordinated(&self, content: ContentId) -> bool {
        self.range.contains(&content.rank())
    }

    /// Marks a node up or down.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_live(&mut self, node: usize, up: bool) {
        self.live[node] = up;
    }

    /// Whether `node` is currently live.
    #[must_use]
    pub fn is_live(&self, node: usize) -> bool {
        self.live[node]
    }

    /// Number of live nodes.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// The assigned primary for `content`, live or not.
    #[must_use]
    pub fn primary(&self, content: ContentId) -> Option<usize> {
        let rank = content.rank();
        if !self.range.contains(&rank) {
            return None;
        }
        let at = self.slices.partition_point(|(s, _)| s.end <= rank);
        self.slices.get(at).filter(|(s, _)| s.contains(&rank)).map(|&(_, node)| node)
    }

    /// The live node responsible for `content`: the assigned primary
    /// while it is up, otherwise the rendezvous (highest-random-weight)
    /// choice among the survivors. `None` for uncoordinated content or
    /// when no node is live.
    #[must_use]
    pub fn holder(&self, content: ContentId) -> Option<usize> {
        self.holder_where(content, |node| self.live[node])
    }

    /// [`Self::holder`] under an externally supplied liveness view
    /// (shared with [`LiveRouting`], which tracks liveness in atomics
    /// so the hot path never takes a lock).
    fn holder_where(&self, content: ContentId, is_live: impl Fn(usize) -> bool) -> Option<usize> {
        let primary = self.primary(content)?;
        if is_live(primary) {
            return Some(primary);
        }
        let rank = content.rank();
        (0..self.live.len())
            .filter(|&node| is_live(node))
            .max_by_key(|&node| mix(rank ^ mix(node as u64 + 1)))
    }
}

/// An epoch-stamped liveness-and-layout view over a [`RoutingTable`].
///
/// Two things change at runtime, on very different cadences:
///
/// - **Liveness** flips on every plan-driven kill/revive or
///   health-detector verdict. It lives in atomics so shard workers and
///   submitters can route without locks, and every effective flip
///   bumps a monotone *liveness epoch*.
/// - **Layout** changes only when the adaptive controller installs a
///   re-slice ([`Self::install_table`]). The table sits behind an
///   `RwLock<Arc<...>>`: the hot path takes an uncontended read lock
///   and clones the `Arc` (the same per-request cost the wire tier
///   already pays for its engine slot), and installs are stamped with
///   a separate monotone *config epoch*.
///
/// In-flight operations routed under either epoch N are never recalled
/// when N+1 lands mid-batch: they complete (possibly degraded to
/// origin) or shed under the accounting invariant, and only operations
/// admitted after the flip see the new view.
#[derive(Debug)]
pub struct LiveRouting {
    table: RwLock<Arc<RoutingTable>>,
    live: Vec<AtomicBool>,
    /// Bumped on every effective liveness change; starts at 1.
    epoch: AtomicU64,
    /// Bumped on every installed layout; starts at 1.
    config_epoch: AtomicU64,
}

impl LiveRouting {
    /// Wraps a table; initial liveness is copied from it.
    #[must_use]
    pub fn new(table: RoutingTable) -> Self {
        let live = table.live.iter().map(|&up| AtomicBool::new(up)).collect();
        Self {
            table: RwLock::new(Arc::new(table)),
            live,
            epoch: AtomicU64::new(1),
            config_epoch: AtomicU64::new(1),
        }
    }

    /// A snapshot of the current slice assignment. The snapshot is
    /// immutable; a concurrent [`Self::install_table`] does not affect
    /// lookups already made through it.
    #[must_use]
    pub fn table(&self) -> Arc<RoutingTable> {
        Arc::clone(&self.table.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replaces the slice assignment, preserving the
    /// liveness flags (a node that is down stays down across a
    /// re-slice). Returns the new config epoch.
    ///
    /// # Errors
    ///
    /// Rejects tables routing over a different node count — the
    /// cluster's membership is fixed; only the slicing moves.
    pub fn install_table(&self, table: RoutingTable) -> Result<u64, EngineError> {
        if table.nodes() != self.live.len() {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "installed table routes {} nodes, cluster has {}",
                    table.nodes(),
                    self.live.len()
                ),
            });
        }
        let mut slot = self.table.write().unwrap_or_else(PoisonError::into_inner);
        *slot = Arc::new(table);
        drop(slot);
        Ok(self.config_epoch.fetch_add(1, Ordering::AcqRel) + 1)
    }

    /// The current liveness epoch (1 at construction).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current layout (config) epoch (1 at construction).
    #[must_use]
    pub fn config_epoch(&self) -> u64 {
        self.config_epoch.load(Ordering::Acquire)
    }

    /// Whether `node` is currently live.
    #[must_use]
    pub fn is_live(&self, node: usize) -> bool {
        self.live[node].load(Ordering::Acquire)
    }

    /// Number of live nodes.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|l| l.load(Ordering::Acquire)).count()
    }

    /// Marks a node up or down; bumps and returns the new epoch only
    /// when the flag actually changed (idempotent re-marks are free).
    pub fn set_live(&self, node: usize, up: bool) -> Option<u64> {
        if self.live[node].swap(up, Ordering::AcqRel) == up {
            return None;
        }
        Some(self.epoch.fetch_add(1, Ordering::AcqRel) + 1)
    }

    /// The assigned primary for `content`, live or not.
    #[must_use]
    pub fn primary(&self, content: ContentId) -> Option<usize> {
        self.table().primary(content)
    }

    /// The live holder for `content` under the current epoch's view
    /// (see [`RoutingTable::holder`]).
    #[must_use]
    pub fn holder(&self, content: ContentId) -> Option<usize> {
        self.table().holder_where(content, |node| self.live[node].load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccn_coord::contiguous_slices;
    use proptest::prelude::*;

    fn table(prefix: u64, x: u64, nodes: usize) -> RoutingTable {
        RoutingTable::from_assignments(&contiguous_slices(prefix, prefix + 1, x, nodes), nodes)
            .expect("contiguous assignments are valid")
    }

    #[test]
    fn empty_table_routes_nothing() {
        let t = RoutingTable::empty(5);
        assert_eq!(t.live_count(), 5);
        assert_eq!(t.holder(ContentId(1)), None);
        assert!(t.coordinated_range().is_empty());
    }

    #[test]
    fn rejects_overlapping_and_foreign_assignments() {
        let mut a = contiguous_slices(10, 11, 5, 3);
        a[2].slice = 14..19; // overlaps slice 1
        assert!(RoutingTable::from_assignments(&a, 3).is_err());
        let a = contiguous_slices(10, 11, 5, 3);
        assert!(RoutingTable::from_assignments(&a, 2).is_err());
    }

    #[test]
    fn recovery_restores_the_exact_old_share() {
        let mut t = table(50, 8, 6);
        let before: Vec<_> =
            t.coordinated_range().map(|r| t.holder(ContentId(r)).unwrap()).collect();
        t.set_live(3, false);
        t.set_live(3, true);
        let after: Vec<_> =
            t.coordinated_range().map(|r| t.holder(ContentId(r)).unwrap()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn live_routing_epochs_bump_only_on_effective_change() {
        let lr = LiveRouting::new(table(10, 4, 4));
        assert_eq!(lr.epoch(), 1);
        assert_eq!(lr.live_count(), 4);
        assert_eq!(lr.set_live(2, true), None, "already live: no epoch bump");
        assert_eq!(lr.epoch(), 1);
        assert_eq!(lr.set_live(2, false), Some(2));
        assert!(!lr.is_live(2));
        assert_eq!(lr.set_live(2, false), None, "already down: no epoch bump");
        assert_eq!(lr.set_live(2, true), Some(3));
        assert_eq!(lr.epoch(), 3);
        assert_eq!(lr.live_count(), 4);
    }

    #[test]
    fn install_table_reslices_while_preserving_liveness() {
        let lr = LiveRouting::new(table(10, 4, 4));
        assert_eq!(lr.config_epoch(), 1);
        lr.set_live(2, false);
        let epoch = lr.install_table(table(20, 6, 4)).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(lr.config_epoch(), 2);
        assert!(!lr.is_live(2), "liveness survives the re-slice");
        assert_eq!(lr.table().coordinated_range(), 21..21 + 24);
        // The dead node's share of the *new* layout re-homes to
        // survivors, same as under a static table.
        for rank in lr.table().coordinated_range() {
            let holder = lr.holder(ContentId(rank)).unwrap();
            assert!(lr.is_live(holder), "rank {rank} routed to dead node");
        }
        // Membership is fixed: a table over a different node count is
        // rejected and the epoch does not move.
        assert!(lr.install_table(table(20, 6, 5)).is_err());
        assert_eq!(lr.config_epoch(), 2);
        // Liveness epochs stay independent of config epochs.
        assert_eq!(lr.epoch(), 2, "one liveness flip so far");
    }

    #[test]
    fn live_routing_agrees_with_the_locked_table() {
        let mut locked = table(30, 6, 5);
        let lr = LiveRouting::new(table(30, 6, 5));
        for rank in lr.table().coordinated_range() {
            assert_eq!(lr.holder(ContentId(rank)), locked.holder(ContentId(rank)));
            assert_eq!(lr.primary(ContentId(rank)), locked.primary(ContentId(rank)));
        }
        locked.set_live(1, false);
        lr.set_live(1, false);
        locked.set_live(4, false);
        lr.set_live(4, false);
        for rank in lr.table().coordinated_range() {
            assert_eq!(
                lr.holder(ContentId(rank)),
                locked.holder(ContentId(rank)),
                "rank {rank} diverged with nodes 1 and 4 down"
            );
        }
    }

    proptest! {
        /// Killing one node through the live view re-homes only that
        /// node's share, exactly as on the locked table.
        #[test]
        fn live_single_failure_moves_only_the_failed_share(
            nodes in 2usize..12,
            x in 1u64..40,
            prefix in 0u64..200,
            victim in 0usize..12,
        ) {
            let lr = LiveRouting::new(table(prefix, x, nodes));
            let victim = victim % nodes;
            let before: Vec<usize> = lr
                .table()
                .coordinated_range()
                .map(|r| lr.holder(ContentId(r)).unwrap())
                .collect();
            prop_assert!(lr.set_live(victim, false).is_some());
            for (rank, old) in lr.table().coordinated_range().zip(&before) {
                let now = lr.holder(ContentId(rank)).unwrap();
                if *old == victim {
                    prop_assert!(now != victim && lr.is_live(now));
                } else {
                    prop_assert_eq!(now, *old, "rank {} reshuffled {} -> {}", rank, old, now);
                }
            }
            // Revival restores the pre-kill mapping bit-exactly.
            prop_assert!(lr.set_live(victim, true).is_some());
            let restored: Vec<usize> = lr
                .table()
                .coordinated_range()
                .map(|r| lr.holder(ContentId(r)).unwrap())
                .collect();
            prop_assert_eq!(restored, before);
        }
    }

    proptest! {
        /// Every coordinated content id resolves to exactly one node,
        /// and that node is live — even with part of the cluster down.
        #[test]
        fn every_coordinated_id_maps_to_one_live_node(
            nodes in 2usize..12,
            x in 1u64..40,
            prefix in 0u64..200,
            down in 0usize..12,
        ) {
            let mut t = table(prefix, x, nodes);
            // Kill up to all-but-one node, deterministically spread.
            let kill = down.min(nodes - 1);
            for k in 0..kill {
                t.set_live((k * 7 + 1) % nodes, false);
            }
            let killed = nodes - t.live_count();
            prop_assert!(killed <= kill);
            for rank in t.coordinated_range() {
                let holder = t.holder(ContentId(rank));
                prop_assert!(holder.is_some(), "rank {rank} unroutable");
                let holder = holder.unwrap();
                prop_assert!(holder < nodes);
                prop_assert!(t.is_live(holder), "rank {rank} routed to dead node {holder}");
            }
            // Outside the range nothing is coordinated.
            prop_assert_eq!(t.holder(ContentId(prefix)), None);
            prop_assert_eq!(t.holder(ContentId(t.coordinated_range().end)), None);
        }

        /// Killing one node re-homes only that node's share: every
        /// content whose primary survives keeps its holder.
        #[test]
        fn single_failure_moves_only_the_failed_share(
            nodes in 2usize..12,
            x in 1u64..40,
            prefix in 0u64..200,
            victim in 0usize..12,
        ) {
            let mut t = table(prefix, x, nodes);
            let victim = victim % nodes;
            let before: Vec<usize> = t
                .coordinated_range()
                .map(|r| t.holder(ContentId(r)).unwrap())
                .collect();
            t.set_live(victim, false);
            for (rank, old) in t.coordinated_range().zip(&before) {
                let now = t.holder(ContentId(rank)).unwrap();
                if *old == victim {
                    prop_assert!(now != victim && t.is_live(now));
                } else {
                    prop_assert_eq!(now, *old, "rank {} reshuffled {} -> {}", rank, old, now);
                }
            }
        }

        /// With every node live the table *is* the coordination
        /// plane's slice assignment.
        #[test]
        fn agrees_with_coord_assignment_when_all_live(
            nodes in 1usize..16,
            x in 1u64..40,
            prefix in 0u64..200,
        ) {
            let assignments = contiguous_slices(prefix, prefix + 1, x, nodes);
            let t = RoutingTable::from_assignments(&assignments, nodes).unwrap();
            prop_assert_eq!(
                t.coordinated_range(),
                prefix + 1..prefix + 1 + x * nodes as u64
            );
            for a in &assignments {
                for rank in a.slice.clone() {
                    prop_assert_eq!(t.holder(ContentId(rank)), Some(a.router));
                    prop_assert_eq!(t.primary(ContentId(rank)), Some(a.router));
                }
            }
        }
    }
}
