//! Cache-line padding for hot shared atomics.
//!
//! Hot counters that different cores write independently — per-shard
//! queue depths, ring head/tail indices, per-node tier tallies — are
//! small (8 bytes) and the allocator happily packs several of them
//! into one 64-byte cache line. Every write then invalidates the line
//! for *every* core touching *any* of the co-resident counters: false
//! sharing. [`CachePadded`] forces each wrapped value onto its own
//! line so independent shards stop ping-ponging lines they never
//! logically share.
//!
//! The alignment is 128 bytes on aarch64 (modern ARM cores prefetch
//! line pairs, so destructive interference spans two 64-byte lines)
//! and 64 bytes elsewhere — the same policy crossbeam ships.

/// Pads and aligns `T` to the destructive-interference boundary so
/// two `CachePadded` values never share a cache line.
#[cfg_attr(target_arch = "aarch64", repr(align(128)))]
#[cfg_attr(not(target_arch = "aarch64"), repr(align(64)))]
#[derive(Default, Debug)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_never_share_a_line() {
        let line = std::mem::align_of::<CachePadded<AtomicU64>>();
        assert!(line >= 64, "alignment below a cache line: {line}");
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>() % line, 0);
        // Adjacent array elements land on distinct lines.
        let pair = [CachePadded::new(AtomicU64::new(0)), CachePadded::new(AtomicU64::new(0))];
        let a = &*pair[0] as *const AtomicU64 as usize;
        let b = &*pair[1] as *const AtomicU64 as usize;
        assert!(b - a >= line, "elements {a:#x}/{b:#x} share a line");
    }

    #[test]
    fn deref_and_conversions_round_trip() {
        let mut padded = CachePadded::new(AtomicU64::new(7));
        assert_eq!(padded.load(Ordering::Relaxed), 7);
        *padded.get_mut() = 9;
        assert_eq!(padded.into_inner().into_inner(), 9);
        let from: CachePadded<u32> = 5u32.into();
        assert_eq!(*from, 5);
    }
}
