//! Thread-per-core placement: dependency-free CPU affinity plus the
//! [`ShardPlacement`] policy that maps shard workers and their
//! load-generator lanes onto cores.
//!
//! The engine's scaling story (DESIGN.md §9) is thread-per-core in
//! the seastar/scylla mould: each core owns one shard-set and the
//! generator lane that feeds it, so a request's queue hop crosses a
//! core boundary at most once and the scheduler cannot migrate a hot
//! worker mid-run. Rust's standard library exposes no affinity API
//! and the workspace vendors no libc, so on Linux the pinning call is
//! the raw `sched_setaffinity(2)` syscall via inline assembly
//! (x86_64 and aarch64); everywhere else pinning degrades to an
//! honest no-op reported as [`PinOutcome::Unsupported`] — placement
//! arithmetic still works, threads just float.
//!
//! Affinity masks use the kernel's cpumask layout: a bit array of
//! `unsigned long` words, bit `n` = CPU `n`. 1024 bits (16 × u64)
//! covers every machine this engine will meet; the kernel copies at
//! most its own mask size.

// Affinity needs raw syscalls (inline asm). Every unsafe block is a
// single syscall instruction with register-only operands reading a
// stack-local mask; nothing aliases, nothing escapes.
#![allow(unsafe_code)]

/// Bits in the affinity mask we pass to the kernel (16 × u64).
const MASK_WORDS: usize = 16;
const MASK_BITS: usize = MASK_WORDS * 64;

/// Result of a pin attempt — callers count rather than fail, so a
/// heterogeneous fleet (or a non-Linux dev box) degrades gracefully.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinOutcome {
    /// The calling thread now runs only on the requested core.
    Pinned,
    /// This platform has no affinity syscall; the thread floats.
    Unsupported,
    /// The kernel rejected the mask (negated errno, e.g. `-EINVAL`
    /// for a core outside the machine or the cgroup's cpuset).
    Failed(i32),
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod sys {
    use super::{MASK_BITS, MASK_WORDS};

    #[cfg(target_arch = "x86_64")]
    const SYS_SET: usize = 203;
    #[cfg(target_arch = "x86_64")]
    const SYS_GET: usize = 204;
    #[cfg(target_arch = "aarch64")]
    const SYS_SET: usize = 122;
    #[cfg(target_arch = "aarch64")]
    const SYS_GET: usize = 123;

    /// `syscall(nr, pid, cpusetsize, mask)` — the shared shape of
    /// both affinity syscalls. `pid == 0` targets the calling
    /// *thread* (the kernel's `sched_setaffinity` resolves pid 0 to
    /// `current`). Returns the raw kernel result: `-errno` on
    /// failure, 0 (set) or bytes-copied (get) on success.
    fn affinity_syscall(nr: usize, mask: *mut u64) -> isize {
        let len = MASK_WORDS * std::mem::size_of::<u64>();
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: a single `syscall` instruction. Arguments follow
        // the x86_64 Linux ABI (rdi, rsi, rdx); rcx/r11 are
        // clobbered by the instruction itself. `mask` points at a
        // live `[u64; MASK_WORDS]` owned by the caller, and `len` is
        // its exact size, so the kernel never reads or writes out of
        // bounds.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") 0usize, // pid 0 = calling thread
                in("rsi") len,
                in("rdx") mask,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: same argument as above for the aarch64 ABI
        // (x8 = nr; x0–x2 = args; `svc 0` clobbers nothing else).
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") 0usize => ret,
                in("x1") len,
                in("x2") mask,
                options(nostack),
            );
        }
        ret
    }

    pub(super) fn set_mask(mask: &mut [u64; MASK_WORDS]) -> isize {
        affinity_syscall(SYS_SET, mask.as_mut_ptr())
    }

    pub(super) fn get_mask(mask: &mut [u64; MASK_WORDS]) -> isize {
        affinity_syscall(SYS_GET, mask.as_mut_ptr())
    }

    pub(super) fn pin(core: usize) -> super::PinOutcome {
        if core >= MASK_BITS {
            return super::PinOutcome::Failed(-22); // EINVAL
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] = 1u64 << (core % 64);
        let ret = set_mask(&mut mask);
        if ret == 0 {
            super::PinOutcome::Pinned
        } else {
            super::PinOutcome::Failed(ret as i32)
        }
    }

    pub(super) fn allowed(out: &mut [u64; MASK_WORDS]) -> Option<usize> {
        let ret = get_mask(out);
        if ret <= 0 {
            return None;
        }
        // The kernel reports how many bytes of mask it copied; the
        // rest of `out` stayed zero, so a plain popcount is exact.
        Some(out.iter().map(|w| w.count_ones() as usize).sum())
    }
}

#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
mod sys {
    use super::MASK_WORDS;

    pub(super) fn pin(_core: usize) -> super::PinOutcome {
        super::PinOutcome::Unsupported
    }

    pub(super) fn allowed(_out: &mut [u64; MASK_WORDS]) -> Option<usize> {
        None
    }
}

/// Pins the calling thread to `core`. Threads spawned *after* a pin
/// inherit the restricted mask on Linux, so workers pin themselves
/// (first thing in the worker loop) rather than being pinned by their
/// spawner.
pub fn pin_current_thread(core: usize) -> PinOutcome {
    sys::pin(core)
}

/// How many cores the calling thread may run on: the scheduling
/// affinity mask's population count where the syscall exists (this
/// respects cgroup cpusets, unlike `/proc/cpuinfo`), falling back to
/// [`std::thread::available_parallelism`]. At least 1.
#[must_use]
pub fn available_cores() -> usize {
    let mut mask = [0u64; MASK_WORDS];
    sys::allowed(&mut mask)
        .or_else(|| std::thread::available_parallelism().ok().map(std::num::NonZeroUsize::get))
        .unwrap_or(1)
        .max(1)
}

/// Thread-per-core placement policy: a core budget plus whether to
/// actually pin. The mapping is static — worker `w` (in
/// `node * shards_per_node + shard` order) lands on core
/// `w % cores`, and generator lane `g` lands on the core of the
/// first shard of the first node it owns — so with `nodes` workers
/// and `nodes` generators on `nodes` cores, each core runs exactly
/// one shard worker and the lane that feeds it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardPlacement {
    cores: usize,
    pin: bool,
}

impl ShardPlacement {
    /// Placement with an explicit core budget. `cores == 0` means
    /// "all cores this thread may run on" ([`available_cores`]);
    /// `pin` controls whether threads call [`pin_current_thread`].
    #[must_use]
    pub fn new(cores: usize, pin: bool) -> Self {
        let cores = if cores == 0 { available_cores() } else { cores };
        Self { cores, pin }
    }

    /// The default: full core budget, no pinning (threads float, as
    /// they did before placement existed).
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(0, false)
    }

    /// Core budget of this placement (≥ 1).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Whether threads should pin themselves.
    #[must_use]
    pub fn pin(&self) -> bool {
        self.pin
    }

    /// Core for shard worker (`node`, `shard`): round-robin over the
    /// budget in worker-index order.
    #[must_use]
    pub fn worker_core(&self, node: usize, shards_per_node: usize, shard: usize) -> usize {
        (node * shards_per_node + shard) % self.cores
    }

    /// Core for load-generator lane `g`: the same core as the first
    /// shard of node `g` — the first node the round-robin ownership
    /// in `load::drive` assigns to that lane — so a lane and the
    /// shard-set it feeds most share a core.
    #[must_use]
    pub fn generator_core(&self, generator: usize, shards_per_node: usize) -> usize {
        (generator * shards_per_node) % self.cores
    }

    /// Pins the calling thread to `core` if pinning is enabled.
    /// Returns whether the thread is now pinned.
    pub fn pin_to(&self, core: usize) -> bool {
        self.pin && pin_current_thread(core) == PinOutcome::Pinned
    }
}

impl Default for ShardPlacement {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_is_at_least_one() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn placement_maps_workers_and_lanes_round_robin() {
        let p = ShardPlacement::new(4, true);
        assert_eq!(p.cores(), 4);
        assert!(p.pin());
        // 4 nodes × 2 shards on 4 cores: workers wrap.
        assert_eq!(p.worker_core(0, 2, 0), 0);
        assert_eq!(p.worker_core(0, 2, 1), 1);
        assert_eq!(p.worker_core(1, 2, 0), 2);
        assert_eq!(p.worker_core(2, 2, 0), 0);
        // Lane g sits with node g's first shard.
        assert_eq!(p.generator_core(0, 2), 0);
        assert_eq!(p.generator_core(1, 2), 2);
        assert_eq!(p.generator_core(2, 2), 0);
    }

    #[test]
    fn zero_core_budget_means_all_available() {
        let p = ShardPlacement::new(0, false);
        assert_eq!(p.cores(), available_cores());
        assert!(!p.pin());
        assert_eq!(p, ShardPlacement::disabled());
        assert_eq!(ShardPlacement::default(), ShardPlacement::disabled());
    }

    #[test]
    fn disabled_placement_never_pins() {
        assert!(!ShardPlacement::disabled().pin_to(0));
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[test]
    fn pin_and_restore_round_trips_through_the_kernel() {
        // Snapshot this thread's mask, pin to one allowed core,
        // confirm the kernel reports a single-core mask, restore.
        let mut original = [0u64; MASK_WORDS];
        let before = sys::allowed(&mut original).expect("sched_getaffinity failed");
        assert!(before >= 1);
        let first_allowed = original
            .iter()
            .enumerate()
            .find(|(_, w)| **w != 0)
            .map(|(i, w)| i * 64 + w.trailing_zeros() as usize)
            .expect("non-empty mask has a set bit");
        assert_eq!(pin_current_thread(first_allowed), PinOutcome::Pinned);
        let mut pinned = [0u64; MASK_WORDS];
        assert_eq!(sys::allowed(&mut pinned), Some(1), "pinned mask must be one core");
        assert_eq!(sys::set_mask(&mut original), 0, "restoring the original mask failed");
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[test]
    fn pinning_to_an_impossible_core_fails_loudly() {
        match pin_current_thread(MASK_BITS + 5) {
            PinOutcome::Failed(errno) => assert!(errno < 0),
            other => panic!("expected Failed, got {other:?}"),
        }
    }
}
