//! The in-process serving cluster: sharded nodes, tier escalation,
//! admission control, and per-tier accounting.
//!
//! A [`Cluster`] instantiates the paper's provisioning as a *live*
//! system: each node's content store is split across single-writer
//! shards (see [`crate::shard`]), and a request escalates exactly
//! along the model's latency tiers —
//!
//! - **d0 / local**: hit in the requesting node's own store;
//! - **d1 / peer**: miss forwarded to the coordinated holder chosen by
//!   the [`RoutingTable`], hit there;
//! - **d2 / origin**: everything else — uncoordinated misses, holder
//!   misses, and requests *degraded* to origin because a peer queue
//!   was full.
//!
//! Admission is bounded: [`Cluster::try_submit`] fails (the request is
//! *shed*) when the target shard queue is full, so overload produces
//! backpressure instead of queue collapse, and every offered request
//! is accounted: `completed + shed == offered`.
//!
//! # Failure semantics
//!
//! A cluster built with [`Cluster::with_faults`] replays a
//! deterministic [`FaultPlan`] against itself while serving: whole
//! nodes and single shard workers are killed and revived at scheduled
//! admission-operation counts, nodes are slowed or stalled, and the
//! engine *degrades instead of wedging*. Peer forwards carry a
//! deadline and a bounded retry budget ([`DegradeConfig`]) before
//! falling back to origin; a consecutive-timeout health detector and
//! the plan both feed the epoch-bumped
//! [`crate::routing::LiveRouting`] view, so rendezvous failover
//! re-homes exactly the failed share mid-run and hands it back on
//! revival. Killed nodes/workers run in **dead mode**: their threads
//! stay up and complete every already-admitted job at origin
//! (counted as `fault_served`), so the conservation invariant
//! `completed + shed == offered` holds bit-exactly through any fault
//! schedule.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ccn_coord::{contiguous_slices, RouterAssignment};
use ccn_obs::Histogram;
use ccn_sim::store::{ContentStore, LruStore, StaticStore};
use ccn_sim::{ContentId, ServedBy, TierCounts};

use crate::affinity::ShardPlacement;
use crate::control::RankTap;
use crate::error::EngineError;
use crate::fault::{
    AppliedFault, DegradeConfig, FaultController, FaultKind, FaultPlan, FaultState,
};
use crate::pad::CachePadded;
use crate::routing::{LiveRouting, RoutingTable};
use crate::shard::{
    lock_recover, shard_of, IdleStrategy, RingMode, ShardHandle, ShardSpec, ShardedStore,
};

/// Upper bucket edges for the engine's latency histograms: the
/// in-process tiers complete in microseconds, so the grid extends
/// [`ccn_obs::metrics::LATENCY_MS_BOUNDS`] downward with sub-0.25 ms
/// resolution while keeping the same multi-second overflow tail.
pub const ENGINE_LATENCY_MS_BOUNDS: [f64; 20] = [
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
    512.0, 1000.0, 2000.0, 4000.0,
];

/// How each node's store is populated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorePolicy {
    /// The model's static hybrid layout: popularity prefix `1..=c−x`
    /// plus this node's coordinated slice, pinned up front
    /// ([`StaticStore::hybrid`] split across shards).
    Provisioned,
    /// Dynamic LRU stores, empty at start. Uncoordinated content is
    /// cached at the requesting edge; coordinated content is cached
    /// only at its holder, so the coordinated range is *attracted*
    /// into place by traffic instead of pinned.
    Lru,
}

/// Reusable grouping of a batch's misses by destination holder — the
/// miss-coalescing hand-off between a probe sweep and the peer tier.
/// The in-process [`BatchSubmitter`] coalesces per *shard ring*; the
/// wire tier groups per *holder node* with this scratch so a burst of
/// misses to one peer becomes one `PeerForwardBatch` frame instead of
/// N single forwards. Holds item *indices* into the caller's batch,
/// so the caller can map verdicts back to input order.
///
/// `reset` keeps the per-holder vectors, so a warm serve loop groups
/// without allocating.
#[derive(Debug, Default)]
pub(crate) struct HolderGroups {
    items: Vec<Vec<usize>>,
    occupied: Vec<usize>,
}

impl HolderGroups {
    /// Clears the grouping for a cluster of `holders` nodes.
    pub(crate) fn reset(&mut self, holders: usize) {
        for group in &mut self.items {
            group.clear();
        }
        self.items.resize_with(holders, Vec::new);
        self.occupied.clear();
    }

    /// Adds batch item `index` to `holder`'s group.
    pub(crate) fn push(&mut self, holder: usize, index: usize) {
        if self.items[holder].is_empty() {
            self.occupied.push(holder);
        }
        self.items[holder].push(index);
    }

    /// Holders with at least one grouped item, in first-seen order.
    pub(crate) fn occupied(&self) -> &[usize] {
        &self.occupied
    }

    /// The batch indices grouped under `holder`.
    pub(crate) fn items(&self, holder: usize) -> &[usize] {
        &self.items[holder]
    }
}

/// Static configuration of a serving cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of cache nodes.
    pub nodes: usize,
    /// Single-writer shards (worker threads) per node.
    pub shards_per_node: usize,
    /// Bounded queue capacity per shard — the admission limit.
    pub queue_capacity: usize,
    /// Catalogue size `c_total` (content ranks are `1..=catalogue`).
    pub catalogue: u64,
    /// Per-node store capacity `c`.
    pub capacity: u64,
    /// Coordination level `ℓ = x/c` (0 = non-coordinated).
    pub ell: f64,
    /// Store population policy.
    pub policy: StorePolicy,
    /// How shard workers wait when their queues run dry.
    pub idle: IdleStrategy,
    /// Degradation-ladder knobs (forward deadline, retry budget,
    /// health detector). The defaults are far outside the clean-path
    /// envelope, so a fault-free run behaves identically to one
    /// without the ladder.
    pub degrade: DegradeConfig,
    /// Thread-per-core placement: how shard workers (and, in
    /// [`crate::load::drive`], generator lanes) map onto cores, and
    /// whether they actually pin. Disabled by default — threads float
    /// exactly as they did before placement existed.
    pub placement: ShardPlacement,
    /// Shard-queue producer discipline. [`RingMode::Mpsc`] (the
    /// default) is always sound. [`RingMode::Auto`] demotes each
    /// shard ring to the SPSC fast path when exactly one producer
    /// registers before traffic; it requires `nodes == 1`, because
    /// peer forwards make every other node's workers producers too —
    /// with `nodes > 1` the build resolves it back to MPSC.
    /// [`RingMode::Spsc`] asserts single-producer up front and is
    /// rejected outright when `nodes > 1`.
    pub ring_mode: RingMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 4,
            shards_per_node: 1,
            queue_capacity: 1_024,
            catalogue: 10_000,
            capacity: 100,
            ell: 0.5,
            policy: StorePolicy::Provisioned,
            idle: IdleStrategy::default(),
            degrade: DegradeConfig::default(),
            placement: ShardPlacement::disabled(),
            ring_mode: RingMode::default(),
        }
    }
}

impl ClusterConfig {
    /// Coordinated slots per node, `x = round(ℓ·c)` — the same
    /// rounding [`ccn_sim::scenario::steady_state`] applies, so engine
    /// and simulator provision identical layouts.
    #[must_use]
    pub fn x(&self) -> u64 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (self.ell * self.capacity as f64).round() as u64
        }
    }

    /// Local popularity prefix `c − x`.
    #[must_use]
    pub fn local_prefix(&self) -> u64 {
        self.capacity - self.x()
    }

    /// The coordinated rank range `[c−x+1, c−x+1+n·x)`.
    #[must_use]
    pub fn coordinated_range(&self) -> Range<u64> {
        let start = self.local_prefix() + 1;
        start..start + self.x() * self.nodes as u64
    }

    fn validate(&self) -> Result<(), EngineError> {
        let reject = |reason: String| Err(EngineError::InvalidConfig { reason });
        if self.nodes == 0 {
            return reject("nodes must be >= 1".into());
        }
        if self.shards_per_node == 0 {
            return reject("shards_per_node must be >= 1".into());
        }
        if self.queue_capacity == 0 {
            return reject("queue_capacity must be >= 1".into());
        }
        if self.capacity == 0 || self.capacity > self.catalogue {
            return reject(format!("capacity {} must be in 1..={}", self.capacity, self.catalogue));
        }
        if !(0.0..=1.0).contains(&self.ell) {
            return reject(format!("ell {} must be in [0, 1]", self.ell));
        }
        if self.ring_mode == RingMode::Spsc && self.nodes > 1 {
            return reject(format!(
                "ring_mode=spsc requires nodes == 1 (peer forwards from {} nodes \
                 would be extra producers)",
                self.nodes
            ));
        }
        self.degrade.validate()
    }

    /// The ring mode the cluster actually builds with: a multi-node
    /// cluster can never be single-producer (every peer's workers
    /// forward into this node's queues), so `Auto` resolves to MPSC
    /// unless `nodes == 1`.
    #[must_use]
    pub fn effective_ring_mode(&self) -> RingMode {
        match self.ring_mode {
            RingMode::Auto if self.nodes > 1 => RingMode::Mpsc,
            mode => mode,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Stage {
    /// First lookup, at the requesting node.
    Local,
    /// Forwarded lookup, at the coordinated holder.
    Peer,
}

/// One in-flight request.
pub(crate) struct Job {
    content: ContentId,
    client: u32,
    issued: Instant,
    stage: Stage,
}

struct NodeRecorder {
    tiers: [AtomicU64; 3],
    degraded: AtomicU64,
    /// Forward re-enqueue attempts after a peer-queue bounce.
    retried: AtomicU64,
    /// Forwards routed to a rendezvous survivor instead of the
    /// assigned primary.
    failed_over: AtomicU64,
    /// Forwards answered by origin because the forward deadline
    /// passed before the holder served them.
    deadline_expired: AtomicU64,
    /// Jobs this node completed at origin while it (or the owning
    /// shard worker) was dead — admitted work is never lost.
    fault_served: AtomicU64,
    /// Requests shed at admission because this node was killed.
    shed_node_down: AtomicU64,
    latency: [Mutex<Histogram>; 3],
}

impl NodeRecorder {
    fn new() -> Self {
        let hist = || Mutex::new(Histogram::with_bounds(&ENGINE_LATENCY_MS_BOUNDS));
        Self {
            tiers: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            degraded: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            failed_over: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            fault_served: AtomicU64::new(0),
            shed_node_down: AtomicU64::new(0),
            latency: [hist(), hist(), hist()],
        }
    }
}

struct Shared {
    routing: LiveRouting,
    policy: StorePolicy,
    degrade: DegradeConfig,
    shards_per_node: usize,
    /// Set once after every node's shards are spawned; jobs only flow
    /// after that, so `get()` never observes the unset state.
    peers: OnceLock<Vec<ShardHandle<Job>>>,
    /// Padded per node: node `i`'s tallies are written by whichever
    /// workers complete its jobs, and must not false-share with node
    /// `i±1`'s equally hot tallies.
    recorders: Vec<CachePadded<NodeRecorder>>,
    in_flight: CachePadded<AtomicU64>,
    /// Global admission-operation counter — the fault plan's clock.
    /// Its own line: every admission writes it, every worker reads it.
    ops: CachePadded<AtomicU64>,
    /// Epoch instant for stall horizons.
    anchor: Instant,
    faults: FaultState,
    controller: FaultController,
    /// Whether the plan contains latency injections (slow/stall);
    /// lets the fault-free hot path skip the per-job injection check.
    injects_latency: bool,
    /// Optional adaptive-controller rank tap. Unset taps cost one
    /// relaxed pointer check per admission; set taps add two relaxed
    /// stores per sampled request. Installed at most once, before
    /// traffic, by [`Cluster::install_tap`].
    tap: OnceLock<Arc<RankTap>>,
}

impl Shared {
    fn complete(&self, job: &Job, tier: ServedBy) {
        let elapsed_ms = job.issued.elapsed().as_secs_f64() * 1e3;
        let recorder = &self.recorders[job.client as usize];
        recorder.tiers[tier.index()].fetch_add(1, Ordering::Relaxed);
        lock_recover(&recorder.latency[tier.index()]).observe(elapsed_ms);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Advances the fault clock past `op`: applies due plan events and
    /// runs the health detector's probation pass. Called on every
    /// admission; both branches are a single relaxed load when
    /// nothing is pending.
    fn tick(&self, op: u64) {
        if self.controller.due(op) {
            self.controller.apply_due(op, &self.faults, &self.routing, self.anchor);
        }
        self.faults.probation(op, &self.degrade, &self.routing);
    }

    /// Spin-waits the bounded retry backoff (attempt `k` waits
    /// `k × retry_backoff`); runs on a shard worker, so it must never
    /// sleep unboundedly.
    fn backoff(&self, attempt: u32) {
        let budget = self.degrade.retry_backoff.saturating_mul(attempt);
        let start = Instant::now();
        while start.elapsed() < budget {
            std::hint::spin_loop();
        }
    }
}

/// The shard worker's request handler for node `node`: serve locally,
/// forward to the coordinated holder (with bounded retry and
/// failover), or degrade to origin — admitted jobs always complete.
fn process(shared: &Shared, node: usize, store: &mut dyn ContentStore, job: Job) {
    let content = job.content;
    if shared.injects_latency {
        shared.faults.inject_latency(node, shared.anchor);
    }
    // Dead mode: a killed node (or killed shard worker) keeps
    // draining its queue but answers everything from origin, so
    // admitted work survives the fault and accounting stays exact.
    if shared.faults.serving_down(node, shard_of(content, shared.shards_per_node)) {
        shared.recorders[node].fault_served.fetch_add(1, Ordering::Relaxed);
        if matches!(job.stage, Stage::Peer) && !shared.faults.node_killed(node) {
            // A worker-dead holder failing forwards feeds the health
            // detector; a plan-killed node is already routing-dead.
            shared.faults.note_holder_outcome(
                node,
                false,
                &shared.degrade,
                shared.ops.load(Ordering::Relaxed),
                &shared.routing,
            );
        }
        shared.complete(&job, ServedBy::Origin);
        return;
    }
    match job.stage {
        Stage::Local => {
            if store.contains(content) {
                store.on_hit(content);
                shared.complete(&job, ServedBy::Local);
                return;
            }
            let client = job.client as usize;
            match shared.routing.holder(content) {
                Some(holder) if holder != client => {
                    let Some(peers) = shared.peers.get() else {
                        // Unreachable by construction (peers are wired
                        // before traffic); degrade rather than panic.
                        shared.recorders[client].degraded.fetch_add(1, Ordering::Relaxed);
                        shared.complete(&job, ServedBy::Origin);
                        return;
                    };
                    if shared.routing.primary(content) != Some(holder) {
                        shared.recorders[client].failed_over.fetch_add(1, Ordering::Relaxed);
                    }
                    // Bounded retry with linear backoff, then degrade
                    // to origin: the ladder's peer → retry → origin
                    // rungs. Never blocks the shard indefinitely.
                    let mut forwarded = Job { stage: Stage::Peer, ..job };
                    let mut attempt = 0u32;
                    loop {
                        match peers[holder].try_job(content, forwarded) {
                            Ok(()) => return,
                            Err(bounced) => {
                                if attempt >= shared.degrade.forward_retries {
                                    shared.faults.note_holder_outcome(
                                        holder,
                                        false,
                                        &shared.degrade,
                                        shared.ops.load(Ordering::Relaxed),
                                        &shared.routing,
                                    );
                                    shared.recorders[client]
                                        .degraded
                                        .fetch_add(1, Ordering::Relaxed);
                                    shared.complete(&bounced, ServedBy::Origin);
                                    return;
                                }
                                attempt += 1;
                                shared.recorders[client].retried.fetch_add(1, Ordering::Relaxed);
                                shared.backoff(attempt);
                                forwarded = bounced;
                            }
                        }
                    }
                }
                _ => {
                    // Uncoordinated content (or this node *is* the
                    // holder and still missed): origin serves it; a
                    // dynamic store caches it at the edge.
                    if shared.policy == StorePolicy::Lru {
                        store.on_data(content);
                    }
                    shared.complete(&job, ServedBy::Origin);
                }
            }
        }
        Stage::Peer => {
            // Deadline rung of the ladder: a forward that sat in
            // queues past its budget is answered by origin at the
            // holder, and the miss feeds the health detector.
            if job.issued.elapsed() > shared.degrade.forward_deadline {
                shared.recorders[job.client as usize]
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                shared.faults.note_holder_outcome(
                    node,
                    false,
                    &shared.degrade,
                    shared.ops.load(Ordering::Relaxed),
                    &shared.routing,
                );
                shared.complete(&job, ServedBy::Origin);
                return;
            }
            shared.faults.note_holder_outcome(
                node,
                true,
                &shared.degrade,
                shared.ops.load(Ordering::Relaxed),
                &shared.routing,
            );
            if store.contains(content) {
                store.on_hit(content);
                shared.complete(&job, ServedBy::Peer);
            } else {
                // Holder miss → origin; a dynamic holder attracts its
                // slice by caching what it was asked for.
                if shared.policy == StorePolicy::Lru {
                    store.on_data(content);
                }
                shared.complete(&job, ServedBy::Origin);
            }
        }
    }
}

/// Builds the provisioned (pinned) store for one shard of a node that
/// holds popularity prefix `1..=prefix` plus coordinated `slice`:
/// exactly the hybrid layout, filtered to the shard's ownership.
fn provisioned_store(prefix: u64, slice: Range<u64>, shards: usize, shard: usize) -> StaticStore {
    let pinned = (1..=prefix).chain(slice).map(ContentId).filter(|&c| shard_of(c, shards) == shard);
    StaticStore::new(pinned)
}

/// Builds node `node`'s store for shard `shard`.
fn make_store(config: &ClusterConfig, node: usize, shard: usize) -> Box<dyn ContentStore> {
    let shards = config.shards_per_node;
    match config.policy {
        StorePolicy::Provisioned => {
            let x = config.x();
            let prefix = config.local_prefix();
            let slice_start = prefix + 1 + node as u64 * x;
            Box::new(provisioned_store(prefix, slice_start..slice_start + x, shards, shard))
        }
        StorePolicy::Lru => {
            let base = config.capacity / shards as u64;
            let extra = u64::from((shard as u64) < config.capacity % shards as u64);
            #[allow(clippy::cast_possible_truncation)]
            let capacity = ((base + extra).max(1)) as usize;
            Box::new(LruStore::new(capacity))
        }
    }
}

/// Aggregated results of a cluster run, produced by
/// [`Cluster::finish`].
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Per-node completions split by serving tier.
    pub per_node: Vec<TierCounts>,
    /// Cluster-wide service latency per tier, indexed by
    /// [`ServedBy::index`].
    pub tier_latency: Vec<Histogram>,
    /// Requests completed as origin because a peer queue was full.
    pub degraded_to_origin: u64,
    /// High-water mark of any single shard queue.
    pub max_queue_depth: usize,
    /// Forward re-enqueue attempts after peer-queue bounces.
    pub retried: u64,
    /// Forwards routed to a rendezvous survivor instead of the
    /// assigned primary.
    pub failed_over: u64,
    /// Forwards answered by origin because the deadline passed first.
    pub deadline_expired: u64,
    /// Jobs completed at origin by a dead node or dead shard worker.
    pub fault_served: u64,
    /// Requests shed at admission because their node was killed.
    pub shed_node_down: u64,
    /// Final config epoch (1 = the layout never changed; each
    /// [`Cluster::apply_layout`] bumps it).
    pub config_epoch: u64,
    /// Nodes the health detector marked down during the run.
    pub health_marked_down: u64,
    /// Health-marked-down nodes revived by probation.
    pub health_revived: u64,
    /// Final routing epoch (1 = liveness never changed).
    pub routing_epoch: u64,
    /// Every fault the controller applied, in application order.
    pub fault_log: Vec<AppliedFault>,
    /// Shard workers that successfully pinned to their placement core.
    pub pinned_workers: usize,
    /// The producer discipline the shard rings resolved to.
    pub ring_mode: RingMode,
}

impl EngineMetrics {
    /// Cluster-wide completions per tier.
    #[must_use]
    pub fn totals(&self) -> TierCounts {
        let mut t = TierCounts::default();
        for n in &self.per_node {
            t.local += n.local;
            t.peer += n.peer;
            t.origin += n.origin;
        }
        t
    }

    /// Total completed requests.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.totals().total()
    }

    /// Fraction of completions served by `tier` (NaN-free: 0 when
    /// nothing completed).
    #[must_use]
    pub fn fraction(&self, tier: ServedBy) -> f64 {
        let totals = self.totals();
        let total = totals.total();
        if total == 0 {
            return 0.0;
        }
        let count = match tier {
            ServedBy::Local => totals.local,
            ServedBy::Peer => totals.peer,
            ServedBy::Origin => totals.origin,
        };
        #[allow(clippy::cast_precision_loss)]
        {
            count as f64 / total as f64
        }
    }
}

/// A running in-process serving cluster.
pub struct Cluster {
    shared: Arc<Shared>,
    stores: Vec<ShardedStore<Job>>,
    config: ClusterConfig,
}

impl Cluster {
    /// Provisions and starts a fault-free cluster: builds the routing
    /// table from the coordination plane's slice assignments,
    /// populates every shard's store, and spawns
    /// `nodes × shards_per_node` workers.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for out-of-range
    /// parameters and [`EngineError::Spawn`] when the OS refuses a
    /// worker thread.
    pub fn new(config: ClusterConfig) -> Result<Self, EngineError> {
        Self::with_faults(config, FaultPlan::none())
    }

    /// [`Cluster::new`] plus a deterministic [`FaultPlan`] replayed
    /// against the cluster as it serves (see the module docs'
    /// *Failure semantics*).
    ///
    /// # Errors
    ///
    /// Additionally returns [`EngineError::FaultSpec`] when the plan
    /// references nodes or shards outside this cluster.
    pub fn with_faults(config: ClusterConfig, plan: FaultPlan) -> Result<Self, EngineError> {
        config.validate()?;
        plan.validate(config.nodes, config.shards_per_node)?;
        let x = config.x();
        let table = if x == 0 {
            RoutingTable::empty(config.nodes)
        } else {
            let prefix = config.local_prefix();
            RoutingTable::from_assignments(
                &contiguous_slices(prefix, prefix + 1, x, config.nodes),
                config.nodes,
            )?
        };
        let injects_latency = plan
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::SlowNode { .. } | FaultKind::Stall { .. }));
        let shared = Arc::new(Shared {
            routing: LiveRouting::new(table),
            policy: config.policy,
            degrade: config.degrade,
            shards_per_node: config.shards_per_node,
            peers: OnceLock::new(),
            recorders: (0..config.nodes).map(|_| CachePadded::new(NodeRecorder::new())).collect(),
            in_flight: CachePadded::new(AtomicU64::new(0)),
            ops: CachePadded::new(AtomicU64::new(0)),
            anchor: Instant::now(),
            faults: FaultState::new(config.nodes, config.shards_per_node),
            controller: FaultController::new(plan),
            injects_latency,
            tap: OnceLock::new(),
        });
        let ring_mode = config.effective_ring_mode();
        let stores: Vec<ShardedStore<Job>> = (0..config.nodes)
            .map(|node| {
                let worker_shared = Arc::clone(&shared);
                let handler = Arc::new(move |store: &mut dyn ContentStore, job: Job| {
                    process(&worker_shared, node, store, job);
                });
                let pin_cores: Vec<Option<usize>> = if config.placement.pin() {
                    (0..config.shards_per_node)
                        .map(|shard| {
                            Some(config.placement.worker_core(node, config.shards_per_node, shard))
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                let spec = ShardSpec::new(config.shards_per_node, config.queue_capacity)
                    .idle(config.idle)
                    .ring_mode(ring_mode)
                    .pin_cores(pin_cores);
                ShardedStore::try_spawn_with(
                    spec,
                    |shard| make_store(&config, node, shard),
                    handler,
                )
            })
            .collect::<Result<_, _>>()?;
        let handles = stores.iter().map(ShardedStore::handle).collect();
        if shared.peers.set(handles).is_err() {
            // Unreachable with a freshly built `Shared`, but a typed
            // error beats a panic on the bring-up path.
            return Err(EngineError::InvalidConfig {
                reason: "peer handles were wired twice during cluster bring-up".into(),
            });
        }
        Ok(Self { shared, stores, config })
    }

    /// The configuration this cluster was built from.
    #[must_use]
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Registers the calling thread as a job producer on every node's
    /// shard queues. Under [`RingMode::Auto`] each submitter thread
    /// must call this before its first [`Cluster::try_submit`] /
    /// [`Cluster::batch_submitter`] traffic, so the seal census can
    /// decide MPSC vs SPSC honestly; under the default MPSC mode it is
    /// optional (and free).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] when a queue already
    /// sealed single-producer and cannot admit another producer.
    pub fn register_producer(&self) -> Result<(), EngineError> {
        for store in &self.stores {
            store.handle().register_producer()?;
        }
        Ok(())
    }

    /// Seals the producer census on every node (idempotent): under
    /// [`RingMode::Auto`] this is the moment each shard ring commits
    /// to MPSC or demotes to SPSC. Submitting also seals implicitly;
    /// calling it explicitly just makes the boundary visible.
    pub fn seal_producers(&self) {
        for store in &self.stores {
            store.handle().seal_producers();
        }
    }

    /// The ring mode node 0's queues actually run in (resolved, not
    /// requested — under `Auto` this is unknown until the seal).
    #[must_use]
    pub fn ring_mode(&self) -> RingMode {
        // `validate()` guarantees at least one node; fall back to the
        // configured discipline rather than indexing blind.
        self.stores
            .first()
            .map_or_else(|| self.config.effective_ring_mode(), |s| s.handle().ring_mode())
    }

    /// How many shard workers successfully pinned themselves to their
    /// placement core (0 when pinning is disabled or unsupported).
    /// This is a live snapshot — a just-spawned worker may not have
    /// reached its pin attempt yet; [`EngineMetrics::pinned_workers`]
    /// (taken after the workers are joined) is the final count.
    #[must_use]
    pub fn pinned_workers(&self) -> usize {
        self.stores.iter().map(|s| s.handle().pinned_workers()).sum()
    }

    /// Admits a request from `node`'s clients for `content`.
    ///
    /// Returns `false` — the request is **shed** — when the target
    /// shard's bounded queue is full or `node` is currently killed by
    /// the fault plan. Accepted requests always complete and are
    /// counted by exactly one tier.
    ///
    /// Every call advances the global operation counter, the clock
    /// fault-plan events are scheduled against.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn try_submit(&self, node: usize, content: ContentId) -> bool {
        let Some(peers) = self.shared.peers.get() else {
            return false; // unreachable by construction: shed, not panic
        };
        let op = self.shared.ops.fetch_add(1, Ordering::AcqRel) + 1;
        self.shared.tick(op);
        if let Some(tap) = self.shared.tap.get() {
            tap.record(node, content);
        }
        if self.shared.faults.node_killed(node) {
            self.shared.recorders[node].shed_node_down.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        #[allow(clippy::cast_possible_truncation)]
        let job = Job { content, client: node as u32, issued: Instant::now(), stage: Stage::Local };
        match peers[node].try_job(content, job) {
            Ok(()) => true,
            Err(_) => {
                self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                false
            }
        }
    }

    /// A reusable batch-submission cursor for this cluster: requests
    /// grouped by owning shard move through one queue claim per run
    /// instead of one per request. Each producer thread should hold
    /// its own submitter (the scratch buffer inside is not shared).
    #[must_use]
    pub fn batch_submitter(&self) -> BatchSubmitter<'_> {
        BatchSubmitter { cluster: self, scratch: Vec::new() }
    }

    /// Blocks until every admitted request has completed.
    pub fn drain(&self) {
        while self.shared.in_flight.load(Ordering::Acquire) > 0 {
            for _ in 0..64 {
                std::hint::spin_loop();
            }
            std::thread::yield_now();
        }
    }

    /// Eviction-order contents of one node's store (all shards,
    /// sorted by rank) — a test/inspection hook.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn node_contents(&self, node: usize) -> Vec<ContentId> {
        self.stores[node].handle().contents()
    }

    /// Per-node tier counts so far — a live snapshot (call
    /// [`Cluster::drain`] first for a quiescent one). Lets phase-split
    /// analyses (pre-fault vs post-revival) difference two snapshots
    /// without stopping the cluster.
    #[must_use]
    pub fn tier_totals(&self) -> Vec<TierCounts> {
        self.shared
            .recorders
            .iter()
            .map(|r| TierCounts {
                local: r.tiers[0].load(Ordering::Acquire),
                peer: r.tiers[1].load(Ordering::Acquire),
                origin: r.tiers[2].load(Ordering::Acquire),
            })
            .collect()
    }

    /// The current routing epoch (1 = liveness never changed; each
    /// effective kill/revive/health verdict bumps it).
    #[must_use]
    pub fn routing_epoch(&self) -> u64 {
        self.shared.routing.epoch()
    }

    /// The current config epoch (1 = the provisioned layout never
    /// changed; each [`Cluster::apply_layout`] bumps it).
    #[must_use]
    pub fn config_epoch(&self) -> u64 {
        self.shared.routing.config_epoch()
    }

    /// Installs an adaptive-controller rank tap on the admission
    /// path. Must be called before traffic (requests offered earlier
    /// are simply unsampled) and at most once.
    ///
    /// # Errors
    ///
    /// Rejects a second tap, and a tap whose lane count does not
    /// match the cluster's nodes.
    pub fn install_tap(&self, tap: Arc<RankTap>) -> Result<(), EngineError> {
        if tap.lanes() != self.config.nodes {
            return Err(EngineError::InvalidConfig {
                reason: format!(
                    "rank tap has {} lanes, cluster has {} nodes",
                    tap.lanes(),
                    self.config.nodes
                ),
            });
        }
        self.shared.tap.set(tap).map_err(|_| EngineError::InvalidConfig {
            reason: "a rank tap is already installed on this cluster".into(),
        })
    }

    /// Installs a new slice layout as one config epoch: swaps the
    /// routing table, then (under [`StorePolicy::Provisioned`])
    /// re-pins every shard's store to the new prefix + slice through
    /// the shard workers' store-replacement control message — warm
    /// content outside the delta survives untouched in queue order.
    ///
    /// The routing swap and the per-shard re-pins are not atomic as a
    /// group: a request routed between them may consult the new table
    /// against a shard still holding the old slice. That window only
    /// escalates the request one tier (holder miss → origin) — it
    /// never loses a job, so `offered == completed + shed` holds
    /// bit-exactly across every transition. LRU clusters skip the
    /// re-pin entirely: their stores attract the new slice
    /// organically.
    ///
    /// Returns the new config epoch.
    ///
    /// # Errors
    ///
    /// Rejects layouts that do not form a valid routing table for
    /// this cluster's node count.
    pub fn apply_layout(&self, assignments: &[RouterAssignment]) -> Result<u64, EngineError> {
        let table = if assignments.iter().all(|a| a.slice_len() == 0) {
            RoutingTable::empty(self.config.nodes)
        } else {
            RoutingTable::from_assignments(assignments, self.config.nodes)?
        };
        let epoch = self.shared.routing.install_table(table)?;
        if self.config.policy == StorePolicy::Provisioned {
            for a in assignments {
                let handle = self.stores[a.router].handle();
                for shard in 0..self.config.shards_per_node {
                    handle.replace_store(
                        shard,
                        Box::new(provisioned_store(
                            a.local_prefix,
                            a.slice.clone(),
                            self.config.shards_per_node,
                            shard,
                        )),
                    );
                }
            }
        }
        Ok(epoch)
    }

    /// Drains outstanding work, stops every shard worker, and returns
    /// the aggregated metrics.
    #[must_use]
    pub fn finish(mut self) -> EngineMetrics {
        self.drain();
        let max_queue_depth =
            self.stores.iter().map(|s| s.handle().max_queue_depth()).max().unwrap_or(0);
        let ring_mode = self.ring_mode();
        for store in &mut self.stores {
            store.shutdown();
        }
        // After the joins above every worker has run its pin attempt,
        // so this count is final (a live read could catch a worker
        // that hasn't reached its pin call yet).
        let pinned_workers = self.pinned_workers();
        let mut per_node = Vec::with_capacity(self.config.nodes);
        let mut tier_latency: Vec<Histogram> =
            (0..3).map(|_| Histogram::with_bounds(&ENGINE_LATENCY_MS_BOUNDS)).collect();
        let mut degraded = 0;
        let mut retried = 0;
        let mut failed_over = 0;
        let mut deadline_expired = 0;
        let mut fault_served = 0;
        let mut shed_node_down = 0;
        for recorder in &self.shared.recorders {
            per_node.push(TierCounts {
                local: recorder.tiers[0].load(Ordering::Acquire),
                peer: recorder.tiers[1].load(Ordering::Acquire),
                origin: recorder.tiers[2].load(Ordering::Acquire),
            });
            degraded += recorder.degraded.load(Ordering::Acquire);
            retried += recorder.retried.load(Ordering::Acquire);
            failed_over += recorder.failed_over.load(Ordering::Acquire);
            deadline_expired += recorder.deadline_expired.load(Ordering::Acquire);
            fault_served += recorder.fault_served.load(Ordering::Acquire);
            shed_node_down += recorder.shed_node_down.load(Ordering::Acquire);
            for tier in ServedBy::ALL {
                let hist = lock_recover(&recorder.latency[tier.index()]);
                tier_latency[tier.index()].merge(&hist);
            }
        }
        EngineMetrics {
            per_node,
            tier_latency,
            degraded_to_origin: degraded,
            max_queue_depth,
            retried,
            failed_over,
            deadline_expired,
            fault_served,
            shed_node_down,
            config_epoch: self.shared.routing.config_epoch(),
            health_marked_down: self.shared.faults.health_marked_down(),
            health_revived: self.shared.faults.health_revived(),
            routing_epoch: self.shared.routing.epoch(),
            fault_log: self.shared.controller.log(),
            pinned_workers,
            ring_mode,
        }
    }
}

/// Amortized request admission: wraps a [`Cluster`] with a reusable
/// job scratch buffer so a *run* of requests for one `(node, shard)`
/// pair is admitted with a single queue operation, a single
/// `Instant::now()` timestamp, and a single in-flight/depth update.
///
/// Produced by [`Cluster::batch_submitter`]; one per producer thread.
pub struct BatchSubmitter<'a> {
    cluster: &'a Cluster,
    scratch: Vec<Job>,
}

impl BatchSubmitter<'_> {
    /// The cluster this submitter admits into.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Admits a run of requests from `node`'s clients, all owned by
    /// `shard` (the caller groups by [`shard_of`] over
    /// `shards_per_node` before calling). Drains `contents` entirely;
    /// returns how many were admitted. The remainder (queue full) is
    /// **shed** — dropped here, to be counted by the caller.
    ///
    /// Latency note: the whole run shares one issue timestamp, so
    /// per-tier latency resolution coarsens to the run length under
    /// batched load.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `shard` is out of range.
    pub fn submit_run(
        &mut self,
        node: usize,
        shard: usize,
        contents: &mut Vec<ContentId>,
    ) -> usize {
        let offered = contents.len() as u64;
        if offered == 0 {
            return 0;
        }
        let shared = &self.cluster.shared;
        let Some(peers) = shared.peers.get() else {
            contents.clear();
            return 0; // unreachable by construction: shed, not panic
        };
        // One counter advance and one fault-clock tick per run: a
        // fault whose trigger lands inside the run is applied at the
        // run boundary, so kill/revive quantize to run granularity
        // (epoch-N jobs already admitted complete under dead mode).
        let op = shared.ops.fetch_add(offered, Ordering::AcqRel) + offered;
        shared.tick(op);
        if let Some(tap) = shared.tap.get() {
            tap.record_run(node, contents);
        }
        if shared.faults.node_killed(node) {
            shared.recorders[node].shed_node_down.fetch_add(offered, Ordering::Relaxed);
            contents.clear();
            return 0;
        }
        shared.in_flight.fetch_add(offered, Ordering::AcqRel);
        let issued = Instant::now();
        #[allow(clippy::cast_possible_truncation)]
        let client = node as u32;
        self.scratch.clear();
        self.scratch.extend(contents.drain(..).map(|content| Job {
            content,
            client,
            issued,
            stage: Stage::Local,
        }));
        let accepted = peers[node].try_submit_batch(shard, &mut self.scratch);
        let rejected = self.scratch.len() as u64;
        if rejected > 0 {
            shared.in_flight.fetch_sub(rejected, Ordering::AcqRel);
            self.scratch.clear();
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_to_completion(cluster: &Cluster, node: usize, content: ContentId) {
        while !cluster.try_submit(node, content) {
            std::thread::yield_now();
        }
    }

    #[test]
    fn provisioned_cluster_serves_all_three_tiers() {
        let config = ClusterConfig {
            nodes: 3,
            catalogue: 1_000,
            capacity: 10,
            ell: 0.5,
            ..ClusterConfig::default()
        };
        // x = 5, prefix = 5, coordinated range = [6, 21).
        assert_eq!(config.coordinated_range(), 6..21);
        let cluster = Cluster::new(config).unwrap();
        drive_to_completion(&cluster, 0, ContentId(1)); // prefix → local
        drive_to_completion(&cluster, 0, ContentId(6)); // own slice → local
        drive_to_completion(&cluster, 0, ContentId(12)); // node 1's slice → peer
        drive_to_completion(&cluster, 0, ContentId(500)); // unprovisioned → origin
        let metrics = cluster.finish();
        let totals = metrics.totals();
        assert_eq!(
            (totals.local, totals.peer, totals.origin),
            (2, 1, 1),
            "tier misattribution: {totals:?}"
        );
        assert_eq!(metrics.completed(), 4);
        assert_eq!(metrics.degraded_to_origin, 0);
        assert_eq!(metrics.tier_latency[0].count(), 2);
    }

    #[test]
    fn provisioned_stores_pin_the_hybrid_layout() {
        let config = ClusterConfig {
            nodes: 2,
            shards_per_node: 3,
            catalogue: 100,
            capacity: 8,
            ell: 0.25,
            ..ClusterConfig::default()
        };
        // x = 2, prefix = 6: node 0 pins {1..=6, 7, 8}, node 1 pins
        // {1..=6, 9, 10}.
        let cluster = Cluster::new(config).unwrap();
        let expect0: Vec<ContentId> = (1..=8).map(ContentId).collect();
        let expect1: Vec<ContentId> = (1..=6).chain(9..=10).map(ContentId).collect();
        assert_eq!(cluster.node_contents(0), expect0);
        assert_eq!(cluster.node_contents(1), expect1);
        let _ = cluster.finish();
    }

    #[test]
    fn batch_submitter_preserves_tier_attribution_and_accounting() {
        let config = ClusterConfig {
            nodes: 3,
            catalogue: 1_000,
            capacity: 10,
            ell: 0.5,
            ..ClusterConfig::default()
        };
        let cluster = Cluster::new(config).unwrap();
        let mut submitter = cluster.batch_submitter();
        // Same four requests as the per-op tier test, one queue claim.
        let mut run: Vec<ContentId> = [1, 6, 12, 500].into_iter().map(ContentId).collect();
        let accepted = submitter.submit_run(0, 0, &mut run);
        assert_eq!(accepted, 4);
        assert!(run.is_empty(), "submit_run drains its input");
        let metrics = cluster.finish();
        let totals = metrics.totals();
        assert_eq!((totals.local, totals.peer, totals.origin), (2, 1, 1), "{totals:?}");
    }

    #[test]
    fn lru_edge_caching_turns_repeat_origin_hits_local() {
        let config = ClusterConfig {
            nodes: 1,
            catalogue: 1_000,
            capacity: 4,
            ell: 0.0,
            policy: StorePolicy::Lru,
            ..ClusterConfig::default()
        };
        let cluster = Cluster::new(config).unwrap();
        drive_to_completion(&cluster, 0, ContentId(7)); // cold → origin, cached
        cluster.drain();
        drive_to_completion(&cluster, 0, ContentId(7)); // warm → local
        let metrics = cluster.finish();
        let totals = metrics.totals();
        assert_eq!((totals.local, totals.origin), (1, 1));
    }

    #[test]
    fn rejects_invalid_configs() {
        for bad in [
            ClusterConfig { nodes: 0, ..ClusterConfig::default() },
            ClusterConfig { shards_per_node: 0, ..ClusterConfig::default() },
            ClusterConfig { queue_capacity: 0, ..ClusterConfig::default() },
            ClusterConfig { capacity: 0, ..ClusterConfig::default() },
            ClusterConfig { ell: 1.5, ..ClusterConfig::default() },
            ClusterConfig { capacity: 200, catalogue: 100, ..ClusterConfig::default() },
            ClusterConfig {
                degrade: DegradeConfig { probation_ops: 0, ..DegradeConfig::default() },
                ..ClusterConfig::default()
            },
        ] {
            assert!(Cluster::new(bad).is_err());
        }
    }

    #[test]
    fn spsc_ring_mode_requires_a_single_node() {
        let bad = ClusterConfig { nodes: 2, ring_mode: RingMode::Spsc, ..ClusterConfig::default() };
        assert!(matches!(Cluster::new(bad), Err(EngineError::InvalidConfig { .. })));
        let ok = ClusterConfig {
            nodes: 1,
            ell: 0.0,
            ring_mode: RingMode::Spsc,
            ..ClusterConfig::default()
        };
        assert!(Cluster::new(ok).is_ok());
    }

    #[test]
    fn auto_ring_mode_resolves_mpsc_for_multi_node_clusters() {
        let config =
            ClusterConfig { nodes: 3, ring_mode: RingMode::Auto, ..ClusterConfig::default() };
        assert_eq!(config.effective_ring_mode(), RingMode::Mpsc);
        let single =
            ClusterConfig { nodes: 1, ring_mode: RingMode::Auto, ..ClusterConfig::default() };
        assert_eq!(single.effective_ring_mode(), RingMode::Auto);
    }

    #[test]
    fn auto_single_node_demotes_to_spsc_and_serves_identically() {
        let base = ClusterConfig {
            nodes: 1,
            catalogue: 1_000,
            capacity: 4,
            ell: 0.0,
            policy: StorePolicy::Lru,
            ..ClusterConfig::default()
        };
        let run = |ring_mode: RingMode| {
            let cluster = Cluster::new(ClusterConfig { ring_mode, ..base.clone() }).unwrap();
            cluster.register_producer().unwrap();
            cluster.seal_producers();
            let resolved = cluster.ring_mode();
            for rank in [7u64, 9, 7, 11, 9, 7] {
                drive_to_completion(&cluster, 0, ContentId(rank));
                cluster.drain();
            }
            let contents = cluster.node_contents(0);
            let metrics = cluster.finish();
            (resolved, metrics.totals(), contents)
        };
        let (mpsc_mode, mpsc_totals, mpsc_contents) = run(RingMode::Mpsc);
        let (auto_mode, auto_totals, auto_contents) = run(RingMode::Auto);
        assert_eq!(mpsc_mode, RingMode::Mpsc);
        assert_eq!(auto_mode, RingMode::Spsc, "sole registrant must demote");
        assert_eq!(auto_totals, mpsc_totals, "SPSC fast path changed tier counts");
        assert_eq!(auto_contents, mpsc_contents, "SPSC fast path changed store state");
    }

    #[test]
    fn placement_pins_workers_when_enabled() {
        let config = ClusterConfig {
            nodes: 2,
            shards_per_node: 2,
            placement: ShardPlacement::new(0, true),
            ..ClusterConfig::default()
        };
        let cluster = Cluster::new(config).unwrap();
        drive_to_completion(&cluster, 0, ContentId(1));
        let metrics = cluster.finish();
        assert_eq!(metrics.completed(), 1);
        // On Linux every worker pins (cores wrap the budget); on
        // unsupported platforms the count is honestly zero. The
        // metric is read after the join, so it is final.
        let pinned = metrics.pinned_workers;
        assert!(pinned == 4 || pinned == 0, "partial pinning: {pinned}/4");
        assert_eq!(metrics.ring_mode, RingMode::Mpsc);
    }

    #[test]
    fn with_faults_rejects_plans_outside_the_cluster() {
        let plan = FaultPlan::none().with_node_outage(9, 10, None);
        let r = Cluster::with_faults(ClusterConfig::default(), plan);
        assert!(matches!(r, Err(EngineError::FaultSpec { .. })));
    }

    #[test]
    fn killed_node_sheds_at_admission_and_revives_on_schedule() {
        let config = ClusterConfig {
            nodes: 3,
            catalogue: 1_000,
            capacity: 10,
            ell: 0.5,
            ..ClusterConfig::default()
        };
        let plan = FaultPlan::none().with_node_outage(1, 2, Some(4));
        let cluster = Cluster::with_faults(config, plan).unwrap();
        assert!(cluster.try_submit(1, ContentId(1)), "op 1: healthy"); // local
        cluster.drain(); // op 1 completes before the kill can land
        assert!(!cluster.try_submit(1, ContentId(1)), "op 2: kill applies, shed");
        assert_eq!(cluster.routing_epoch(), 2, "kill bumped the epoch");
        // op 3 from a survivor: node 1's slice re-homes via HRW; the
        // survivor holder misses it, so origin serves — never node 1.
        assert!(cluster.try_submit(0, ContentId(12)), "op 3: survivors admit");
        cluster.drain();
        assert!(cluster.try_submit(2, ContentId(20)), "op 4: revive applies");
        assert_eq!(cluster.routing_epoch(), 3, "revive bumped the epoch");
        cluster.drain();
        assert!(cluster.try_submit(1, ContentId(1)), "op 5: node 1 is back");
        cluster.drain();
        let metrics = cluster.finish();
        assert_eq!(metrics.completed(), 4, "every admitted op completed");
        assert_eq!(metrics.shed_node_down, 1);
        assert_eq!(metrics.per_node[1].local, 2, "ops 1 and 5 hit locally");
        assert_eq!(metrics.fault_log.len(), 2);
        assert_eq!(metrics.fault_log[0].kind, FaultKind::KillNode(1));
        assert_eq!(metrics.fault_log[1].kind, FaultKind::ReviveNode(1));
        assert_eq!(metrics.routing_epoch, 3);
        assert_eq!(metrics.health_marked_down, 0, "plan kills bypass the detector");
    }

    #[test]
    fn dead_worker_completes_admitted_jobs_at_origin() {
        let config = ClusterConfig {
            nodes: 1,
            catalogue: 1_000,
            capacity: 10,
            ell: 0.0,
            ..ClusterConfig::default()
        };
        let plan = FaultPlan::none().with_worker_outage(0, 0, 2, Some(3));
        let cluster = Cluster::with_faults(config, plan).unwrap();
        assert!(cluster.try_submit(0, ContentId(1)), "op 1: local hit");
        cluster.drain();
        // Node stays admittable while only the worker is dead.
        assert!(cluster.try_submit(0, ContentId(1)), "op 2: admitted into dead worker");
        cluster.drain();
        assert!(cluster.try_submit(0, ContentId(1)), "op 3: worker revived");
        cluster.drain();
        let metrics = cluster.finish();
        assert_eq!(metrics.completed(), 3);
        assert_eq!(metrics.fault_served, 1, "dead worker answered from origin");
        assert_eq!(metrics.totals().local, 2, "ops 1 and 3 hit the warm store");
        assert_eq!(metrics.shed_node_down, 0);
        assert_eq!(metrics.routing_epoch, 1, "worker faults never touch routing");
    }
}
