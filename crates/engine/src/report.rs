//! One-shot serve-bench orchestration: provision a cluster, drive it
//! with open-loop load, and fold the results into a serializable,
//! observability-wired outcome.

use ccn_obs::{Json, Registry, ToJson};
use ccn_sim::{ServedBy, TierCounts};

use ccn_obs::Histogram;

use crate::affinity::available_cores;
use crate::cluster::{Cluster, ClusterConfig, StorePolicy};
use crate::control::{ClusterController, ControllerConfig, ControllerReport};
use crate::error::EngineError;
use crate::fault::{AppliedFault, FaultPlan};
use crate::load::{drive, LoadReport, OpenLoopConfig};
use crate::shard::RingMode;

/// Everything one serve-bench run needs.
#[derive(Debug, Clone, Default)]
pub struct ServeBenchConfig {
    /// Cluster provisioning.
    pub cluster: ClusterConfig,
    /// Offered load.
    pub load: OpenLoopConfig,
    /// Deterministic fault schedule replayed during the run
    /// ([`FaultPlan::none`] = the fault-free baseline).
    pub faults: FaultPlan,
    /// Live adaptive provisioning: when set, a [`ClusterController`]
    /// rides the run on its own thread, ticking every
    /// [`ControllerConfig::tick_interval`] — re-fitting the exponent
    /// from the admission tap and re-slicing the cluster through
    /// budgeted incremental config epochs. `None` (the default) is
    /// the static baseline.
    pub adapt: Option<ControllerConfig>,
}

/// Results of one serve-bench run.
#[derive(Debug, Clone)]
pub struct ServeBenchOutcome {
    /// Cluster configuration echo (provisioning mode, ℓ, shards…).
    pub cluster: ClusterConfig,
    /// Load configuration echo (α, rate, pacing…).
    pub load: OpenLoopConfig,
    /// Shard worker threads serving requests (`nodes × shards`).
    pub worker_threads: usize,
    /// Generator threads used.
    pub generators: usize,
    /// Cores this process may run on (affinity-mask popcount).
    pub available_cores: usize,
    /// Placement core budget the run was configured with.
    pub placement_cores: usize,
    /// Whether placement pinning was requested.
    pub placement_pin: bool,
    /// Shard workers that successfully pinned to their placement core.
    pub pinned_workers: usize,
    /// Generator threads that successfully pinned.
    pub pinned_generators: usize,
    /// The producer discipline the shard rings resolved to.
    pub ring_mode: RingMode,
    /// Requests issued by the generators.
    pub offered: u64,
    /// Requests rejected at admission.
    pub shed: u64,
    /// Requests completed by some tier (`offered − shed`).
    pub completed: u64,
    /// Completions that fell to origin because a peer queue was full.
    pub degraded_to_origin: u64,
    /// Cluster-wide completions per tier.
    pub tiers: TierCounts,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Throughput normalized by the placement core budget — the
    /// number a multi-core scaling sweep gates on.
    pub requests_per_sec_per_core: f64,
    /// High-water mark of any single shard queue.
    pub max_queue_depth: usize,
    /// Service latency per tier, indexed by [`ServedBy::index`].
    pub tier_latency: Vec<Histogram>,
    /// Forward re-enqueue attempts after peer-queue bounces.
    pub retried: u64,
    /// Forwards routed to a rendezvous survivor instead of the
    /// assigned primary.
    pub failed_over: u64,
    /// Forwards answered by origin because the deadline passed first.
    pub deadline_expired: u64,
    /// Jobs completed at origin by a dead node or dead shard worker.
    pub fault_served: u64,
    /// Requests shed at admission because their node was killed.
    pub shed_node_down: u64,
    /// Nodes the health detector marked down during the run.
    pub health_marked_down: u64,
    /// Health-marked-down nodes revived by probation.
    pub health_revived: u64,
    /// Final routing epoch (1 = liveness never changed).
    pub routing_epoch: u64,
    /// Final config epoch (1 = the layout never changed; adaptive
    /// runs bump it once per issued incremental epoch).
    pub config_epoch: u64,
    /// Every fault applied during the run, in application order.
    pub fault_log: Vec<AppliedFault>,
    /// The adaptive controller's full observability snapshot (`None`
    /// on static runs).
    pub controller: Option<ControllerReport>,
}

impl ServeBenchOutcome {
    /// Fraction of completions served by `tier` (0 when nothing
    /// completed).
    #[must_use]
    pub fn fraction(&self, tier: ServedBy) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let count = match tier {
            ServedBy::Local => self.tiers.local,
            ServedBy::Peer => self.tiers.peer,
            ServedBy::Origin => self.tiers.origin,
        };
        #[allow(clippy::cast_precision_loss)]
        {
            count as f64 / self.completed as f64
        }
    }

    /// The run's counters, gauges, and per-tier histograms as a
    /// [`ccn_obs::Registry`] — the same shapes a scrape endpoint
    /// would export.
    #[must_use]
    pub fn registry(&self) -> Registry {
        let mut registry = Registry::new();
        registry.counter("engine.requests.offered").add(self.offered);
        registry.counter("engine.requests.shed").add(self.shed);
        registry.counter("engine.requests.completed").add(self.completed);
        registry.counter("engine.requests.degraded_to_origin").add(self.degraded_to_origin);
        for tier in ServedBy::ALL {
            let count = match tier {
                ServedBy::Local => self.tiers.local,
                ServedBy::Peer => self.tiers.peer,
                ServedBy::Origin => self.tiers.origin,
            };
            registry.counter(&format!("engine.served.{}", tier.name())).add(count);
            // Assign rather than merge: the registry's default bucket
            // grid differs from the engine's finer sub-ms grid.
            *registry.histogram(&format!("engine.latency_ms.{}", tier.name())) =
                self.tier_latency[tier.index()].clone();
        }
        registry.counter("engine.faults.retried").add(self.retried);
        registry.counter("engine.faults.failed_over").add(self.failed_over);
        registry.counter("engine.faults.deadline_expired").add(self.deadline_expired);
        registry.counter("engine.faults.fault_served").add(self.fault_served);
        registry.counter("engine.faults.shed_node_down").add(self.shed_node_down);
        registry.counter("engine.faults.health_marked_down").add(self.health_marked_down);
        registry.counter("engine.faults.health_revived").add(self.health_revived);
        registry.counter("engine.faults.applied").add(self.fault_log.len() as u64);
        #[allow(clippy::cast_precision_loss)]
        registry.gauge("engine.routing.epoch").set(self.routing_epoch as f64);
        #[allow(clippy::cast_precision_loss)]
        registry.gauge("engine.config.epoch").set(self.config_epoch as f64);
        if let Some(ctl) = &self.controller {
            registry.counter("engine.controller.refits").add(ctl.refits);
            registry.counter("engine.controller.holds").add(ctl.holds);
            registry.counter("engine.controller.retargets").add(ctl.retargets);
            registry.counter("engine.controller.epochs_issued").add(ctl.epochs_issued);
            registry.counter("engine.controller.slices_moved").add(ctl.slices_moved);
            registry.counter("engine.controller.samples_observed").add(ctl.samples_observed);
            registry.gauge("engine.controller.fitted_s").set(ctl.fitted_s.unwrap_or(f64::NAN));
            registry.gauge("engine.controller.current_ell").set(ctl.current_ell);
            registry.gauge("engine.controller.window_weight").set(ctl.window_weight);
        }
        #[allow(clippy::cast_precision_loss)]
        registry.gauge("engine.queue.max_depth").set(self.max_queue_depth as f64);
        registry.gauge("engine.throughput.req_per_sec").set(self.requests_per_sec);
        registry
            .gauge("engine.throughput.req_per_sec_per_core")
            .set(self.requests_per_sec_per_core);
        #[allow(clippy::cast_precision_loss)]
        registry
            .gauge("engine.placement.pinned_threads")
            .set((self.pinned_workers + self.pinned_generators) as f64);
        registry
    }
}

impl ToJson for ServeBenchOutcome {
    fn to_json(&self) -> Json {
        let mode = match self.cluster.policy {
            StorePolicy::Provisioned => "provisioned",
            StorePolicy::Lru => "lru",
        };
        let provisioning = if self.cluster.x() == 0 { "non-coordinated" } else { "coordinated" };
        let mut latency = Json::object();
        for tier in ServedBy::ALL {
            latency = latency.field(tier.name(), self.tier_latency[tier.index()].to_json());
        }
        Json::object()
            .field("provisioning", provisioning)
            .field("policy", mode)
            .field("nodes", self.cluster.nodes as u64)
            .field("shards_per_node", self.cluster.shards_per_node as u64)
            .field("worker_threads", self.worker_threads as u64)
            .field("generators", self.generators as u64)
            .field("available_cores", self.available_cores as u64)
            .field("placement_cores", self.placement_cores as u64)
            .field("placement_pin", self.placement_pin)
            .field("pinned_workers", self.pinned_workers as u64)
            .field("pinned_generators", self.pinned_generators as u64)
            .field("ring_mode", self.ring_mode.name())
            .field("queue_capacity", self.cluster.queue_capacity as u64)
            .field("batch", self.load.batch as u64)
            .field("idle", self.cluster.idle.name().as_str())
            .field("catalogue", self.cluster.catalogue)
            .field("capacity", self.cluster.capacity)
            .field("ell", self.cluster.ell)
            .field("zipf_s", self.load.zipf_s)
            .field("rate_per_node_per_ms", self.load.rate_per_node_per_ms)
            .field("horizon_ms", self.load.horizon_ms)
            .field("paced", self.load.paced)
            .field("seed", self.load.seed)
            .field("offered", self.offered)
            .field("completed", self.completed)
            .field("shed", self.shed)
            .field("degraded_to_origin", self.degraded_to_origin)
            .field("served_local", self.tiers.local)
            .field("served_peer", self.tiers.peer)
            .field("served_origin", self.tiers.origin)
            .field("local_fraction", self.fraction(ServedBy::Local))
            .field("peer_fraction", self.fraction(ServedBy::Peer))
            .field("origin_fraction", self.fraction(ServedBy::Origin))
            .field("wall_ms", self.wall_ms)
            .field("requests_per_sec", self.requests_per_sec)
            .field("requests_per_sec_per_core", self.requests_per_sec_per_core)
            .field("max_queue_depth", self.max_queue_depth as u64)
            .field("retried", self.retried)
            .field("failed_over", self.failed_over)
            .field("deadline_expired", self.deadline_expired)
            .field("fault_served", self.fault_served)
            .field("shed_node_down", self.shed_node_down)
            .field("health_marked_down", self.health_marked_down)
            .field("health_revived", self.health_revived)
            .field("routing_epoch", self.routing_epoch)
            .field("config_epoch", self.config_epoch)
            .field("faults_applied", self.fault_log.len() as u64)
            .field(
                "fault_log",
                Json::from(
                    self.fault_log.iter().map(|f| Json::from(f.to_string())).collect::<Vec<_>>(),
                ),
            )
            .field("latency_ms", latency)
            .field("adaptive", self.controller.is_some())
            .field(
                "controller",
                self.controller.as_ref().map_or_else(Json::object, controller_json),
            )
            .field("metrics", self.registry().to_json())
    }
}

/// The controller's observability snapshot as JSON — the shape the
/// `engine_controller` manifest block mirrors. Shared by the
/// in-process and wire reports so both render the controller
/// identically.
pub fn controller_json(report: &ControllerReport) -> Json {
    Json::object()
        .field("fitted_s", report.fitted_s.unwrap_or(f64::NAN))
        .field("window_weight", report.window_weight)
        .field("samples_observed", report.samples_observed)
        .field("refits", report.refits)
        .field("holds", report.holds)
        .field("retargets", report.retargets)
        .field("epochs_issued", report.epochs_issued)
        .field("slices_moved", report.slices_moved)
        .field("current_ell", report.current_ell)
        .field("movement_budget", report.movement_budget)
        .field("pending_steps", report.pending_steps as u64)
        .field(
            "decisions",
            Json::from(
                report.decisions.iter().map(|d| Json::from(d.to_string())).collect::<Vec<_>>(),
            ),
        )
}

/// Provisions a cluster, drives it, and verifies the accounting
/// invariant before reporting.
///
/// # Errors
///
/// Propagates configuration and workload errors, and returns
/// [`EngineError::Accounting`] if any request went unaccounted
/// (`completed + shed != offered` — an engine bug, never expected).
pub fn serve_bench(config: &ServeBenchConfig) -> Result<ServeBenchOutcome, EngineError> {
    let cluster = Cluster::with_faults(config.cluster.clone(), config.faults.clone())?;
    let (load, controller) = match config.adapt {
        None => (drive(&cluster, &config.load)?, None),
        Some(adapt) => {
            let (load, report) = drive_adaptive(&cluster, &config.load, adapt)?;
            (load, Some(report))
        }
    };
    let metrics = cluster.finish();
    let completed = metrics.completed();
    if completed + load.shed != load.offered {
        return Err(EngineError::Accounting { offered: load.offered, completed, shed: load.shed });
    }
    #[allow(clippy::cast_precision_loss)]
    let requests_per_sec = completed as f64 / (load.wall_ms as f64 / 1e3);
    #[allow(clippy::cast_precision_loss)]
    let requests_per_sec_per_core = requests_per_sec / config.cluster.placement.cores() as f64;
    Ok(ServeBenchOutcome {
        worker_threads: config.cluster.nodes * config.cluster.shards_per_node,
        generators: load.generators,
        available_cores: available_cores(),
        placement_cores: config.cluster.placement.cores(),
        placement_pin: config.cluster.placement.pin(),
        pinned_workers: metrics.pinned_workers,
        pinned_generators: load.pinned_generators,
        ring_mode: metrics.ring_mode,
        offered: load.offered,
        shed: load.shed,
        completed,
        degraded_to_origin: metrics.degraded_to_origin,
        tiers: metrics.totals(),
        wall_ms: load.wall_ms,
        requests_per_sec,
        requests_per_sec_per_core,
        max_queue_depth: metrics.max_queue_depth,
        tier_latency: metrics.tier_latency,
        retried: metrics.retried,
        failed_over: metrics.failed_over,
        deadline_expired: metrics.deadline_expired,
        fault_served: metrics.fault_served,
        shed_node_down: metrics.shed_node_down,
        health_marked_down: metrics.health_marked_down,
        health_revived: metrics.health_revived,
        routing_epoch: metrics.routing_epoch,
        config_epoch: metrics.config_epoch,
        fault_log: metrics.fault_log,
        controller,
        cluster: config.cluster.clone(),
        load: config.load.clone(),
    })
}

/// Drives the load with a live controller riding the run on its own
/// thread: ticks every `adapt.tick_interval` while the generators
/// offer traffic, then — once the load stops — drains any pending
/// epoch chain and takes one final fit over the tail of the window,
/// so a drift late in the run still converges.
fn drive_adaptive(
    cluster: &Cluster,
    load: &OpenLoopConfig,
    adapt: ControllerConfig,
) -> Result<(LoadReport, ControllerReport), EngineError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let mut controller = ClusterController::attach(cluster, adapt)?;
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let stop = &stop;
        let ticker = scope.spawn(move || -> Result<ControllerReport, EngineError> {
            while !stop.load(Ordering::Acquire) {
                controller.step(cluster)?;
                std::thread::sleep(adapt.tick_interval);
            }
            controller.step(cluster)?;
            controller.drain_chain(cluster)?;
            Ok(controller.report())
        });
        let load_result = drive(cluster, load);
        stop.store(true, Ordering::Release);
        let report = ticker.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic))?;
        Ok((load_result?, report))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> ServeBenchConfig {
        ServeBenchConfig {
            cluster: ClusterConfig {
                nodes: 2,
                catalogue: 1_000,
                capacity: 20,
                ..ClusterConfig::default()
            },
            load: OpenLoopConfig {
                rate_per_node_per_ms: 1.0,
                horizon_ms: 200.0,
                ..OpenLoopConfig::default()
            },
            faults: FaultPlan::none(),
            adapt: None,
        }
    }

    #[test]
    fn outcome_accounts_and_serializes() {
        let outcome = serve_bench(&smoke_config()).unwrap();
        assert_eq!(outcome.offered, outcome.completed + outcome.shed);
        assert!(outcome.requests_per_sec > 0.0);
        let json = outcome.to_json();
        assert_eq!(json.get("offered").and_then(Json::as_u64), Some(outcome.offered));
        assert_eq!(json.get("provisioning").and_then(Json::as_str), Some("coordinated"));
        assert_eq!(json.get("batch").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("idle").and_then(Json::as_str), Some("spin-then-park"));
        let fractions: f64 = [ServedBy::Local, ServedBy::Peer, ServedBy::Origin]
            .iter()
            .map(|&t| outcome.fraction(t))
            .sum();
        assert!((fractions - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batched_pipeline_accounts_and_reports_its_knobs() {
        let mut config = smoke_config();
        config.load.batch = 64;
        config.cluster.idle = crate::shard::IdleStrategy::yielding();
        let outcome = serve_bench(&config).unwrap();
        assert_eq!(outcome.offered, outcome.completed + outcome.shed);
        let json = outcome.to_json();
        assert_eq!(json.get("batch").and_then(Json::as_u64), Some(64));
        assert_eq!(json.get("idle").and_then(Json::as_str), Some("yield"));
    }

    #[test]
    fn outcome_reports_placement_and_ring_mode() {
        use crate::affinity::ShardPlacement;
        let mut config = smoke_config();
        config.cluster.nodes = 1;
        config.cluster.ell = 0.0;
        config.cluster.placement = ShardPlacement::new(0, true);
        config.cluster.ring_mode = RingMode::Auto;
        let outcome = serve_bench(&config).unwrap();
        assert!(outcome.available_cores >= 1);
        assert_eq!(outcome.placement_cores, outcome.cluster.placement.cores());
        assert!(outcome.placement_pin);
        assert_eq!(outcome.ring_mode, RingMode::Spsc, "single lane under Auto demotes");
        assert!(outcome.requests_per_sec_per_core > 0.0);
        let json = outcome.to_json();
        assert_eq!(json.get("ring_mode").and_then(Json::as_str), Some("spsc"));
        assert_eq!(
            json.get("available_cores").and_then(Json::as_u64),
            Some(outcome.available_cores as u64)
        );
        assert_eq!(
            json.get("pinned_workers").and_then(Json::as_u64),
            Some(outcome.pinned_workers as u64)
        );
        let rendered = outcome.registry().to_json().to_string_compact();
        assert!(rendered.contains("engine.throughput.req_per_sec_per_core"));
        assert!(rendered.contains("engine.placement.pinned_threads"));
    }

    #[test]
    fn registry_exports_the_run() {
        let outcome = serve_bench(&smoke_config()).unwrap();
        let registry = outcome.registry();
        assert!(registry.len() >= 9);
        let rendered = registry.to_json().to_string_compact();
        assert!(rendered.contains("engine.requests.offered"));
        assert!(rendered.contains("engine.faults.fault_served"));
        assert!(rendered.contains("engine.routing.epoch"));
    }

    #[test]
    fn adaptive_run_reports_the_controller_and_stays_accounted() {
        use crate::load::DriftSegment;
        let mut config = smoke_config();
        config.load.rate_per_node_per_ms = 4.0;
        config.load.drift = vec![DriftSegment { at_ms: 100.0, zipf_s: 1.5 }];
        config.adapt = Some(ControllerConfig {
            min_window: 200.0,
            sample_every: 1,
            tick_interval: std::time::Duration::from_millis(2),
            ..ControllerConfig::default()
        });
        let outcome = serve_bench(&config).unwrap();
        assert_eq!(outcome.offered, outcome.completed + outcome.shed);
        let ctl = outcome.controller.as_ref().expect("adaptive run must report its controller");
        assert_eq!(ctl.pending_steps, 0, "the chain is drained before reporting");
        assert_eq!(
            outcome.config_epoch,
            1 + ctl.epochs_issued,
            "every issued epoch must be visible as a config-epoch bump"
        );
        let json = outcome.to_json();
        assert_eq!(json.get("adaptive").and_then(Json::as_bool), Some(true));
        let block = json.get("controller").expect("controller block");
        assert_eq!(block.get("epochs_issued").and_then(Json::as_u64), Some(ctl.epochs_issued));
        assert_eq!(block.get("movement_budget").and_then(Json::as_u64), Some(ctl.movement_budget));
        let rendered = outcome.registry().to_json().to_string_compact();
        assert!(rendered.contains("engine.controller.refits"));
        assert!(rendered.contains("engine.config.epoch"));
    }

    #[test]
    fn static_runs_report_no_controller() {
        let outcome = serve_bench(&smoke_config()).unwrap();
        assert!(outcome.controller.is_none());
        assert_eq!(outcome.config_epoch, 1);
        let json = outcome.to_json();
        assert_eq!(json.get("adaptive").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn faulted_run_accounts_exactly_and_reports_the_log() {
        let mut config = smoke_config();
        // Kill node 1 early, revive it mid-run.
        config.faults = FaultPlan::none().with_node_outage(1, 20, Some(120));
        let outcome = serve_bench(&config).unwrap();
        assert_eq!(outcome.offered, outcome.completed + outcome.shed, "conservation under faults");
        assert_eq!(outcome.fault_log.len(), 2, "kill and revive both applied");
        assert!(outcome.routing_epoch >= 3, "two liveness flips bump the epoch twice");
        assert!(
            outcome.shed >= outcome.shed_node_down,
            "node-down sheds are a subset of all sheds"
        );
        let json = outcome.to_json();
        assert_eq!(json.get("faults_applied").and_then(Json::as_u64), Some(2));
        assert_eq!(json.get("routing_epoch").and_then(Json::as_u64), Some(outcome.routing_epoch));
        // The rendered fault log parses back as a spec string.
        let rendered = json.to_string_compact();
        assert!(rendered.contains("kill:1@20"), "{rendered}");
    }
}
