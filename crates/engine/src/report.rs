//! One-shot serve-bench orchestration: provision a cluster, drive it
//! with open-loop load, and fold the results into a serializable,
//! observability-wired outcome.

use ccn_obs::{Json, Registry, ToJson};
use ccn_sim::{ServedBy, TierCounts};

use ccn_obs::Histogram;

use crate::cluster::{Cluster, ClusterConfig, StorePolicy};
use crate::error::EngineError;
use crate::load::{drive, OpenLoopConfig};

/// Everything one serve-bench run needs.
#[derive(Debug, Clone, Default)]
pub struct ServeBenchConfig {
    /// Cluster provisioning.
    pub cluster: ClusterConfig,
    /// Offered load.
    pub load: OpenLoopConfig,
}

/// Results of one serve-bench run.
#[derive(Debug, Clone)]
pub struct ServeBenchOutcome {
    /// Cluster configuration echo (provisioning mode, ℓ, shards…).
    pub cluster: ClusterConfig,
    /// Load configuration echo (α, rate, pacing…).
    pub load: OpenLoopConfig,
    /// Shard worker threads serving requests (`nodes × shards`).
    pub worker_threads: usize,
    /// Generator threads used.
    pub generators: usize,
    /// Requests issued by the generators.
    pub offered: u64,
    /// Requests rejected at admission.
    pub shed: u64,
    /// Requests completed by some tier (`offered − shed`).
    pub completed: u64,
    /// Completions that fell to origin because a peer queue was full.
    pub degraded_to_origin: u64,
    /// Cluster-wide completions per tier.
    pub tiers: TierCounts,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// High-water mark of any single shard queue.
    pub max_queue_depth: usize,
    /// Service latency per tier, indexed by [`ServedBy::index`].
    pub tier_latency: Vec<Histogram>,
}

impl ServeBenchOutcome {
    /// Fraction of completions served by `tier` (0 when nothing
    /// completed).
    #[must_use]
    pub fn fraction(&self, tier: ServedBy) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        let count = match tier {
            ServedBy::Local => self.tiers.local,
            ServedBy::Peer => self.tiers.peer,
            ServedBy::Origin => self.tiers.origin,
        };
        #[allow(clippy::cast_precision_loss)]
        {
            count as f64 / self.completed as f64
        }
    }

    /// The run's counters, gauges, and per-tier histograms as a
    /// [`ccn_obs::Registry`] — the same shapes a scrape endpoint
    /// would export.
    #[must_use]
    pub fn registry(&self) -> Registry {
        let mut registry = Registry::new();
        registry.counter("engine.requests.offered").add(self.offered);
        registry.counter("engine.requests.shed").add(self.shed);
        registry.counter("engine.requests.completed").add(self.completed);
        registry.counter("engine.requests.degraded_to_origin").add(self.degraded_to_origin);
        for tier in ServedBy::ALL {
            let count = match tier {
                ServedBy::Local => self.tiers.local,
                ServedBy::Peer => self.tiers.peer,
                ServedBy::Origin => self.tiers.origin,
            };
            registry.counter(&format!("engine.served.{}", tier.name())).add(count);
            // Assign rather than merge: the registry's default bucket
            // grid differs from the engine's finer sub-ms grid.
            *registry.histogram(&format!("engine.latency_ms.{}", tier.name())) =
                self.tier_latency[tier.index()].clone();
        }
        #[allow(clippy::cast_precision_loss)]
        registry.gauge("engine.queue.max_depth").set(self.max_queue_depth as f64);
        registry.gauge("engine.throughput.req_per_sec").set(self.requests_per_sec);
        registry
    }
}

impl ToJson for ServeBenchOutcome {
    fn to_json(&self) -> Json {
        let mode = match self.cluster.policy {
            StorePolicy::Provisioned => "provisioned",
            StorePolicy::Lru => "lru",
        };
        let provisioning = if self.cluster.x() == 0 { "non-coordinated" } else { "coordinated" };
        let mut latency = Json::object();
        for tier in ServedBy::ALL {
            latency = latency.field(tier.name(), self.tier_latency[tier.index()].to_json());
        }
        Json::object()
            .field("provisioning", provisioning)
            .field("policy", mode)
            .field("nodes", self.cluster.nodes as u64)
            .field("shards_per_node", self.cluster.shards_per_node as u64)
            .field("worker_threads", self.worker_threads as u64)
            .field("generators", self.generators as u64)
            .field("queue_capacity", self.cluster.queue_capacity as u64)
            .field("batch", self.load.batch as u64)
            .field("idle", self.cluster.idle.name().as_str())
            .field("catalogue", self.cluster.catalogue)
            .field("capacity", self.cluster.capacity)
            .field("ell", self.cluster.ell)
            .field("zipf_s", self.load.zipf_s)
            .field("rate_per_node_per_ms", self.load.rate_per_node_per_ms)
            .field("horizon_ms", self.load.horizon_ms)
            .field("paced", self.load.paced)
            .field("seed", self.load.seed)
            .field("offered", self.offered)
            .field("completed", self.completed)
            .field("shed", self.shed)
            .field("degraded_to_origin", self.degraded_to_origin)
            .field("served_local", self.tiers.local)
            .field("served_peer", self.tiers.peer)
            .field("served_origin", self.tiers.origin)
            .field("local_fraction", self.fraction(ServedBy::Local))
            .field("peer_fraction", self.fraction(ServedBy::Peer))
            .field("origin_fraction", self.fraction(ServedBy::Origin))
            .field("wall_ms", self.wall_ms)
            .field("requests_per_sec", self.requests_per_sec)
            .field("max_queue_depth", self.max_queue_depth as u64)
            .field("latency_ms", latency)
            .field("metrics", self.registry().to_json())
    }
}

/// Provisions a cluster, drives it, and verifies the accounting
/// invariant before reporting.
///
/// # Errors
///
/// Propagates configuration and workload errors, and returns
/// [`EngineError::Accounting`] if any request went unaccounted
/// (`completed + shed != offered` — an engine bug, never expected).
pub fn serve_bench(config: &ServeBenchConfig) -> Result<ServeBenchOutcome, EngineError> {
    let cluster = Cluster::new(config.cluster.clone())?;
    let load = drive(&cluster, &config.load)?;
    let metrics = cluster.finish();
    let completed = metrics.completed();
    if completed + load.shed != load.offered {
        return Err(EngineError::Accounting { offered: load.offered, completed, shed: load.shed });
    }
    #[allow(clippy::cast_precision_loss)]
    let requests_per_sec = completed as f64 / (load.wall_ms as f64 / 1e3);
    Ok(ServeBenchOutcome {
        worker_threads: config.cluster.nodes * config.cluster.shards_per_node,
        generators: load.generators,
        offered: load.offered,
        shed: load.shed,
        completed,
        degraded_to_origin: metrics.degraded_to_origin,
        tiers: metrics.totals(),
        wall_ms: load.wall_ms,
        requests_per_sec,
        max_queue_depth: metrics.max_queue_depth,
        tier_latency: metrics.tier_latency,
        cluster: config.cluster.clone(),
        load: config.load.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> ServeBenchConfig {
        ServeBenchConfig {
            cluster: ClusterConfig {
                nodes: 2,
                catalogue: 1_000,
                capacity: 20,
                ..ClusterConfig::default()
            },
            load: OpenLoopConfig {
                rate_per_node_per_ms: 1.0,
                horizon_ms: 200.0,
                ..OpenLoopConfig::default()
            },
        }
    }

    #[test]
    fn outcome_accounts_and_serializes() {
        let outcome = serve_bench(&smoke_config()).unwrap();
        assert_eq!(outcome.offered, outcome.completed + outcome.shed);
        assert!(outcome.requests_per_sec > 0.0);
        let json = outcome.to_json();
        assert_eq!(json.get("offered").and_then(Json::as_u64), Some(outcome.offered));
        assert_eq!(json.get("provisioning").and_then(Json::as_str), Some("coordinated"));
        assert_eq!(json.get("batch").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("idle").and_then(Json::as_str), Some("spin-then-park"));
        let fractions: f64 = [ServedBy::Local, ServedBy::Peer, ServedBy::Origin]
            .iter()
            .map(|&t| outcome.fraction(t))
            .sum();
        assert!((fractions - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batched_pipeline_accounts_and_reports_its_knobs() {
        let mut config = smoke_config();
        config.load.batch = 64;
        config.cluster.idle = crate::shard::IdleStrategy::yielding();
        let outcome = serve_bench(&config).unwrap();
        assert_eq!(outcome.offered, outcome.completed + outcome.shed);
        let json = outcome.to_json();
        assert_eq!(json.get("batch").and_then(Json::as_u64), Some(64));
        assert_eq!(json.get("idle").and_then(Json::as_str), Some("yield"));
    }

    #[test]
    fn registry_exports_the_run() {
        let outcome = serve_bench(&smoke_config()).unwrap();
        let registry = outcome.registry();
        assert!(registry.len() >= 9);
        let rendered = registry.to_json().to_string_compact();
        assert!(rendered.contains("engine.requests.offered"));
    }
}
