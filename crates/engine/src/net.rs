//! Wire tier: the serving engine on real sockets.
//!
//! Everything before this module runs the paper's cooperating routers
//! inside one process — peer forwards are function calls, so the
//! d0/d1/d2 cost hierarchy the engine validates against the DES has
//! never crossed an actual link. This module splits the cluster into
//! real OS processes connected by TCP on a compact length-prefixed
//! binary protocol, in the same vendored, dependency-free style as
//! [`crate::ring`]: `std::net` only, no async runtime, no
//! serialization framework.
//!
//! # Frame layout
//!
//! Every message is one frame:
//!
//! ```text
//! +----------------+---------+--------------------------+
//! | len: u32 LE    | kind: u8| payload (len - 1 bytes)  |
//! +----------------+---------+--------------------------+
//! ```
//!
//! `len` counts the kind byte plus the payload and is capped at
//! [`MAX_FRAME`]; integers are little-endian, strings are `u16`
//! length-prefixed UTF-8. Requests are [`Request`], responses
//! [`Response`]; kinds with the high bit set are responses.
//!
//! # Roles
//!
//! - **Node** ([`NodeServer`], the `ccn node` subcommand): one router
//!   as a standalone process. It binds, prints its address, and waits
//!   for a **config epoch** — the coordinator's versioned provisioning
//!   push carrying the `ccn_coord` slice assignments, store layout,
//!   and the peer address list. Only then does it build its sharded
//!   store (served through the existing MPSC rings — see
//!   *Ring discipline* below) and start serving lookups. Peer misses
//!   are forwarded over per-peer TCP connections with the
//!   local → peer → retry → origin → shed degradation ladder intact.
//! - **Coordinator / driver** ([`wire_bench`]): provisions every node
//!   (epoch 1), drives per-node Zipf request streams over the same
//!   protocol, replays a kill/revive schedule by SIGKILLing node
//!   *processes* and re-provisioning the survivors plus the respawned
//!   node under a bumped epoch, and folds per-node ledgers into a
//!   [`WireOutcome`] whose accounting (`offered == completed + shed`)
//!   is enforced exactly, per node and in total.
//!
//! # Epoch semantics
//!
//! A config epoch is accepted iff it is strictly newer than the
//! node's current epoch; replays and reordered pushes are answered
//! with the current epoch and ignored. An epoch whose store layout
//! (catalogue, capacity, prefix, slices, policy) matches the current
//! provisioning swaps routing and peer links but **keeps the store**,
//! so re-provisioning live survivors after a revival does not discard
//! their cache warmth; a layout change rebuilds the store from
//! scratch.
//!
//! # Failure ladder over sockets
//!
//! The in-process ladder survives the move onto the wire with the
//! same rungs, re-expressed in socket vocabulary:
//!
//! - **peer**: one forward frame on the holder's connection, read
//!   back under the forward deadline (socket read timeout).
//! - **retry**: a holder that answers *refused* (admission
//!   backpressure, not yet provisioned) is retried up to the
//!   configured budget with linear backoff.
//! - **origin**: a deadline expiry or socket failure (connection
//!   refused, reset, torn down mid-conversation) degrades the request
//!   to origin at the client node. A timed-out connection is dropped,
//!   not reused — a late reply on a reused stream would desynchronize
//!   the framing.
//! - **health**: consecutive socket failures against one holder mark
//!   it down in the node's [`LiveRouting`] view (epoch bump, HRW
//!   failover moves exactly that node's share); a background probe
//!   thread pings down peers and restores them when they answer
//!   again. This replaces the in-process op-count probation with
//!   wall-clock probing — the only rung whose clock changes.
//! - **shed**: a killed node's clients shed at the driver edge: a
//!   request offered to a dead process is counted shed, never lost,
//!   so SIGKILL preserves `offered == completed + shed` bit-exactly.
//!
//! # Ring discipline
//!
//! A wire node's producers are its accepted connections, and those
//! arrive *after* traffic starts — an [`RingMode::Auto`] census
//! sealed at first submission could demote a shard ring to SPSC and
//! then admit a second remote producer, corrupting the single-writer
//! invariant. The node therefore resolves `Auto` to MPSC whenever the
//! listener is enabled (and rejects explicit `Spsc` outright), and
//! additionally registers one producer lane per accepted connection,
//! so the census stays honest even if a future mode re-enables
//! demotion. See `late_remote_producer_cannot_corrupt_sealed_ring`.

use std::collections::VecDeque;
use std::io::{self, BufRead as _, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use ccn_coord::{contiguous_slices, RouterAssignment};
use ccn_sim::store::{ContentStore, LruStore, StaticStore};
use ccn_sim::{workload, ContentId};

use crate::affinity::ShardPlacement;
use crate::cluster::StorePolicy;
use crate::control::{Controller, ControllerConfig, ControllerReport, LayoutStep, RankTap};
use crate::error::EngineError;
use crate::fault::DegradeConfig;
use crate::routing::{LiveRouting, RoutingTable};
use crate::shard::{lock_recover, shard_of, IdleStrategy, RingMode, ShardSpec, ShardedStore};

/// Hard cap on one frame (length prefix included payload): 1 MiB.
/// Large enough for a 64k-request batch lookup, small enough that a
/// corrupt length prefix cannot balloon an allocation.
pub const MAX_FRAME: u32 = 1 << 20;

/// Wire protocol version, carried in `Hello` and answered in
/// `HelloAck`. Version 2 (this revision) tags `BatchLookup` /
/// `BatchServed` for pipelining, adds the batched peer-forward frames,
/// and answers `Hello` — a v1 node neither tags nor replies to the
/// preamble, so mixed-version clusters are rejected at the handshake
/// instead of desynchronizing mid-stream.
pub const PROTOCOL_VERSION: u8 = 2;

mod kind {
    pub const HELLO: u8 = 0x01;
    pub const CONFIG_EPOCH: u8 = 0x02;
    pub const LOOKUP: u8 = 0x03;
    pub const BATCH_LOOKUP: u8 = 0x04;
    pub const PEER_FORWARD: u8 = 0x05;
    pub const HEALTH_PROBE: u8 = 0x06;
    pub const STATS: u8 = 0x07;
    pub const SHUTDOWN: u8 = 0x08;
    pub const PEER_FORWARD_BATCH: u8 = 0x09;

    pub const EPOCH_ACK: u8 = 0x81;
    pub const SERVED: u8 = 0x82;
    pub const BATCH_SERVED: u8 = 0x83;
    pub const FORWARD_REPLY: u8 = 0x84;
    pub const HEALTH_ACK: u8 = 0x85;
    pub const STATS_REPLY: u8 = 0x86;
    pub const BYE: u8 = 0x87;
    pub const REFUSED: u8 = 0x88;
    pub const FORWARD_BATCH_REPLY: u8 = 0x89;
    pub const HELLO_ACK: u8 = 0x8A;
}

/// Tier codes used in `Served` replies.
pub const TIER_LOCAL: u8 = 0;
/// See [`TIER_LOCAL`].
pub const TIER_PEER: u8 = 1;
/// See [`TIER_LOCAL`].
pub const TIER_ORIGIN: u8 = 2;

/// `ForwardReply` outcome codes.
pub const FWD_HIT: u8 = 0;
/// Holder probed its slice and missed; origin serves.
pub const FWD_MISS: u8 = 1;
/// Holder refused the forward (backpressure / not provisioned).
pub const FWD_REFUSED: u8 = 2;

fn net_err(op: &str, detail: impl std::fmt::Display) -> EngineError {
    EngineError::Net { op: op.to_owned(), detail: detail.to_string(), timeout: false }
}

fn proto_err(reason: impl Into<String>) -> EngineError {
    EngineError::Protocol { reason: reason.into() }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), EngineError> {
    let len = u16::try_from(s.len()).map_err(|_| {
        proto_err(format!("string of {} bytes exceeds the u16 frame field", s.len()))
    })?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Cursor over a received payload; every read is bounds-checked so a
/// truncated frame surfaces as a typed protocol error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| proto_err("frame payload truncated"))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, EngineError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn str(&mut self) -> Result<String, EngineError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| proto_err("string field is not UTF-8"))
    }

    fn done(&self) -> Result<(), EngineError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(proto_err(format!("{} trailing bytes after payload", self.buf.len() - self.at)))
        }
    }
}

/// Shared per-role wire counters: one meter covers every metered
/// connection of one role (a node's links, or one driver stream). All
/// relaxed — these feed throughput accounting, not synchronization.
#[derive(Debug, Default)]
pub(crate) struct WireMeter {
    frames_out: AtomicU64,
    frames_in: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
    /// High-water mark of frames in flight on any metered connection.
    max_window: AtomicU64,
}

impl WireMeter {
    fn sent(&self, bytes: usize) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn received(&self, bytes: usize) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn window(&self, depth: usize) {
        self.max_window.fetch_max(depth as u64, Ordering::Relaxed);
    }
}

///// One framed connection with owned codec scratch: a read buffer
/// replacing the header/body `read_exact` syscall pairs with buffered
/// bulk reads (one `read` often delivers several pipelined frames),
/// and a write buffer encoded in place — 4-byte length hole, body,
/// length patched — flushed with a single `write_all`. A warm
/// connection sends and receives frames without allocating.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Read scratch; `rbuf[rstart..rend]` is valid unconsumed input.
    rbuf: Vec<u8>,
    rstart: usize,
    rend: usize,
    /// Write scratch, reused across frames.
    wbuf: Vec<u8>,
    /// `(offset, len)` of the last received frame body in `rbuf`;
    /// valid until the next `recv_len` call.
    last: (usize, usize),
    meter: Option<Arc<WireMeter>>,
}

impl Conn {
    fn new(stream: TcpStream, meter: Option<Arc<WireMeter>>) -> Self {
        Self { stream, rbuf: Vec::new(), rstart: 0, rend: 0, wbuf: Vec::new(), last: (0, 0), meter }
    }

    fn buffered(&self) -> usize {
        self.rend - self.rstart
    }

    /// Ensures `rbuf` can hold `need` bytes starting at `rstart`,
    /// compacting the unconsumed tail to the front before growing.
    fn make_room(&mut self, need: usize) {
        if self.rstart + need <= self.rbuf.len() {
            return;
        }
        self.rbuf.copy_within(self.rstart..self.rend, 0);
        self.rend -= self.rstart;
        self.rstart = 0;
        if self.rbuf.len() < need {
            self.rbuf.resize(need, 0);
        }
    }

    /// Receives one frame, honouring the stream's read timeout; the
    /// body (kind byte + payload) is readable via [`Conn::last_frame`]
    /// until the next receive. `Ok(None)` is a clean EOF on a frame
    /// boundary.
    ///
    /// Only a timeout with *no* partial frame buffered — a frame
    /// boundary — is classified as a timeout ([`is_timeout`]): it is
    /// safe to retry (idle) or re-route (deadline). Once any frame
    /// byte has arrived, a stall leaves the stream desynchronized, so
    /// mid-frame errors are deliberately wrapped via [`net_err`]
    /// (never a timeout) and the caller drops the connection.
    fn recv_len(&mut self) -> Result<Option<usize>, EngineError> {
        if self.buffered() == 0 {
            self.rstart = 0;
            self.rend = 0;
        }
        while self.buffered() < 4 {
            let at_boundary = self.buffered() == 0;
            self.make_room(4);
            match self.stream.read(&mut self.rbuf[self.rend..]) {
                Ok(0) if at_boundary => return Ok(None),
                Ok(0) => return Err(net_err("read-frame", "connection closed mid-frame")),
                Ok(n) => self.rend += n,
                Err(e) if at_boundary => return Err(net_io_err("read-frame", &e)),
                Err(e) => return Err(net_err("read-frame", e)),
            }
        }
        let h = self.rstart;
        let len = u32::from_le_bytes([
            self.rbuf[h],
            self.rbuf[h + 1],
            self.rbuf[h + 2],
            self.rbuf[h + 3],
        ]);
        if len == 0 || len > MAX_FRAME {
            return Err(proto_err(format!("frame length {len} outside 1..={MAX_FRAME}")));
        }
        let total = 4 + len as usize;
        self.make_room(total);
        while self.buffered() < total {
            match self.stream.read(&mut self.rbuf[self.rend..]) {
                Ok(0) => return Err(net_err("read-frame", "connection closed mid-frame")),
                Ok(n) => self.rend += n,
                Err(e) => return Err(net_err("read-frame", e)),
            }
        }
        self.last = (self.rstart + 4, len as usize);
        self.rstart += total;
        if let Some(m) = &self.meter {
            m.received(total);
        }
        Ok(Some(len as usize))
    }

    /// The body of the last frame received by [`Conn::recv_len`].
    fn last_frame(&self) -> &[u8] {
        &self.rbuf[self.last.0..self.last.0 + self.last.1]
    }

    /// Encodes one frame in the write scratch — length hole, body via
    /// `enc`, length patched — and sends it with one `write_all`.
    fn send(
        &mut self,
        enc: impl FnOnce(&mut Vec<u8>) -> Result<(), EngineError>,
    ) -> Result<(), EngineError> {
        self.wbuf.clear();
        self.wbuf.extend_from_slice(&[0u8; 4]);
        enc(&mut self.wbuf)?;
        let len = u32::try_from(self.wbuf.len() - 4)
            .ok()
            .filter(|&len| len > 0 && len <= MAX_FRAME)
            .ok_or_else(|| {
                proto_err(format!(
                    "frame of {} bytes outside 1..={MAX_FRAME}",
                    self.wbuf.len().saturating_sub(4)
                ))
            })?;
        self.wbuf[..4].copy_from_slice(&len.to_le_bytes());
        self.stream.write_all(&self.wbuf).map_err(|e| net_io_err("write-frame", &e))?;
        if let Some(m) = &self.meter {
            m.sent(self.wbuf.len());
        }
        Ok(())
    }

    fn send_request(&mut self, req: &Request) -> Result<(), EngineError> {
        self.send(|buf| req.encode_into(buf))
    }

    fn send_response(&mut self, resp: &Response) -> Result<(), EngineError> {
        self.send(|buf| resp.encode_into(buf))
    }

    fn recv_response(&mut self) -> Result<Response, EngineError> {
        match self.recv_len()? {
            Some(_) => Response::decode(self.last_frame()),
            None => Err(net_err("read-frame", "connection closed mid-conversation")),
        }
    }

    fn set_read_timeout(&self, t: Duration) -> Result<(), EngineError> {
        self.stream
            .set_read_timeout(Some(t.max(MIN_SOCKET_TIMEOUT)))
            .map_err(|e| net_err("set-timeout", e))
    }
}

fn is_timeout(e: &EngineError) -> bool {
    matches!(e, EngineError::Net { timeout: true, .. })
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// One contiguous coordinated slice `[start, end)` assigned to `node`,
/// as produced by `ccn_coord::contiguous_slices`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceAssignment {
    /// Owning router.
    pub node: u32,
    /// First coordinated rank of the slice (inclusive).
    pub start: u64,
    /// One past the last rank (exclusive).
    pub end: u64,
}

/// A versioned provisioning push: everything a node process needs to
/// build its store, its routing view, and its peer links.
#[derive(Debug, Clone, PartialEq)]
pub struct Provision {
    /// Monotone config version; a node accepts only strictly newer
    /// epochs.
    pub epoch: u64,
    /// Cluster size (routers).
    pub nodes: u32,
    /// Catalogue size `c_total`.
    pub catalogue: u64,
    /// Per-node store capacity `c`.
    pub capacity: u64,
    /// Local popularity prefix `c − x`.
    pub prefix: u64,
    /// Coordinated slots per node `x` (for a mid-chain incremental
    /// layout with uneven slices: the widest slice).
    pub x: u64,
    /// The coordinator's fitted Zipf exponent at push time, `0.0` when
    /// none (static provisioning, or no fit yet). Metadata only — it
    /// is excluded from [`Provision::same_layout`] so a fit-only
    /// change never discards cache warmth — carried so each node's
    /// stats snapshot reports what the controller believed.
    pub fitted_s: f64,
    /// Store population policy.
    pub policy: StorePolicy,
    /// Coordinated slice assignments (the `ccn_coord` plan).
    pub slices: Vec<SliceAssignment>,
    /// Listen address of every node, indexed by node id; a node
    /// ignores its own entry.
    pub peers: Vec<String>,
}

impl Provision {
    /// `true` when `other` provisions the identical store layout, so a
    /// node can keep its (possibly warm) store across the epoch swap.
    #[must_use]
    pub fn same_layout(&self, other: &Provision) -> bool {
        self.nodes == other.nodes
            && self.catalogue == other.catalogue
            && self.capacity == other.capacity
            && self.prefix == other.prefix
            && self.x == other.x
            && self.policy == other.policy
            && self.slices == other.slices
    }
}

/// Client-to-node and node-to-node request frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Connection preamble from a peer node (`node` = sender id).
    /// Registers the connection as a producer lane on the receiver's
    /// shard rings.
    Hello {
        /// Sender's node id.
        node: u32,
        /// Sender's protocol version.
        version: u8,
    },
    /// Coordinator provisioning push (see [`Provision`]).
    ConfigEpoch(Provision),
    /// One client request for `content`.
    Lookup {
        /// Requested rank.
        content: u64,
    },
    /// A batch of client requests, answered with one tier tally. The
    /// tag correlates the `BatchServed` reply when several batches are
    /// pipelined on one connection; replies come back in send order.
    BatchLookup {
        /// Sender-chosen correlation tag, echoed by the reply.
        tag: u32,
        /// Requested ranks.
        contents: Vec<u64>,
    },
    /// Peer forward: the sender's client missed locally and routing
    /// named the receiver holder of `content`.
    PeerForward {
        /// Requested rank.
        content: u64,
        /// Remaining forward-deadline budget, microseconds.
        budget_us: u32,
    },
    /// A burst of same-destination peer forwards coalesced into one
    /// frame: one syscall round-trip instead of one per miss. Each
    /// item carries its own remaining deadline budget; the holder
    /// answers every item in order (partial serves are per-item
    /// verdicts, never a truncated reply).
    PeerForwardBatch {
        /// Sender-chosen correlation tag, echoed by the reply.
        tag: u32,
        /// `(content, budget_us)` per forwarded miss.
        items: Vec<(u64, u32)>,
    },
    /// Liveness probe (works before provisioning).
    HealthProbe,
    /// Snapshot request for the node's counters.
    Stats,
    /// Orderly shutdown; answered with `Bye`.
    Shutdown,
}

impl Request {
    /// Serializes into a frame body (kind byte + payload).
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] if a field exceeds its wire width.
    pub fn encode(&self) -> Result<Vec<u8>, EngineError> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Serializes the frame body into caller scratch (appended), so a
    /// warm connection encodes without allocating.
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] if a field exceeds its wire width.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), EngineError> {
        match self {
            Request::Hello { node, version } => {
                buf.push(kind::HELLO);
                put_u32(buf, *node);
                buf.push(*version);
            }
            Request::ConfigEpoch(p) => {
                buf.push(kind::CONFIG_EPOCH);
                put_u64(buf, p.epoch);
                put_u32(buf, p.nodes);
                put_u64(buf, p.catalogue);
                put_u64(buf, p.capacity);
                put_u64(buf, p.prefix);
                put_u64(buf, p.x);
                put_u64(buf, p.fitted_s.to_bits());
                buf.push(match p.policy {
                    StorePolicy::Provisioned => 0,
                    StorePolicy::Lru => 1,
                });
                let slices = u32::try_from(p.slices.len())
                    .map_err(|_| proto_err("too many slices for one frame"))?;
                put_u32(buf, slices);
                for s in &p.slices {
                    put_u32(buf, s.node);
                    put_u64(buf, s.start);
                    put_u64(buf, s.end);
                }
                let peers = u32::try_from(p.peers.len())
                    .map_err(|_| proto_err("too many peers for one frame"))?;
                put_u32(buf, peers);
                for addr in &p.peers {
                    put_str(buf, addr)?;
                }
            }
            Request::Lookup { content } => {
                buf.push(kind::LOOKUP);
                put_u64(buf, *content);
            }
            Request::BatchLookup { tag, contents } => {
                encode_batch_lookup_from(buf, *tag, contents)?;
            }
            Request::PeerForward { content, budget_us } => {
                buf.push(kind::PEER_FORWARD);
                put_u64(buf, *content);
                put_u32(buf, *budget_us);
            }
            Request::PeerForwardBatch { tag, items } => {
                encode_forward_batch_from(buf, *tag, items)?;
            }
            Request::HealthProbe => buf.push(kind::HEALTH_PROBE),
            Request::Stats => buf.push(kind::STATS),
            Request::Shutdown => buf.push(kind::SHUTDOWN),
        }
        Ok(())
    }

    /// Parses a frame body as a request.
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] for unknown kinds, truncated or
    /// oversized payloads.
    pub fn decode(body: &[u8]) -> Result<Self, EngineError> {
        let mut c = Cursor::new(body);
        let k = c.u8()?;
        let req = match k {
            kind::HELLO => Request::Hello { node: c.u32()?, version: c.u8()? },
            kind::CONFIG_EPOCH => {
                let epoch = c.u64()?;
                let nodes = c.u32()?;
                let catalogue = c.u64()?;
                let capacity = c.u64()?;
                let prefix = c.u64()?;
                let x = c.u64()?;
                let fitted_s = f64::from_bits(c.u64()?);
                let policy = match c.u8()? {
                    0 => StorePolicy::Provisioned,
                    1 => StorePolicy::Lru,
                    other => return Err(proto_err(format!("unknown store policy code {other}"))),
                };
                let n_slices = c.u32()? as usize;
                if n_slices > MAX_FRAME as usize / 20 {
                    return Err(proto_err("slice count exceeds frame capacity"));
                }
                let mut slices = Vec::with_capacity(n_slices);
                for _ in 0..n_slices {
                    slices.push(SliceAssignment { node: c.u32()?, start: c.u64()?, end: c.u64()? });
                }
                let n_peers = c.u32()? as usize;
                if n_peers > u16::MAX as usize {
                    return Err(proto_err("peer count exceeds frame capacity"));
                }
                let mut peers = Vec::with_capacity(n_peers);
                for _ in 0..n_peers {
                    peers.push(c.str()?);
                }
                Request::ConfigEpoch(Provision {
                    epoch,
                    nodes,
                    catalogue,
                    capacity,
                    prefix,
                    x,
                    fitted_s,
                    policy,
                    slices,
                    peers,
                })
            }
            kind::LOOKUP => Request::Lookup { content: c.u64()? },
            kind::BATCH_LOOKUP => {
                let tag = c.u32()?;
                let count = c.u32()? as usize;
                if count > MAX_FRAME as usize / 8 {
                    return Err(proto_err("batch count exceeds frame capacity"));
                }
                let mut contents = Vec::with_capacity(count);
                for _ in 0..count {
                    contents.push(c.u64()?);
                }
                Request::BatchLookup { tag, contents }
            }
            kind::PEER_FORWARD => Request::PeerForward { content: c.u64()?, budget_us: c.u32()? },
            kind::PEER_FORWARD_BATCH => {
                let tag = c.u32()?;
                let count = c.u32()? as usize;
                if count > MAX_FRAME as usize / 12 {
                    return Err(proto_err("forward batch count exceeds frame capacity"));
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push((c.u64()?, c.u32()?));
                }
                Request::PeerForwardBatch { tag, items }
            }
            kind::HEALTH_PROBE => Request::HealthProbe,
            kind::STATS => Request::Stats,
            kind::SHUTDOWN => Request::Shutdown,
            other => return Err(proto_err(format!("unknown request kind {other:#04x}"))),
        };
        c.done()?;
        Ok(req)
    }
}

/// Node-to-client and node-to-node response frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Config push acknowledged; carries the node's (possibly
    /// unchanged) current epoch.
    EpochAck {
        /// The node's config epoch after processing the push.
        epoch: u64,
    },
    /// One lookup served by `tier` ([`TIER_LOCAL`] / [`TIER_PEER`] /
    /// [`TIER_ORIGIN`]).
    Served {
        /// Serving tier code.
        tier: u8,
    },
    /// Tier tally for one batch lookup; the four counts sum to the
    /// batch size.
    BatchServed {
        /// The tag of the `BatchLookup` this reply answers.
        tag: u32,
        /// Served from the node's own store.
        local: u64,
        /// Served by a peer's coordinated slice.
        peer: u64,
        /// Fell through to origin.
        origin: u64,
        /// Refused (only before provisioning).
        shed: u64,
    },
    /// Forward verdict ([`FWD_HIT`] / [`FWD_MISS`] / [`FWD_REFUSED`]).
    ForwardReply {
        /// Outcome code.
        outcome: u8,
    },
    /// Per-item verdicts for one `PeerForwardBatch`, in item order;
    /// `outcomes.len()` always equals the batch's item count.
    ForwardBatchReply {
        /// The tag of the batch this reply answers.
        tag: u32,
        /// One [`FWD_HIT`] / [`FWD_MISS`] / [`FWD_REFUSED`] per item.
        outcomes: Vec<u8>,
    },
    /// Handshake answer to `Hello`, carrying the node's protocol
    /// version; a version-mismatched `Hello` is answered `Refused`
    /// and the connection closed, so mixed-version clusters fail at
    /// connect time.
    HelloAck {
        /// The node's protocol version.
        version: u8,
    },
    /// Health probe answer.
    HealthAck {
        /// The node's config epoch (0 = not yet provisioned).
        epoch: u64,
    },
    /// Counter snapshot.
    StatsReply(NodeStatsSnapshot),
    /// Shutdown acknowledged.
    Bye,
    /// The node cannot serve the request (e.g. not yet provisioned).
    Refused {
        /// Human-readable reason.
        reason: String,
    },
}

impl Response {
    /// Serializes into a frame body (kind byte + payload).
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] if a field exceeds its wire width.
    pub fn encode(&self) -> Result<Vec<u8>, EngineError> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf)?;
        Ok(buf)
    }

    /// Serializes the frame body into caller scratch (appended).
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] if a field exceeds its wire width.
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), EngineError> {
        match self {
            Response::EpochAck { epoch } => {
                buf.push(kind::EPOCH_ACK);
                put_u64(buf, *epoch);
            }
            Response::Served { tier } => {
                buf.push(kind::SERVED);
                buf.push(*tier);
            }
            Response::BatchServed { tag, local, peer, origin, shed } => {
                buf.push(kind::BATCH_SERVED);
                put_u32(buf, *tag);
                put_u64(buf, *local);
                put_u64(buf, *peer);
                put_u64(buf, *origin);
                put_u64(buf, *shed);
            }
            Response::ForwardReply { outcome } => {
                buf.push(kind::FORWARD_REPLY);
                buf.push(*outcome);
            }
            Response::ForwardBatchReply { tag, outcomes } => {
                encode_forward_batch_reply_from(buf, *tag, outcomes)?;
            }
            Response::HelloAck { version } => {
                buf.push(kind::HELLO_ACK);
                buf.push(*version);
            }
            Response::HealthAck { epoch } => {
                buf.push(kind::HEALTH_ACK);
                put_u64(buf, *epoch);
            }
            Response::StatsReply(stats) => {
                buf.push(kind::STATS_REPLY);
                let fields = stats.fields();
                put_u32(buf, fields.len() as u32);
                for v in fields {
                    put_u64(buf, v);
                }
            }
            Response::Bye => buf.push(kind::BYE),
            Response::Refused { reason } => {
                buf.push(kind::REFUSED);
                put_str(buf, reason)?;
            }
        }
        Ok(())
    }

    /// Parses a frame body as a response.
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] for unknown kinds or truncated
    /// payloads.
    pub fn decode(body: &[u8]) -> Result<Self, EngineError> {
        let mut c = Cursor::new(body);
        let k = c.u8()?;
        let resp = match k {
            kind::EPOCH_ACK => Response::EpochAck { epoch: c.u64()? },
            kind::SERVED => Response::Served { tier: c.u8()? },
            kind::BATCH_SERVED => Response::BatchServed {
                tag: c.u32()?,
                local: c.u64()?,
                peer: c.u64()?,
                origin: c.u64()?,
                shed: c.u64()?,
            },
            kind::FORWARD_REPLY => Response::ForwardReply { outcome: c.u8()? },
            kind::FORWARD_BATCH_REPLY => {
                let tag = c.u32()?;
                let count = c.u32()? as usize;
                if count > MAX_FRAME as usize {
                    return Err(proto_err("outcome count exceeds frame capacity"));
                }
                Response::ForwardBatchReply { tag, outcomes: c.take(count)?.to_vec() }
            }
            kind::HELLO_ACK => Response::HelloAck { version: c.u8()? },
            kind::HEALTH_ACK => Response::HealthAck { epoch: c.u64()? },
            kind::STATS_REPLY => {
                let count = c.u32()? as usize;
                if count > 1024 {
                    return Err(proto_err("stats field count exceeds frame capacity"));
                }
                let mut fields = Vec::with_capacity(count);
                for _ in 0..count {
                    fields.push(c.u64()?);
                }
                Response::StatsReply(NodeStatsSnapshot::from_fields(&fields))
            }
            kind::BYE => Response::Bye,
            kind::REFUSED => Response::Refused { reason: c.str()? },
            other => return Err(proto_err(format!("unknown response kind {other:#04x}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// Hot-path codec (allocation-free)
// ---------------------------------------------------------------------------
//
// The enum codecs above stay the canonical, proptested definition of
// the wire format. The hot path — pipelined batch lookups and batched
// peer forwards — encodes from and decodes into caller-owned scratch
// with these helpers, which write/read byte-identical frames (proven
// by `fast_path_codecs_match_enum_codecs`).

fn encode_batch_lookup_from(
    buf: &mut Vec<u8>,
    tag: u32,
    contents: &[u64],
) -> Result<(), EngineError> {
    buf.push(kind::BATCH_LOOKUP);
    put_u32(buf, tag);
    let count = u32::try_from(contents.len()).map_err(|_| proto_err("batch exceeds u32 count"))?;
    put_u32(buf, count);
    for &c in contents {
        put_u64(buf, c);
    }
    Ok(())
}

fn decode_batch_lookup_into(body: &[u8], contents: &mut Vec<u64>) -> Result<u32, EngineError> {
    let mut c = Cursor::new(body);
    let k = c.u8()?;
    if k != kind::BATCH_LOOKUP {
        return Err(proto_err(format!("expected BatchLookup, got kind {k:#04x}")));
    }
    let tag = c.u32()?;
    let count = c.u32()? as usize;
    if count > MAX_FRAME as usize / 8 {
        return Err(proto_err("batch count exceeds frame capacity"));
    }
    contents.clear();
    contents.reserve(count);
    for _ in 0..count {
        contents.push(c.u64()?);
    }
    c.done()?;
    Ok(tag)
}

/// Decodes a `BatchServed` body as `(tag, local, peer, origin, shed)`.
fn decode_batch_served(body: &[u8]) -> Result<(u32, u64, u64, u64, u64), EngineError> {
    let mut c = Cursor::new(body);
    let k = c.u8()?;
    if k != kind::BATCH_SERVED {
        return Err(proto_err(format!("expected BatchServed, got kind {k:#04x}")));
    }
    let out = (c.u32()?, c.u64()?, c.u64()?, c.u64()?, c.u64()?);
    c.done()?;
    Ok(out)
}

fn encode_forward_batch_from(
    buf: &mut Vec<u8>,
    tag: u32,
    items: &[(u64, u32)],
) -> Result<(), EngineError> {
    buf.push(kind::PEER_FORWARD_BATCH);
    put_u32(buf, tag);
    let count =
        u32::try_from(items.len()).map_err(|_| proto_err("forward batch exceeds u32 count"))?;
    put_u32(buf, count);
    for &(content, budget_us) in items {
        put_u64(buf, content);
        put_u32(buf, budget_us);
    }
    Ok(())
}

fn decode_forward_batch_into(body: &[u8], items: &mut Vec<(u64, u32)>) -> Result<u32, EngineError> {
    let mut c = Cursor::new(body);
    let k = c.u8()?;
    if k != kind::PEER_FORWARD_BATCH {
        return Err(proto_err(format!("expected PeerForwardBatch, got kind {k:#04x}")));
    }
    let tag = c.u32()?;
    let count = c.u32()? as usize;
    if count > MAX_FRAME as usize / 12 {
        return Err(proto_err("forward batch count exceeds frame capacity"));
    }
    items.clear();
    items.reserve(count);
    for _ in 0..count {
        items.push((c.u64()?, c.u32()?));
    }
    c.done()?;
    Ok(tag)
}

fn encode_forward_batch_reply_from(
    buf: &mut Vec<u8>,
    tag: u32,
    outcomes: &[u8],
) -> Result<(), EngineError> {
    buf.push(kind::FORWARD_BATCH_REPLY);
    put_u32(buf, tag);
    let count = u32::try_from(outcomes.len()).map_err(|_| proto_err("reply exceeds u32 count"))?;
    put_u32(buf, count);
    buf.extend_from_slice(outcomes);
    Ok(())
}

/// Parses a `ForwardBatchReply` body as `(tag, outcomes)` without
/// copying the outcome bytes out of the receive buffer.
fn parse_forward_batch_reply(body: &[u8]) -> Result<(u32, &[u8]), EngineError> {
    let mut c = Cursor::new(body);
    let k = c.u8()?;
    if k != kind::FORWARD_BATCH_REPLY {
        return Err(proto_err(format!("expected ForwardBatchReply, got kind {k:#04x}")));
    }
    let tag = c.u32()?;
    let count = c.u32()? as usize;
    let outcomes = c.take(count)?;
    c.done()?;
    Ok((tag, outcomes))
}

// ---------------------------------------------------------------------------
// Node-side counters
// ---------------------------------------------------------------------------

macro_rules! node_stats {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        #[derive(Default)]
        struct NodeStats {
            $($field: AtomicU64,)+
        }

        /// Plain snapshot of a node's counters, carried in
        /// `StatsReply` frames. Field order is the wire order; a
        /// shorter reply decodes with the missing tail fields zero, so
        /// the snapshot can grow without breaking older peers.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub struct NodeStatsSnapshot {
            $($(#[$doc])* pub $field: u64,)+
        }

        impl NodeStats {
            fn snapshot(&self) -> NodeStatsSnapshot {
                NodeStatsSnapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }
        }

        impl NodeStatsSnapshot {
            fn fields(&self) -> Vec<u64> {
                vec![$(self.$field,)+]
            }

            fn from_fields(fields: &[u64]) -> Self {
                let mut it = fields.iter().copied();
                Self {
                    $($field: it.next().unwrap_or(0),)+
                }
            }
        }
    };
}

node_stats! {
    /// Client lookups offered to this node (single + batched).
    lookups,
    /// Lookups served from this node's own store.
    local,
    /// Lookups served by a peer's coordinated slice over the wire.
    peer,
    /// Lookups that fell through to origin.
    origin,
    /// Lookups refused because the node was not yet provisioned.
    shed,
    /// Peer-forward frames this node answered as holder.
    forwards_in,
    /// Forwards answered as holder hits.
    forward_hits,
    /// Forwards answered as holder misses.
    forward_misses,
    /// Peer-forward frames this node sent as client edge.
    forwards_out,
    /// Forward retries after a holder refused (backpressure).
    retried,
    /// Lookups routed to a rendezvous survivor instead of the primary.
    failed_over,
    /// Forwards abandoned because the deadline expired on the socket.
    deadline_expired,
    /// Forwards degraded to origin by socket failure or retry
    /// exhaustion.
    degraded,
    /// Peers this node marked down after consecutive socket failures.
    marked_down,
    /// Down peers restored by the background health prober.
    revived,
    /// Config epochs accepted (strictly newer than the current one).
    epochs_accepted,
    /// Connections accepted by the listener.
    connections,
    /// Completed forward round-trips with a measured RTT.
    rtt_count,
    /// Sum of measured forward RTTs, microseconds.
    rtt_sum_us,
    /// Minimum measured forward RTT, microseconds (0 if none).
    rtt_min_us,
    /// Maximum measured forward RTT, microseconds.
    rtt_max_us,
    /// The node's config epoch at snapshot time.
    epoch,
    /// `f64::to_bits` of the fitted Zipf exponent carried by the last
    /// accepted provisioning push (0 = static provisioning / no fit).
    /// Sits after `epoch` so an older peer's shorter reply still
    /// decodes with this tail field zero.
    fitted_s_bits,
    /// Frames received on the node's peer links (tail fields: absent
    /// in pre-pipelining replies, decode as zero).
    frames_in,
    /// Frames sent on the node's peer links.
    frames_out,
    /// Bytes received on the node's peer links.
    bytes_in,
    /// Bytes sent on the node's peer links.
    bytes_out,
    /// Coalesced `PeerForwardBatch` frames sent (each covers ≥ 1
    /// forwarded miss; `forwards_out / forward_batches` is the
    /// realized coalescing factor).
    forward_batches,
    /// Connections refused by the accept-loop cap.
    rejected_conns,
}

impl NodeStats {
    fn add(&self, field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    fn record_rtt(&self, rtt: Duration) {
        let us = u64::try_from(rtt.as_micros()).unwrap_or(u64::MAX);
        self.rtt_count.fetch_add(1, Ordering::Relaxed);
        self.rtt_sum_us.fetch_add(us, Ordering::Relaxed);
        self.rtt_min_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(if cur == 0 { us } else { cur.min(us) })
            })
            .ok();
        self.rtt_max_us.fetch_max(us, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Peer links (client side of the forward path)
// ---------------------------------------------------------------------------

/// Driver-local outcome codes for forwarded items whose round-trip
/// never completed. Never sent on the wire — the wire verdict space
/// is [`FWD_HIT`] / [`FWD_MISS`] / [`FWD_REFUSED`] — so they sit at
/// the top of the byte range.
const OUT_TIMEOUT: u8 = 0xFE;
/// See [`OUT_TIMEOUT`]: socket failure (refused, reset, desync).
const OUT_BROKEN: u8 = 0xFF;

fn resolve(addr: &str) -> Result<SocketAddr, EngineError> {
    addr.to_socket_addrs()
        .map_err(|e| net_err("resolve", format!("{addr}: {e}")))?
        .next()
        .ok_or_else(|| net_err("resolve", format!("{addr}: no addresses")))
}

/// Floor for connect/read timeouts so a zero remaining budget still
/// maps to a valid socket timeout (`set_read_timeout` rejects zero).
const MIN_SOCKET_TIMEOUT: Duration = Duration::from_micros(50);

/// Dials `addr` and completes the version handshake: `Hello` out,
/// `HelloAck` back. A mismatched or refused handshake is a hard error
/// — mixed-version clusters fail at connect time, not mid-stream.
fn connect_hello(
    addr: &str,
    my_id: u32,
    timeout: Duration,
    meter: Option<Arc<WireMeter>>,
) -> Result<Conn, EngineError> {
    let sockaddr = resolve(addr)?;
    let timeout = timeout.max(MIN_SOCKET_TIMEOUT);
    let stream =
        TcpStream::connect_timeout(&sockaddr, timeout).map_err(|e| net_io_err("connect", &e))?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(timeout)).map_err(|e| net_io_err("connect", &e))?;
    let mut conn = Conn::new(stream, meter);
    conn.send_request(&Request::Hello { node: my_id, version: PROTOCOL_VERSION })?;
    match conn.recv_response()? {
        Response::HelloAck { version: PROTOCOL_VERSION } => Ok(conn),
        Response::HelloAck { version } => Err(proto_err(format!(
            "protocol version mismatch: peer speaks v{version}, we speak v{PROTOCOL_VERSION}"
        ))),
        Response::Refused { reason } => Err(proto_err(format!("peer refused hello: {reason}"))),
        other => Err(proto_err(format!("unexpected hello answer {other:?}"))),
    }
}

/// Wraps an `io::Error`, classifying timeouts from its *kind*: Linux
/// reports a socket read timeout as `WouldBlock` ("Resource
/// temporarily unavailable"), other platforms as `TimedOut` — the
/// display string is not portable, the kind is.
fn net_io_err(op: &str, e: &io::Error) -> EngineError {
    let timeout = matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut);
    EngineError::Net { op: op.to_owned(), detail: e.to_string(), timeout }
}

/// Fails every not-yet-drained outcome slot from `from` on.
fn mark_from(outcomes: &mut [u8], from: usize, code: u8) {
    let from = from.min(outcomes.len());
    for o in &mut outcomes[from..] {
        *o = code;
    }
}

/// One outbound connection to a peer node, lazily established and
/// dropped on any failure (a timed-out stream may deliver a late
/// reply, which would desynchronize the framing — never reuse it).
/// The health prober uses its own persistent connection so probes
/// never interleave with forward framing.
struct PeerLink {
    node: usize,
    addr: String,
    conn: Mutex<Option<Conn>>,
    probe: Mutex<Option<Conn>>,
    failures: AtomicU32,
    next_tag: AtomicU32,
    meter: Arc<WireMeter>,
}

impl PeerLink {
    fn new(node: usize, addr: String, meter: Arc<WireMeter>) -> Self {
        Self {
            node,
            addr,
            conn: Mutex::new(None),
            probe: Mutex::new(None),
            failures: AtomicU32::new(0),
            next_tag: AtomicU32::new(0),
            meter,
        }
    }

    /// Forwards a burst of same-holder misses: `items` chunked into
    /// `PeerForwardBatch` frames of at most `max_per_frame` items,
    /// up to `window` tagged frames in flight, replies drained FIFO
    /// under the remaining `budget`. Fills one verdict per item into
    /// `outcomes` ([`FWD_HIT`] / [`FWD_MISS`] / [`FWD_REFUSED`] /
    /// [`OUT_TIMEOUT`] / [`OUT_BROKEN`]) and returns the number of
    /// frames sent. Any transport failure or tag desync fails the
    /// un-drained tail and drops the connection.
    fn forward_batch(
        &self,
        my_id: u32,
        items: &[(u64, u32)],
        budget: Duration,
        window: usize,
        max_per_frame: usize,
        outcomes: &mut Vec<u8>,
    ) -> u64 {
        outcomes.clear();
        outcomes.resize(items.len(), OUT_BROKEN);
        if items.is_empty() {
            return 0;
        }
        let budget = budget.max(MIN_SOCKET_TIMEOUT);
        let issued = Instant::now();
        let mut guard = lock_recover(&self.conn);
        if guard.is_none() {
            match connect_hello(&self.addr, my_id, budget, Some(self.meter.clone())) {
                Ok(c) => *guard = Some(c),
                Err(e) => {
                    let code = if is_timeout(&e) { OUT_TIMEOUT } else { OUT_BROKEN };
                    mark_from(outcomes, 0, code);
                    return 0;
                }
            }
        }
        let max_per_frame = max_per_frame.max(1);
        let chunks = items.len().div_ceil(max_per_frame);
        let base_tag =
            self.next_tag.fetch_add(u32::try_from(chunks).unwrap_or(u32::MAX), Ordering::Relaxed);
        let mut frames_sent = 0u64;
        let conn = guard.as_mut().expect("connection just established");
        let keep = pump_forward_batch(
            conn,
            base_tag,
            items,
            budget,
            issued,
            window.max(1),
            max_per_frame,
            outcomes,
            &mut frames_sent,
        );
        if !keep {
            *guard = None;
        }
        frames_sent
    }

    /// Health probe on a persistent dedicated connection (never the
    /// forward stream, whose framing a probe could interleave with),
    /// lazily redialled after any failure — a healthy peer costs one
    /// dial total instead of one per probe.
    fn probe_health(&self, my_id: u32) -> Option<u64> {
        let mut guard = lock_recover(&self.probe);
        if guard.is_none() {
            *guard = connect_hello(&self.addr, my_id, Duration::from_millis(100), None).ok();
        }
        let conn = guard.as_mut()?;
        let result = conn.send_request(&Request::HealthProbe).and_then(|()| conn.recv_response());
        match result {
            Ok(Response::HealthAck { epoch }) => Some(epoch),
            _ => {
                *guard = None;
                None
            }
        }
    }
}

/// The send/drain pump of [`PeerLink::forward_batch`], split out so
/// the caller can drop the connection when it returns `false`.
#[allow(clippy::too_many_arguments)]
fn pump_forward_batch(
    conn: &mut Conn,
    base_tag: u32,
    items: &[(u64, u32)],
    budget: Duration,
    issued: Instant,
    window: usize,
    max_per_frame: usize,
    outcomes: &mut [u8],
    frames_sent: &mut u64,
) -> bool {
    let chunks = items.len().div_ceil(max_per_frame);
    let mut sent = 0usize;
    let mut drained = 0usize;
    while drained < chunks {
        // Top up the credit window.
        while sent < chunks && sent - drained < window {
            let start = sent * max_per_frame;
            let end = (start + max_per_frame).min(items.len());
            let tag = base_tag.wrapping_add(sent as u32);
            if conn.send(|buf| encode_forward_batch_from(buf, tag, &items[start..end])).is_err() {
                mark_from(outcomes, drained * max_per_frame, OUT_BROKEN);
                return false;
            }
            *frames_sent += 1;
            sent += 1;
        }
        if let Some(m) = &conn.meter {
            m.window(sent - drained);
        }
        // Drain the oldest outstanding frame under what's left of the
        // budget.
        let remaining = budget.saturating_sub(issued.elapsed());
        if remaining.is_zero() {
            mark_from(outcomes, drained * max_per_frame, OUT_TIMEOUT);
            return false;
        }
        if conn.set_read_timeout(remaining).is_err() {
            mark_from(outcomes, drained * max_per_frame, OUT_BROKEN);
            return false;
        }
        let code = match conn.recv_len() {
            Ok(Some(_)) => None,
            Ok(None) => Some(OUT_BROKEN),
            Err(e) if is_timeout(&e) => Some(OUT_TIMEOUT),
            Err(_) => Some(OUT_BROKEN),
        };
        if let Some(code) = code {
            mark_from(outcomes, drained * max_per_frame, code);
            return false;
        }
        let start = drained * max_per_frame;
        let end = (start + max_per_frame).min(items.len());
        let want = base_tag.wrapping_add(drained as u32);
        match parse_forward_batch_reply(conn.last_frame()) {
            Ok((tag, verdicts)) if tag == want && verdicts.len() == end - start => {
                outcomes[start..end].copy_from_slice(verdicts);
                drained += 1;
            }
            // A stale tag, short reply, or any other frame means the
            // stream is desynchronized: fail the tail, drop the
            // connection.
            _ => {
                mark_from(outcomes, start, OUT_BROKEN);
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Node server
// ---------------------------------------------------------------------------

/// Static configuration of one wire node process.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id within the cluster (validated against the
    /// provisioned `nodes` at config-epoch time).
    pub id: usize,
    /// Listen address; `127.0.0.1:0` picks an ephemeral port, the
    /// bound address is reported by [`NodeServer::local_addr`].
    pub listen: String,
    /// Store shards (one pinned single-writer worker each).
    pub shards: usize,
    /// Per-shard ring capacity.
    pub queue_capacity: usize,
    /// Worker idle strategy.
    pub idle: IdleStrategy,
    /// Requested ring mode; resolved by [`wire_ring_mode`] — the wire
    /// listener forces MPSC (see module docs, *Ring discipline*).
    pub ring_mode: RingMode,
    /// Core placement for shard workers.
    pub placement: ShardPlacement,
    /// Degradation-ladder knobs for the forward path.
    pub degrade: DegradeConfig,
    /// Credit window: tagged frames in flight per node→peer forward
    /// connection (1 = stop-and-wait).
    pub window: usize,
    /// Maximum items coalesced into one `PeerForwardBatch` frame.
    pub wire_batch: usize,
    /// Accept-loop connection cap: excess accepts are answered with a
    /// typed `Refused` frame and dropped instead of spawning a serve
    /// thread.
    pub max_connections: usize,
}

impl NodeConfig {
    /// Defaults for node `id`: one shard, 1024-slot rings, ephemeral
    /// loopback listener, default degradation ladder, no pinning,
    /// window 8 × 64-item forward batches, 1024-connection cap.
    #[must_use]
    pub fn new(id: usize) -> Self {
        Self {
            id,
            listen: "127.0.0.1:0".to_owned(),
            shards: 1,
            queue_capacity: 1024,
            idle: IdleStrategy::spin_then_park(),
            ring_mode: RingMode::Auto,
            placement: ShardPlacement::disabled(),
            degrade: DegradeConfig::default(),
            window: 8,
            wire_batch: 64,
            max_connections: 1024,
        }
    }
}

/// Resolves the requested ring mode for a node with the wire listener
/// enabled: remote producers (accepted connections) register after
/// any census seal, so `Auto` must not be allowed to demote to SPSC —
/// it resolves to MPSC — and explicit `Spsc` is rejected outright.
///
/// # Errors
///
/// [`EngineError::InvalidConfig`] for `Spsc`.
pub fn wire_ring_mode(requested: RingMode) -> Result<RingMode, EngineError> {
    match requested {
        RingMode::Auto | RingMode::Mpsc => Ok(RingMode::Mpsc),
        RingMode::Spsc => Err(EngineError::InvalidConfig {
            reason: "wire listener admits remote producers after the census seals; \
                     SPSC rings are not allowed on a node with the listener enabled"
                .into(),
        }),
    }
}

/// A provisioned node's runtime: store, routing view, and peer links,
/// swapped atomically as one unit at each accepted config epoch.
struct NodeEngine {
    provision: Provision,
    store: Arc<ShardedStore<()>>,
    handle: crate::shard::ShardHandle<()>,
    routing: LiveRouting,
    peers: Vec<Option<PeerLink>>,
    /// Producer lanes registered on `handle` for accepted
    /// connections, carried across same-layout epoch swaps so a
    /// re-provision registers only the *delta* — never the whole
    /// connection census again. Mutated under the `NodeShared::engine`
    /// read lock (accept path); read under the write lock
    /// ([`provision_node`]), so the delta is exact.
    lanes: AtomicU64,
}

struct NodeShared {
    config: NodeConfig,
    engine: RwLock<Option<Arc<NodeEngine>>>,
    epoch: AtomicU64,
    stats: NodeStats,
    shutdown: AtomicBool,
    /// Frame/byte meter shared by every accepted connection and peer
    /// link; folded into `stats` by [`sync_wire_stats`].
    meter: Arc<WireMeter>,
    /// Live (not yet closed) accepted connections, gating the accept
    /// loop's connection cap. Distinct from `stats.connections`, which
    /// is the monotone census the producer-lane registration tracks.
    active_conns: AtomicUsize,
}

impl NodeShared {
    fn current_engine(&self) -> Option<Arc<NodeEngine>> {
        self.engine.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }
}

fn make_node_store(
    p: &Provision,
    my_slice: Option<&SliceAssignment>,
    shards: usize,
    shard: usize,
) -> Box<dyn ContentStore> {
    match p.policy {
        StorePolicy::Provisioned => {
            let (start, end) = my_slice.map_or((0, 0), |s| (s.start, s.end));
            let pinned = (1..=p.prefix)
                .chain(start..end)
                .map(ContentId)
                .filter(|&c| shard_of(c, shards) == shard);
            Box::new(StaticStore::new(pinned))
        }
        StorePolicy::Lru => {
            let base = p.capacity / shards as u64;
            let extra = u64::from((shard as u64) < p.capacity % shards as u64);
            #[allow(clippy::cast_possible_truncation)]
            let capacity = ((base + extra).max(1)) as usize;
            Box::new(LruStore::new(capacity))
        }
    }
}

fn build_store(
    config: &NodeConfig,
    p: &Provision,
) -> Result<(Arc<ShardedStore<()>>, crate::shard::ShardHandle<()>), EngineError> {
    let shards = config.shards;
    let mode = wire_ring_mode(config.ring_mode)?;
    let mut spec = ShardSpec::new(shards, config.queue_capacity).idle(config.idle).ring_mode(mode);
    if config.placement.pin() {
        spec = spec.pin_cores(
            (0..shards).map(|s| Some(config.placement.worker_core(config.id, shards, s))).collect(),
        );
    }
    let my_slice = p.slices.iter().find(|s| s.node as usize == config.id);
    let store = ShardedStore::try_spawn_with(
        spec,
        |shard| make_node_store(p, my_slice, shards, shard),
        Arc::new(|_store: &mut dyn ContentStore, _job: ()| {}),
    )?;
    let handle = store.handle();
    Ok((Arc::new(store), handle))
}

fn provision_node(shared: &NodeShared, p: Provision) -> Result<u64, EngineError> {
    let mut guard = shared.engine.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    let current = shared.epoch.load(Ordering::Acquire);
    if p.epoch <= current {
        return Ok(current);
    }
    if shared.config.id >= p.nodes as usize {
        return Err(EngineError::InvalidConfig {
            reason: format!(
                "node id {} outside provisioned cluster of {} nodes",
                shared.config.id, p.nodes
            ),
        });
    }
    let assignments: Vec<ccn_coord::RouterAssignment> = p
        .slices
        .iter()
        .map(|s| ccn_coord::RouterAssignment {
            router: s.node as usize,
            local_prefix: p.prefix,
            slice: s.start..s.end,
        })
        .collect();
    let table = RoutingTable::from_assignments(&assignments, p.nodes as usize)?;
    // An epoch with an identical store layout (the common case:
    // re-provisioning survivors after a revival changed only peer
    // addresses) keeps the store, preserving cache warmth; a layout
    // change rebuilds it.
    let (store, handle, lanes) = match guard.as_ref() {
        Some(old) if old.provision.same_layout(&p) => {
            (old.store.clone(), old.handle.clone(), old.lanes.load(Ordering::Relaxed))
        }
        _ => {
            let (store, handle) = build_store(&shared.config, &p)?;
            (store, handle, 0)
        }
    };
    // Keep the producer census honest: one lane per connection the
    // listener has already accepted (see module docs, *Ring
    // discipline* — under the forced-MPSC mode this is a no-op, but
    // it is the contract a future demotion-capable mode must honour).
    // A kept same-layout store already carries lanes for every
    // connection accepted so far, so only the delta (connections that
    // arrived before any engine existed) is registered — re-running
    // the full census here would overcount on each re-provision.
    let connections = shared.stats.connections.load(Ordering::Relaxed);
    for _ in lanes..connections {
        handle.register_producer()?;
    }
    let peers = (0..p.nodes as usize)
        .map(|n| {
            if n == shared.config.id {
                None
            } else {
                p.peers.get(n).map(|addr| PeerLink::new(n, addr.clone(), shared.meter.clone()))
            }
        })
        .collect();
    let engine = Arc::new(NodeEngine {
        routing: LiveRouting::new(table),
        provision: p.clone(),
        store,
        handle,
        peers,
        lanes: AtomicU64::new(connections.max(lanes)),
    });
    *guard = Some(engine);
    shared.epoch.store(p.epoch, Ordering::Release);
    shared.stats.add(&shared.stats.epochs_accepted);
    shared.stats.epoch.store(p.epoch, Ordering::Relaxed);
    shared.stats.fitted_s_bits.store(p.fitted_s.to_bits(), Ordering::Relaxed);
    Ok(p.epoch)
}

/// Marks `holder` down once the consecutive-failure streak crosses
/// the configured threshold, bumping the routing epoch so HRW
/// failover moves exactly that node's share. `failed_items` counts
/// items (not frames), matching the pre-batching per-forward streak
/// dynamics.
fn note_forward_failure(
    shared: &NodeShared,
    engine: &NodeEngine,
    holder: usize,
    failed_items: u64,
) {
    if shared.config.degrade.timeout_threshold == 0 || failed_items == 0 {
        return;
    }
    let Some(link) = engine.peers.get(holder).and_then(Option::as_ref) else {
        return;
    };
    let items = u32::try_from(failed_items).unwrap_or(u32::MAX);
    let streak = link.failures.fetch_add(items, Ordering::Relaxed).saturating_add(items);
    if streak >= shared.config.degrade.timeout_threshold
        && engine.routing.set_live(holder, false).is_some()
    {
        shared.stats.add(&shared.stats.marked_down);
    }
}

/// Per-connection reusable decode/serve scratch: a warm connection
/// serves batches end to end without allocating. `groups` is the
/// miss-coalescing hand-off shared with the in-process cluster.
#[derive(Default)]
struct ServeScratch {
    /// Decoded `BatchLookup` ranks.
    contents: Vec<u64>,
    /// Decoded `PeerForwardBatch` items.
    items: Vec<(u64, u32)>,
    /// Probe ids for `probe_batch`.
    ids: Vec<ContentId>,
    /// Probe verdicts.
    hits: Vec<bool>,
    /// Misses grouped by destination holder.
    groups: crate::cluster::HolderGroups,
    /// Item indices awaiting a verdict in the current retry round.
    pending: Vec<usize>,
    /// Item indices refused this round, retried next round.
    retry: Vec<usize>,
    /// `(content, budget_us)` items for the in-flight forward frames.
    fwd_items: Vec<(u64, u32)>,
    /// Per-item verdict bytes (forward replies in, serve replies out).
    outcomes: Vec<u8>,
}

/// Serves one batch of client lookups, returning `(local, peer,
/// origin)` tier counts (their sum is the batch size). Probes the
/// whole batch through the shard pipeline first, then coalesces the
/// misses by destination holder so a burst of misses to one peer
/// costs one pipelined frame conversation instead of one round-trip
/// per miss.
fn serve_batch(
    shared: &NodeShared,
    engine: &NodeEngine,
    scratch: &mut ServeScratch,
) -> (u64, u64, u64) {
    let ServeScratch { contents, ids, hits, groups, pending, retry, fwd_items, outcomes, .. } =
        scratch;
    let stats = &shared.stats;
    stats.lookups.fetch_add(contents.len() as u64, Ordering::Relaxed);
    ids.clear();
    ids.extend(contents.iter().map(|&c| ContentId(c)));
    engine.handle.probe_batch(ids, hits);
    let me = shared.config.id;
    let (mut local, mut peer, mut origin) = (0u64, 0u64, 0u64);
    groups.reset(engine.peers.len());
    for (i, &content) in contents.iter().enumerate() {
        let id = ContentId(content);
        if hits.get(i).copied().unwrap_or(false) {
            stats.add(&stats.local);
            local += 1;
            continue;
        }
        match engine.routing.holder(id) {
            Some(holder) if holder != me => {
                if engine.routing.primary(id) != Some(holder) {
                    stats.add(&stats.failed_over);
                }
                groups.push(holder, i);
            }
            _ => {
                // Uncoordinated content (or this node is the holder
                // and missed): origin serves; under LRU the edge
                // admits it, mirroring the in-process cluster.
                if engine.provision.policy == StorePolicy::Lru {
                    engine.handle.apply(id);
                }
                stats.add(&stats.origin);
                origin += 1;
            }
        }
    }
    for gi in 0..groups.occupied().len() {
        let holder = groups.occupied()[gi];
        let (p, o) = forward_group(
            shared,
            engine,
            holder,
            contents,
            groups.items(holder),
            pending,
            retry,
            fwd_items,
            outcomes,
        );
        peer += p;
        origin += o;
    }
    (local, peer, origin)
}

/// Runs the degradation ladder for one holder's coalesced miss group:
/// forward the whole group in pipelined batch frames, retry refused
/// items under backoff, degrade transport failures to origin, honour
/// the shared deadline. Returns `(peer, origin)` counts; every index
/// in `idxs` resolves to exactly one of the two.
#[allow(clippy::too_many_arguments)]
fn forward_group(
    shared: &NodeShared,
    engine: &NodeEngine,
    holder: usize,
    contents: &[u64],
    idxs: &[usize],
    pending: &mut Vec<usize>,
    retry: &mut Vec<usize>,
    fwd_items: &mut Vec<(u64, u32)>,
    outcomes: &mut Vec<u8>,
) -> (u64, u64) {
    let stats = &shared.stats;
    let Some(link) = engine.peers.get(holder).and_then(Option::as_ref) else {
        stats.degraded.fetch_add(idxs.len() as u64, Ordering::Relaxed);
        stats.origin.fetch_add(idxs.len() as u64, Ordering::Relaxed);
        return (0, idxs.len() as u64);
    };
    let me = shared.config.id as u32;
    let deadline = shared.config.degrade.forward_deadline;
    let issued = Instant::now();
    pending.clear();
    pending.extend_from_slice(idxs);
    let (mut peer, mut origin) = (0u64, 0u64);
    let mut attempt = 0u32;
    loop {
        let remaining = deadline.saturating_sub(issued.elapsed());
        if remaining.is_zero() {
            stats.deadline_expired.fetch_add(pending.len() as u64, Ordering::Relaxed);
            stats.origin.fetch_add(pending.len() as u64, Ordering::Relaxed);
            origin += pending.len() as u64;
            break;
        }
        stats.forwards_out.fetch_add(pending.len() as u64, Ordering::Relaxed);
        let budget_us = u32::try_from(remaining.as_micros()).unwrap_or(u32::MAX);
        fwd_items.clear();
        fwd_items.extend(pending.iter().map(|&i| (contents[i], budget_us)));
        let sent = Instant::now();
        let frames = link.forward_batch(
            me,
            fwd_items,
            remaining,
            shared.config.window,
            shared.config.wire_batch,
            outcomes,
        );
        stats.forward_batches.fetch_add(frames, Ordering::Relaxed);
        retry.clear();
        let mut answered = false;
        let mut failed_items = 0u64;
        for (k, &i) in pending.iter().enumerate() {
            match outcomes.get(k).copied().unwrap_or(OUT_BROKEN) {
                FWD_HIT => {
                    answered = true;
                    stats.add(&stats.peer);
                    peer += 1;
                }
                FWD_MISS => {
                    answered = true;
                    stats.add(&stats.origin);
                    origin += 1;
                }
                FWD_REFUSED => retry.push(i),
                OUT_TIMEOUT => {
                    failed_items += 1;
                    stats.add(&stats.deadline_expired);
                    stats.add(&stats.origin);
                    origin += 1;
                }
                _ => {
                    failed_items += 1;
                    stats.add(&stats.degraded);
                    stats.add(&stats.origin);
                    origin += 1;
                }
            }
        }
        if answered {
            link.failures.store(0, Ordering::Relaxed);
            stats.record_rtt(sent.elapsed());
        }
        note_forward_failure(shared, engine, holder, failed_items);
        if retry.is_empty() {
            break;
        }
        if attempt >= shared.config.degrade.forward_retries {
            stats.degraded.fetch_add(retry.len() as u64, Ordering::Relaxed);
            stats.origin.fetch_add(retry.len() as u64, Ordering::Relaxed);
            origin += retry.len() as u64;
            break;
        }
        attempt += 1;
        stats.retried.fetch_add(retry.len() as u64, Ordering::Relaxed);
        std::thread::sleep(shared.config.degrade.retry_backoff * attempt);
        std::mem::swap(pending, retry);
    }
    (peer, origin)
}

/// Serves one coalesced `PeerForwardBatch` as holder, filling one
/// verdict per item into `scratch.outcomes` — always the full item
/// count, so a partial serve is per-item verdicts, never a truncated
/// reply.
fn serve_forward_batch(shared: &NodeShared, engine: &NodeEngine, scratch: &mut ServeScratch) {
    let ServeScratch { items, ids, hits, outcomes, .. } = scratch;
    let stats = &shared.stats;
    stats.forwards_in.fetch_add(items.len() as u64, Ordering::Relaxed);
    ids.clear();
    ids.extend(items.iter().map(|&(c, _)| ContentId(c)));
    engine.handle.probe_batch(ids, hits);
    outcomes.clear();
    let (mut hit_n, mut miss_n) = (0u64, 0u64);
    for (i, &(content, _budget_us)) in items.iter().enumerate() {
        if hits.get(i).copied().unwrap_or(false) {
            hit_n += 1;
            outcomes.push(FWD_HIT);
        } else {
            // Holder miss: origin serves at the requesting edge;
            // under LRU the holder admits its coordinated content so
            // traffic attracts the slice into place.
            let id = ContentId(content);
            if engine.provision.policy == StorePolicy::Lru
                && engine.routing.holder(id) == Some(shared.config.id)
            {
                engine.handle.apply(id);
            }
            miss_n += 1;
            outcomes.push(FWD_MISS);
        }
    }
    stats.forward_hits.fetch_add(hit_n, Ordering::Relaxed);
    stats.forward_misses.fetch_add(miss_n, Ordering::Relaxed);
}

/// Copies the shared wire meter into the stats counters so a
/// `StatsReply` (and the final run snapshot) carries frame/byte
/// totals.
fn sync_wire_stats(shared: &NodeShared) {
    let m = &shared.meter;
    shared.stats.frames_in.store(m.frames_in.load(Ordering::Relaxed), Ordering::Relaxed);
    shared.stats.frames_out.store(m.frames_out.load(Ordering::Relaxed), Ordering::Relaxed);
    shared.stats.bytes_in.store(m.bytes_in.load(Ordering::Relaxed), Ordering::Relaxed);
    shared.stats.bytes_out.store(m.bytes_out.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// One router as a standalone wire-serving process (or thread, for
/// in-process tests): binds, then [`NodeServer::run`] serves until a
/// `Shutdown` frame arrives.
pub struct NodeServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<NodeShared>,
}

impl NodeServer {
    /// Binds the listener (validating the ring mode up front) without
    /// serving yet.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] for an SPSC ring mode,
    /// [`EngineError::Net`] if the bind fails.
    pub fn bind(config: NodeConfig) -> Result<Self, EngineError> {
        wire_ring_mode(config.ring_mode)?;
        if config.shards == 0 || config.queue_capacity == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "node needs at least one shard and a non-empty queue".into(),
            });
        }
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| net_err("bind", format!("{}: {e}", config.listen)))?;
        let local_addr = listener.local_addr().map_err(|e| net_io_err("bind", &e))?;
        listener.set_nonblocking(true).map_err(|e| net_io_err("bind", &e))?;
        let shared = Arc::new(NodeShared {
            config,
            engine: RwLock::new(None),
            epoch: AtomicU64::new(0),
            stats: NodeStats::default(),
            shutdown: AtomicBool::new(false),
            meter: Arc::new(WireMeter::default()),
            active_conns: AtomicUsize::new(0),
        });
        Ok(Self { listener, local_addr, shared })
    }

    /// The bound listen address (resolves `:0` to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests shutdown from another thread (tests); the serve loop
    /// notices within one accept-poll interval.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Serves until a `Shutdown` frame (or [`Self::request_shutdown`])
    /// stops the loop, then returns the final counter snapshot.
    ///
    /// # Errors
    ///
    /// [`EngineError::Net`] if the listener itself fails; per-
    /// connection failures only drop that connection.
    pub fn run(&self) -> Result<NodeStatsSnapshot, EngineError> {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            scope.spawn(|| health_prober(shared));
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // Connection cap first, before this connection
                        // touches the stats census or the producer
                        // lanes: a refused connection must not count —
                        // the lane registration would over-provision
                        // rings for a connection that never serves.
                        if shared.active_conns.load(Ordering::Relaxed)
                            >= shared.config.max_connections
                        {
                            shared.stats.add(&shared.stats.rejected_conns);
                            let mut conn = Conn::new(stream, None);
                            let _ = conn.send_response(&Response::Refused {
                                reason: format!(
                                    "connection cap {} reached",
                                    shared.config.max_connections
                                ),
                            });
                            continue;
                        }
                        // Count + pre-register this connection's
                        // producer lane (before any of its traffic
                        // reaches the rings) under the engine read
                        // lock: a concurrent config epoch holds the
                        // write lock, so it sees either both effects
                        // or neither and its census delta stays exact.
                        {
                            let guard = shared
                                .engine
                                .read()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            shared.stats.add(&shared.stats.connections);
                            shared.active_conns.fetch_add(1, Ordering::Relaxed);
                            if let Some(engine) = guard.as_ref() {
                                if engine.handle.register_producer().is_ok() {
                                    engine.lanes.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        scope.spawn(move || {
                            serve_conn(shared, stream);
                            shared.active_conns.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::Interrupted =>
                    {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => {
                        shared.shutdown.store(true, Ordering::Release);
                        return Err(net_io_err("accept", &e));
                    }
                }
            }
            Ok(())
        })?;
        shared.stats.epoch.store(shared.epoch.load(Ordering::Acquire), Ordering::Relaxed);
        sync_wire_stats(shared);
        Ok(shared.stats.snapshot())
    }
}

/// Background prober: pings peers this node has marked down and
/// restores them in the routing view when they answer again. This is
/// the wire tier's analogue of the in-process op-count probation —
/// wall-clock because a dead *process* produces no ops to count.
fn health_prober(shared: &NodeShared) {
    let my_id = shared.config.id as u32;
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(25));
        let Some(engine) = shared.current_engine() else {
            continue;
        };
        for link in engine.peers.iter().flatten() {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if engine.routing.is_live(link.node) {
                continue;
            }
            if link.probe_health(my_id).is_some() {
                link.failures.store(0, Ordering::Relaxed);
                if engine.routing.set_live(link.node, true).is_some() {
                    shared.stats.add(&shared.stats.revived);
                }
            }
        }
    }
}

/// Receives the next frame on `conn`, retrying idle timeouts until
/// shutdown; `Ok(true)` means a frame is ready in `conn.last_frame()`.
/// A timeout can only be treated as idle on a frame boundary; frames
/// are small enough (≤ [`MAX_FRAME`]) that a mid-frame stall means
/// the peer is gone and the connection is dropped by the caller.
fn recv_idle(conn: &mut Conn, shutdown: &AtomicBool) -> Result<bool, EngineError> {
    loop {
        match conn.recv_len() {
            Ok(Some(_)) => return Ok(true),
            Ok(None) => return Ok(false),
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// A malformed frame poisons the framing: answer `Refused` once, then
/// the caller drops the connection.
fn refuse_malformed(conn: &mut Conn, e: &EngineError) {
    let _ = conn.send_response(&Response::Refused { reason: e.to_string() });
}

fn serve_conn(shared: &NodeShared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut conn = Conn::new(stream, Some(shared.meter.clone()));
    let mut scratch = ServeScratch::default();
    loop {
        match recv_idle(&mut conn, &shared.shutdown) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        // The two hot frame kinds dispatch on the kind byte and decode
        // into connection scratch; everything else takes the enum
        // path.
        match conn.last_frame().first().copied() {
            Some(kind::BATCH_LOOKUP) => {
                let tag = match decode_batch_lookup_into(conn.last_frame(), &mut scratch.contents) {
                    Ok(tag) => tag,
                    Err(e) => return refuse_malformed(&mut conn, &e),
                };
                let (local, peer, origin, shed) = match shared.current_engine() {
                    Some(engine) => {
                        let (l, p, o) = serve_batch(shared, &engine, &mut scratch);
                        (l, p, o, 0)
                    }
                    None => {
                        let n = scratch.contents.len() as u64;
                        shared.stats.lookups.fetch_add(n, Ordering::Relaxed);
                        shared.stats.shed.fetch_add(n, Ordering::Relaxed);
                        (0, 0, 0, n)
                    }
                };
                let reply = Response::BatchServed { tag, local, peer, origin, shed };
                if conn.send_response(&reply).is_err() {
                    return;
                }
            }
            Some(kind::PEER_FORWARD_BATCH) => {
                let tag = match decode_forward_batch_into(conn.last_frame(), &mut scratch.items) {
                    Ok(tag) => tag,
                    Err(e) => return refuse_malformed(&mut conn, &e),
                };
                match shared.current_engine() {
                    Some(engine) => serve_forward_batch(shared, &engine, &mut scratch),
                    None => {
                        scratch.outcomes.clear();
                        scratch.outcomes.resize(scratch.items.len(), FWD_REFUSED);
                    }
                }
                let sent =
                    conn.send(|buf| encode_forward_batch_reply_from(buf, tag, &scratch.outcomes));
                if sent.is_err() {
                    return;
                }
            }
            _ => {
                let request = match Request::decode(conn.last_frame()) {
                    Ok(r) => r,
                    Err(e) => return refuse_malformed(&mut conn, &e),
                };
                let (response, close) = match handle_control(shared, request, &mut scratch) {
                    Ok((resp, close)) => (resp, close),
                    Err(e) => (Response::Refused { reason: e.to_string() }, false),
                };
                if conn.send_response(&response).is_err() || close {
                    return;
                }
            }
        }
    }
}

/// Handles the control-plane (non-hot-path) requests; returns the
/// reply and whether the connection must close afterwards.
fn handle_control(
    shared: &NodeShared,
    request: Request,
    scratch: &mut ServeScratch,
) -> Result<(Response, bool), EngineError> {
    let stats = &shared.stats;
    Ok(match request {
        Request::Hello { version, .. } => {
            // The producer lane was pre-registered at accept; the
            // preamble identifies the peer and gates the protocol
            // version — a mismatch closes the connection so mixed
            // clusters fail at the handshake.
            if version == PROTOCOL_VERSION {
                (Response::HelloAck { version: PROTOCOL_VERSION }, false)
            } else {
                (
                    Response::Refused {
                        reason: format!(
                            "protocol version mismatch: client speaks v{version}, \
                             node speaks v{PROTOCOL_VERSION}"
                        ),
                    },
                    true,
                )
            }
        }
        Request::ConfigEpoch(p) => {
            let epoch = provision_node(shared, p)?;
            (Response::EpochAck { epoch }, false)
        }
        Request::Lookup { content } => match shared.current_engine() {
            Some(engine) => {
                scratch.contents.clear();
                scratch.contents.push(content);
                let (local, peer, _) = serve_batch(shared, &engine, scratch);
                let tier = if local > 0 {
                    TIER_LOCAL
                } else if peer > 0 {
                    TIER_PEER
                } else {
                    TIER_ORIGIN
                };
                (Response::Served { tier }, false)
            }
            None => {
                stats.add(&stats.lookups);
                stats.add(&stats.shed);
                (Response::Refused { reason: "node not provisioned".into() }, false)
            }
        },
        // The batch kinds normally dispatch on the kind byte in
        // `serve_conn`; these arms keep the enum path equivalent.
        Request::BatchLookup { tag, contents } => {
            scratch.contents.clear();
            scratch.contents.extend_from_slice(&contents);
            match shared.current_engine() {
                Some(engine) => {
                    let (local, peer, origin) = serve_batch(shared, &engine, scratch);
                    (Response::BatchServed { tag, local, peer, origin, shed: 0 }, false)
                }
                None => {
                    let n = contents.len() as u64;
                    stats.lookups.fetch_add(n, Ordering::Relaxed);
                    stats.shed.fetch_add(n, Ordering::Relaxed);
                    (Response::BatchServed { tag, local: 0, peer: 0, origin: 0, shed: n }, false)
                }
            }
        }
        Request::PeerForward { content, .. } => {
            let Some(engine) = shared.current_engine() else {
                return Ok((Response::ForwardReply { outcome: FWD_REFUSED }, false));
            };
            stats.add(&stats.forwards_in);
            let id = ContentId(content);
            if engine.handle.probe(id) {
                stats.add(&stats.forward_hits);
                (Response::ForwardReply { outcome: FWD_HIT }, false)
            } else {
                // Holder miss: origin serves at the requesting edge;
                // under LRU the holder admits its coordinated content
                // so traffic attracts the slice into place.
                if engine.provision.policy == StorePolicy::Lru
                    && engine.routing.holder(id) == Some(shared.config.id)
                {
                    engine.handle.apply(id);
                }
                stats.add(&stats.forward_misses);
                (Response::ForwardReply { outcome: FWD_MISS }, false)
            }
        }
        Request::PeerForwardBatch { tag, items } => {
            scratch.items.clear();
            scratch.items.extend_from_slice(&items);
            match shared.current_engine() {
                Some(engine) => serve_forward_batch(shared, &engine, scratch),
                None => {
                    scratch.outcomes.clear();
                    scratch.outcomes.resize(scratch.items.len(), FWD_REFUSED);
                }
            }
            (Response::ForwardBatchReply { tag, outcomes: scratch.outcomes.clone() }, false)
        }
        Request::HealthProbe => {
            (Response::HealthAck { epoch: shared.epoch.load(Ordering::Acquire) }, false)
        }
        Request::Stats => {
            shared.stats.epoch.store(shared.epoch.load(Ordering::Acquire), Ordering::Relaxed);
            sync_wire_stats(shared);
            (Response::StatsReply(shared.stats.snapshot()), false)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            (Response::Bye, true)
        }
    })
}

// ---------------------------------------------------------------------------
// Coordinator / driver
// ---------------------------------------------------------------------------

/// How the driver brings up node serving loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeLaunch {
    /// Node servers run as threads inside the driver process —
    /// exercises the full wire path over loopback without child
    /// processes. Kill/revive faults are not available (a thread
    /// cannot be SIGKILLed).
    InProcess,
    /// Node servers run as `ccn node` child processes spawned from
    /// this executable path; kill faults SIGKILL the process.
    Exe(PathBuf),
}

/// One scheduled process-level fault, triggered when the cluster-wide
/// offered-request count crosses `at_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFault {
    /// Offered-op threshold that triggers the fault.
    pub at_op: u64,
    /// What happens.
    pub kind: WireFaultKind,
}

/// Process-level fault kinds for the wire driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFaultKind {
    /// SIGKILL node `n`'s process (no warning, no drain).
    Kill(usize),
    /// Respawn node `n` and re-provision the cluster under a bumped
    /// config epoch.
    Revive(usize),
}

impl std::fmt::Display for WireFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFaultKind::Kill(n) => write!(f, "kill:{n}"),
            WireFaultKind::Revive(n) => write!(f, "revive:{n}"),
        }
    }
}

/// Full specification of a wire-mode serving benchmark.
#[derive(Debug, Clone)]
pub struct WireSpec {
    /// Cluster size.
    pub nodes: usize,
    /// Store shards per node.
    pub shards_per_node: usize,
    /// Per-shard ring capacity.
    pub queue_capacity: usize,
    /// Catalogue size.
    pub catalogue: u64,
    /// Per-node store capacity `c`.
    pub capacity: u64,
    /// Coordinated fraction `ℓ = x/c`.
    pub ell: f64,
    /// Store population policy.
    pub policy: StorePolicy,
    /// Zipf exponent of the request stream.
    pub zipf_s: f64,
    /// Per-node client request rate, requests per millisecond.
    pub rate_per_node_per_ms: f64,
    /// Workload horizon, milliseconds.
    pub horizon_ms: f64,
    /// Pace requests to their Poisson arrival times (false = drive
    /// as fast as the wire allows).
    pub paced: bool,
    /// Workload seed — the driver draws the identical
    /// `zipf_irm(&[0..nodes], …)` stream as the in-process
    /// [`crate::load::OpenLoopConfig`] with one generator, so wire
    /// and in-process runs are comparable request-for-request.
    pub seed: u64,
    /// Requests per `BatchLookup` frame.
    pub batch: usize,
    /// Credit window: frames in flight per driver→node (and, via the
    /// node config, node→peer) connection. 1 = PR 8 stop-and-wait.
    pub window: usize,
    /// Max misses coalesced into one `PeerForwardBatch` frame on the
    /// node side.
    pub wire_batch: usize,
    /// Per-node accepted-connection cap (excess accepts are refused
    /// with a typed frame).
    pub max_conns: usize,
    /// Node worker idle strategy.
    pub idle: IdleStrategy,
    /// Requested ring mode (nodes resolve it via [`wire_ring_mode`]).
    pub ring_mode: RingMode,
    /// Core placement passed through to node processes.
    pub placement: ShardPlacement,
    /// Degradation-ladder knobs passed through to node processes.
    pub degrade: DegradeConfig,
    /// Scheduled kill/revive faults (requires [`NodeLaunch::Exe`]).
    pub faults: Vec<WireFault>,
    /// How node serving loops are brought up.
    pub launch: NodeLaunch,
    /// Run the adaptive-provisioning controller on the driver: sample
    /// offered ranks, re-fit the exponent, and stage budgeted config
    /// epochs to every live node ([`crate::control`]).
    pub adapt: Option<ControllerConfig>,
}

impl WireSpec {
    /// Defaults mirroring the in-process serve-bench smoke settings.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            shards_per_node: 1,
            queue_capacity: 1024,
            catalogue: 10_000,
            capacity: 100,
            ell: 0.5,
            policy: StorePolicy::Provisioned,
            zipf_s: 0.8,
            rate_per_node_per_ms: 0.5,
            horizon_ms: 1_000.0,
            paced: false,
            seed: 42,
            batch: 64,
            window: 8,
            wire_batch: 64,
            max_conns: 1024,
            idle: IdleStrategy::spin_then_park(),
            ring_mode: RingMode::Auto,
            placement: ShardPlacement::disabled(),
            degrade: DegradeConfig::default(),
            faults: Vec::new(),
            launch: NodeLaunch::InProcess,
            adapt: None,
        }
    }

    /// Coordinated slots per node, `x = round(ℓ·c)` — the identical
    /// rounding as [`crate::ClusterConfig::x`].
    #[must_use]
    pub fn x(&self) -> u64 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (self.ell * self.capacity as f64).round() as u64
        }
    }

    /// Local popularity prefix `c − x`.
    #[must_use]
    pub fn local_prefix(&self) -> u64 {
        self.capacity - self.x()
    }

    /// Builds the provisioning push for `epoch` with the given peer
    /// address list (one entry per node, indexed by id).
    #[must_use]
    pub fn provision(&self, epoch: u64, peers: Vec<String>) -> Provision {
        let x = self.x();
        let prefix = self.local_prefix();
        let slices = contiguous_slices(prefix, prefix + 1, x, self.nodes)
            .into_iter()
            .map(|a| SliceAssignment {
                node: a.router as u32,
                start: a.slice.start,
                end: a.slice.end,
            })
            .collect();
        Provision {
            epoch,
            nodes: self.nodes as u32,
            catalogue: self.catalogue,
            capacity: self.capacity,
            prefix,
            x,
            fitted_s: 0.0,
            policy: self.policy,
            slices,
            peers,
        }
    }

    fn validate(&self) -> Result<(), EngineError> {
        let invalid = |reason: String| Err(EngineError::InvalidConfig { reason });
        if self.nodes == 0 {
            return invalid("need at least one node".into());
        }
        if self.capacity == 0 {
            return invalid("need a non-zero store capacity".into());
        }
        if !(0.0..=1.0).contains(&self.ell) || self.ell.is_nan() {
            return invalid(format!("ell {} outside [0, 1]", self.ell));
        }
        if self.batch == 0 {
            return invalid("batch must be >= 1".into());
        }
        if self.window == 0 {
            return invalid("window must be >= 1 (1 = stop-and-wait)".into());
        }
        if self.wire_batch == 0 {
            return invalid("wire-batch must be >= 1".into());
        }
        if self.max_conns == 0 {
            return invalid("max-conns must be >= 1".into());
        }
        let coordinated_end = self.local_prefix() + self.nodes as u64 * self.x();
        if coordinated_end > self.catalogue {
            return invalid(format!(
                "catalogue {} too small for prefix + {} slices of x = {}",
                self.catalogue,
                self.nodes,
                self.x()
            ));
        }
        wire_ring_mode(self.ring_mode)?;
        if let Some(adapt) = &self.adapt {
            adapt.validate(self.nodes)?;
        }
        let mut dead = vec![false; self.nodes];
        let mut last_op = 0u64;
        for fault in &self.faults {
            if fault.at_op < last_op {
                return Err(EngineError::FaultSpec {
                    reason: "wire faults must be sorted by at_op".into(),
                });
            }
            last_op = fault.at_op;
            match fault.kind {
                WireFaultKind::Kill(n) => {
                    if n >= self.nodes {
                        return Err(EngineError::FaultSpec {
                            reason: format!("kill references node {n} of {}", self.nodes),
                        });
                    }
                    if dead[n] {
                        return Err(EngineError::FaultSpec {
                            reason: format!("node {n} killed twice without a revive"),
                        });
                    }
                    dead[n] = true;
                }
                WireFaultKind::Revive(n) => {
                    if n >= self.nodes {
                        return Err(EngineError::FaultSpec {
                            reason: format!("revive references node {n} of {}", self.nodes),
                        });
                    }
                    if !dead[n] {
                        return Err(EngineError::FaultSpec {
                            reason: format!("revive of node {n} without a prior kill"),
                        });
                    }
                    dead[n] = false;
                }
            }
        }
        if !self.faults.is_empty() && self.launch == NodeLaunch::InProcess {
            return Err(EngineError::FaultSpec {
                reason: "kill/revive faults need child processes (NodeLaunch::Exe); \
                         an in-process node thread cannot be SIGKILLed"
                    .into(),
            });
        }
        Ok(())
    }
}

/// Per-node driver-side tier ledger. `offered` counts every request
/// the driver issued for this node's clients; each lands in exactly
/// one of the other buckets, so `offered == completed() + shed`
/// bit-exactly by construction — including requests offered to a
/// SIGKILLed node, which are shed at the driver edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireLedger {
    /// Requests issued by this node's clients.
    pub offered: u64,
    /// Served from the node's own store.
    pub local: u64,
    /// Served by a peer's coordinated slice.
    pub peer: u64,
    /// Fell through to origin.
    pub origin: u64,
    /// Shed: offered to a dead or unreachable node.
    pub shed: u64,
}

impl WireLedger {
    /// Requests completed by some tier.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.local + self.peer + self.origin
    }

    /// Per-field difference `self − earlier` (saturating), for
    /// post-revival tail windows.
    #[must_use]
    pub fn since(&self, earlier: &WireLedger) -> WireLedger {
        WireLedger {
            offered: self.offered.saturating_sub(earlier.offered),
            local: self.local.saturating_sub(earlier.local),
            peer: self.peer.saturating_sub(earlier.peer),
            origin: self.origin.saturating_sub(earlier.origin),
            shed: self.shed.saturating_sub(earlier.shed),
        }
    }
}

#[derive(Default)]
struct LedgerCells {
    offered: AtomicU64,
    local: AtomicU64,
    peer: AtomicU64,
    origin: AtomicU64,
    shed: AtomicU64,
}

impl LedgerCells {
    fn snapshot(&self) -> WireLedger {
        WireLedger {
            offered: self.offered.load(Ordering::Relaxed),
            local: self.local.load(Ordering::Relaxed),
            peer: self.peer.load(Ordering::Relaxed),
            origin: self.origin.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// Driver-side wire-efficiency counters for one bench run, folded
/// from the drive-path connection meters. Epoch pushes and stats
/// collection use unmetered connections, so frames/op and bytes/op
/// measure the hot path alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePipelineStats {
    /// Configured credit window (frames in flight per connection).
    pub window: u64,
    /// Configured peer-forward coalescing cap.
    pub wire_batch: u64,
    /// High-water mark of frames actually in flight on any
    /// driver→node connection — ≤ `window`, and 1 when stop-and-wait.
    pub max_in_flight: u64,
    /// Frames the driver sent on the drive path.
    pub frames_out: u64,
    /// Frames the driver received on the drive path.
    pub frames_in: u64,
    /// Bytes the driver sent on the drive path.
    pub bytes_out: u64,
    /// Bytes the driver received on the drive path.
    pub bytes_in: u64,
}

impl WirePipelineStats {
    /// Wire frames (both directions) per offered request.
    #[must_use]
    pub fn frames_per_op(&self, offered: u64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if offered == 0 {
            0.0
        } else {
            (self.frames_out + self.frames_in) as f64 / offered as f64
        }
    }

    /// Wire bytes (both directions) per offered request.
    #[must_use]
    pub fn bytes_per_op(&self, offered: u64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        if offered == 0 {
            0.0
        } else {
            (self.bytes_out + self.bytes_in) as f64 / offered as f64
        }
    }
}

/// Results of one wire-mode benchmark run.
#[derive(Debug, Clone)]
pub struct WireOutcome {
    /// Cluster size.
    pub nodes: usize,
    /// Final config epoch (1 + one bump per revival).
    pub epoch: u64,
    /// Final listen address of every node.
    pub listen_addrs: Vec<String>,
    /// Per-node driver ledgers for the whole run.
    pub per_node: Vec<WireLedger>,
    /// Per-node ledgers counting only traffic after the last revival
    /// re-provision (present iff a revival happened) — the window the
    /// re-convergence acceptance check evaluates.
    pub tail_per_node: Option<Vec<WireLedger>>,
    /// Final node-side counter snapshots (None for a node that was
    /// dead at collection time).
    pub node_stats: Vec<Option<NodeStatsSnapshot>>,
    /// Applied faults, `"kill:1@2000"` style.
    pub fault_log: Vec<String>,
    /// Wall-clock duration of the driven phase, milliseconds.
    pub wall_ms: f64,
    /// Decision log and counters of the driver-side adaptive
    /// controller (present iff [`WireSpec::adapt`] was set).
    pub controller: Option<ControllerReport>,
    /// Driver-side wire-efficiency counters for the drive path.
    pub pipeline: WirePipelineStats,
}

impl WireOutcome {
    /// Total requests offered across all nodes.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.per_node.iter().map(|l| l.offered).sum()
    }

    /// Total requests completed by some tier.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.per_node.iter().map(WireLedger::completed).sum()
    }

    /// Total requests shed at the driver edge.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.per_node.iter().map(|l| l.shed).sum()
    }

    /// Verifies `offered == completed + shed`, per node and in total.
    ///
    /// # Errors
    ///
    /// [`EngineError::Accounting`] with the offending totals.
    pub fn check_conservation(&self) -> Result<(), EngineError> {
        for ledger in &self.per_node {
            if ledger.offered != ledger.completed() + ledger.shed {
                return Err(EngineError::Accounting {
                    offered: ledger.offered,
                    completed: ledger.completed(),
                    shed: ledger.shed,
                });
            }
        }
        Ok(())
    }

    /// `(local, peer, origin)` fractions of completed requests over
    /// the given ledgers (the whole run, or a tail window).
    #[must_use]
    pub fn tier_fractions(ledgers: &[WireLedger]) -> (f64, f64, f64) {
        let completed: u64 = ledgers.iter().map(WireLedger::completed).sum();
        if completed == 0 {
            return (0.0, 0.0, 0.0);
        }
        #[allow(clippy::cast_precision_loss)]
        let frac = |v: u64| v as f64 / completed as f64;
        (
            frac(ledgers.iter().map(|l| l.local).sum()),
            frac(ledgers.iter().map(|l| l.peer).sum()),
            frac(ledgers.iter().map(|l| l.origin).sum()),
        )
    }
}

enum RunningNode {
    Proc {
        child: Child,
        // Keeps the stdout pipe open so the child's final summary
        // print cannot fail with a broken pipe.
        _stdout: Option<io::BufReader<std::process::ChildStdout>>,
    },
    Thread {
        server: Arc<NodeServer>,
        join: std::thread::JoinHandle<Result<NodeStatsSnapshot, EngineError>>,
    },
}

struct NodeSlot {
    addr: String,
    generation: u64,
    alive: bool,
}

/// The coordinator's single epoch authority, shared between the
/// adaptive controller and the fault supervisor. Both issue config
/// epochs; every bump-and-push happens under this lock, so epoch
/// order equals layout order and a node applying the highest epoch it
/// saw holds the newest layout.
struct WireCtl {
    epoch: u64,
    /// The cumulative layout as of `epoch` — for an in-flight
    /// incremental chain, the sum of every step issued so far.
    assignments: Vec<RouterAssignment>,
    fitted_s: f64,
}

impl WireCtl {
    /// Builds the provisioning push for the current cumulative layout.
    /// This is also the revival path: a node that was SIGKILLed
    /// mid-chain and missed epochs receives the chain's *current*
    /// state under the newest epoch — the partial chain re-pushed as
    /// one frame.
    fn provision(&self, spec: &WireSpec, peers: Vec<String>) -> Provision {
        let prefix = self.assignments.first().map_or(0, |a| a.local_prefix);
        let x = self.assignments.iter().map(|a| a.slice.end - a.slice.start).max().unwrap_or(0);
        Provision {
            epoch: self.epoch,
            nodes: spec.nodes as u32,
            catalogue: spec.catalogue,
            capacity: spec.capacity,
            prefix,
            x,
            fitted_s: self.fitted_s,
            policy: spec.policy,
            slices: self
                .assignments
                .iter()
                .map(|a| SliceAssignment {
                    node: a.router as u32,
                    start: a.slice.start,
                    end: a.slice.end,
                })
                .collect(),
            peers,
        }
    }
}

/// Installs one controller chain step cluster-wide: bumps the epoch,
/// records the new cumulative layout, and pushes it to every node
/// whose slot is alive. A push to a node that died under the
/// supervisor's feet simply fails — the revival path re-pushes the
/// then-current layout. The [`WireCtl`] lock is held across the
/// pushes to serialize with revival provisioning.
fn push_wire_step(
    spec: &WireSpec,
    ctl: &Mutex<WireCtl>,
    slots: &[Mutex<NodeSlot>],
    step: &LayoutStep,
    fitted_s: Option<f64>,
) {
    let mut ctl = lock_recover(ctl);
    ctl.epoch += 1;
    ctl.assignments = step.assignments.clone();
    if let Some(s) = fitted_s {
        ctl.fitted_s = s;
    }
    let snapshot: Vec<(String, bool)> = slots
        .iter()
        .map(|slot| {
            let slot = lock_recover(slot);
            (slot.addr.clone(), slot.alive)
        })
        .collect();
    let push = ctl.provision(spec, snapshot.iter().map(|(addr, _)| addr.clone()).collect());
    for (addr, alive) in &snapshot {
        if *alive {
            let _ = push_epoch_to(addr, &push);
        }
    }
}

/// Driver-side node id carried in the `Hello` handshake — nodes key
/// peer links by id, so the driver uses a sentinel outside any
/// cluster's id range.
const DRIVER_ID: u32 = u32::MAX;

/// Dials a node as the driver: version handshake included, so a
/// mixed-version cluster is rejected at connect time on every
/// driver-side path (epoch pushes, the drive hot path, stats
/// collection), not just on peer links.
fn connect_driver(addr: &str, timeout: Duration) -> Result<Conn, EngineError> {
    connect_driver_metered(addr, timeout, None)
}

fn connect_driver_metered(
    addr: &str,
    timeout: Duration,
    meter: Option<Arc<WireMeter>>,
) -> Result<Conn, EngineError> {
    connect_hello(addr, DRIVER_ID, timeout, meter)
}

fn push_epoch_to(addr: &str, provision: &Provision) -> Result<(), EngineError> {
    let mut conn = connect_driver(addr, Duration::from_secs(5))?;
    conn.send_request(&Request::ConfigEpoch(provision.clone()))?;
    match conn.recv_response()? {
        Response::EpochAck { epoch } if epoch >= provision.epoch => Ok(()),
        Response::EpochAck { epoch } => Err(proto_err(format!(
            "node at {addr} acked epoch {epoch} after a push of {}",
            provision.epoch
        ))),
        Response::Refused { reason } => Err(proto_err(format!("epoch push refused: {reason}"))),
        other => Err(proto_err(format!("unexpected reply to epoch push: {other:?}"))),
    }
}

fn spawn_thread_node(spec: &WireSpec, id: usize) -> Result<(RunningNode, String), EngineError> {
    let mut config = NodeConfig::new(id);
    config.shards = spec.shards_per_node;
    config.queue_capacity = spec.queue_capacity;
    config.idle = spec.idle;
    config.ring_mode = spec.ring_mode;
    config.placement = spec.placement;
    config.degrade = spec.degrade;
    config.window = spec.window;
    config.wire_batch = spec.wire_batch;
    config.max_connections = spec.max_conns;
    let server = Arc::new(NodeServer::bind(config)?);
    let addr = server.local_addr().to_string();
    let runner = Arc::clone(&server);
    let join = std::thread::Builder::new()
        .name(format!("wire-node-{id}"))
        .spawn(move || runner.run())
        .map_err(|e| EngineError::Spawn { reason: e.to_string() })?;
    Ok((RunningNode::Thread { server, join }, addr))
}

/// How long the driver waits for a spawned node process to print its
/// `READY <addr>` line before giving up and killing it.
const READY_TIMEOUT: Duration = Duration::from_secs(15);

fn spawn_proc_node(
    exe: &PathBuf,
    spec: &WireSpec,
    id: usize,
) -> Result<(RunningNode, String), EngineError> {
    let mut cmd = Command::new(exe);
    cmd.arg("node")
        .args(["--id", &id.to_string()])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--shards", &spec.shards_per_node.to_string()])
        .args(["--queue", &spec.queue_capacity.to_string()])
        .args(["--idle", &spec.idle.name()])
        .args(["--ring-mode", spec.ring_mode.name()])
        .args(["--deadline-us", &spec.degrade.forward_deadline.as_micros().to_string()])
        .args(["--retries", &spec.degrade.forward_retries.to_string()])
        .args(["--backoff-us", &spec.degrade.retry_backoff.as_micros().to_string()])
        .args(["--timeout-threshold", &spec.degrade.timeout_threshold.to_string()])
        .args(["--window", &spec.window.to_string()])
        .args(["--wire-batch", &spec.wire_batch.to_string()])
        .args(["--max-conns", &spec.max_conns.to_string()]);
    if spec.placement.pin() {
        cmd.args(["--cores", &spec.placement.cores().to_string()]).args(["--pin", "true"]);
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
    let mut child = cmd.spawn().map_err(|e| net_err("spawn-node", e))?;
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(net_err("spawn-node", "child stdout was not piped"));
    };
    // Read the READY line on a helper thread so a child that starts
    // but never reports cannot hang the whole bench.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = io::BufReader::new(stdout);
        let mut line = String::new();
        let result = reader.read_line(&mut line);
        let _ = tx.send((result.map(|_| line), reader));
    });
    match rx.recv_timeout(READY_TIMEOUT) {
        Ok((Ok(line), reader)) => {
            let addr = line.trim().strip_prefix("READY ").map(str::to_owned).ok_or_else(|| {
                let _ = child.kill();
                let _ = child.wait();
                net_err(
                    "spawn-node",
                    format!("node {id} reported {:?}, expected READY", line.trim()),
                )
            })?;
            Ok((RunningNode::Proc { child, _stdout: Some(reader) }, addr))
        }
        Ok((Err(e), _)) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(net_err("spawn-node", format!("node {id} stdout failed: {e}")))
        }
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(net_err(
                "spawn-node",
                format!("node {id} did not report READY within {READY_TIMEOUT:?}"),
            ))
        }
    }
}

fn spawn_node(spec: &WireSpec, id: usize) -> Result<(RunningNode, String), EngineError> {
    match &spec.launch {
        NodeLaunch::InProcess => spawn_thread_node(spec, id),
        NodeLaunch::Exe(exe) => spawn_proc_node(exe, spec, id),
    }
}

/// Hard bring-up abort: kills child processes (dropping a `Child`
/// does *not* kill it — skipping this would orphan `ccn node`
/// processes that serve forever) and joins thread nodes.
fn teardown_nodes(running: Vec<Option<RunningNode>>) {
    for node in running.into_iter().flatten() {
        match node {
            RunningNode::Proc { mut child, .. } => {
                let _ = child.kill();
                let _ = child.wait();
            }
            RunningNode::Thread { server, join } => {
                server.request_shutdown();
                let _ = join.join();
            }
        }
    }
}

fn stop_node(running: RunningNode) -> Option<NodeStatsSnapshot> {
    match running {
        RunningNode::Proc { mut child, _stdout } => {
            let deadline = Instant::now() + Duration::from_secs(3);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => return None,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return None;
                    }
                }
            }
        }
        RunningNode::Thread { server, join } => {
            server.request_shutdown();
            join.join().ok().and_then(Result::ok)
        }
    }
}

fn pace(start: Instant, at_ms: f64) {
    let target = start + Duration::from_secs_f64(at_ms.max(0.0) / 1000.0);
    let now = Instant::now();
    if target > now {
        std::thread::sleep(target - now);
    }
}

/// Sheds every in-flight frame and drops the connection — the only
/// way the pipelined driver abandons a conversation. Each pending
/// frame's requests were already counted offered, and a connection we
/// no longer trust to be in sync will never answer them, so the whole
/// tail lands in `shed` — conservation stays exact by construction.
fn shed_conn(
    conn: &mut Option<(Conn, u64)>,
    pending: &mut VecDeque<(u32, u64)>,
    cells: &LedgerCells,
) {
    let lost: u64 = pending.iter().map(|&(_, n)| n).sum();
    if lost > 0 {
        cells.shed.fetch_add(lost, Ordering::Relaxed);
    }
    pending.clear();
    *conn = None;
}

/// Receives and tallies the oldest in-flight reply. The node answers
/// frames strictly in receipt order, so the front of `pending` names
/// the only acceptable tag; a different tag, a tally that does not
/// cover the frame, or any socket error is a desync — the caller
/// sheds the tail and drops the connection. Returns false on desync.
fn drain_one(conn: &mut Conn, pending: &mut VecDeque<(u32, u64)>, cells: &LedgerCells) -> bool {
    let Some(&(want, expected)) = pending.front() else { return true };
    if !matches!(conn.recv_len(), Ok(Some(_))) {
        return false;
    }
    let Ok((tag, local, peer, origin, shed)) = decode_batch_served(conn.last_frame()) else {
        return false;
    };
    if tag != want || local + peer + origin + shed != expected {
        return false;
    }
    cells.local.fetch_add(local, Ordering::Relaxed);
    cells.peer.fetch_add(peer, Ordering::Relaxed);
    cells.origin.fetch_add(origin, Ordering::Relaxed);
    cells.shed.fetch_add(shed, Ordering::Relaxed);
    pending.pop_front();
    true
}

#[allow(clippy::too_many_arguments)]
fn drive_node(
    spec: &WireSpec,
    id: usize,
    requests: &[(f64, u64)],
    slot: &Mutex<NodeSlot>,
    cells: &LedgerCells,
    total_offered: &AtomicU64,
    tap: Option<&RankTap>,
    meter: &Arc<WireMeter>,
    start: Instant,
) {
    // Generous driver-side read timeout: a batch is served
    // sequentially, so a slow-but-alive node may walk the whole retry
    // ladder for *every* request in the batch before its one reply —
    // the timeout must cover the worst-case batch, or legitimately
    // served batches get misaccounted as shed at the driver edge.
    let ladder = spec.degrade.forward_deadline * (spec.degrade.forward_retries + 1);
    let worst_batch = ladder
        .checked_mul(u32::try_from(spec.batch.max(1)).unwrap_or(u32::MAX))
        .unwrap_or(Duration::MAX);
    let timeout = worst_batch.saturating_add(Duration::from_secs(1)).max(Duration::from_secs(2));
    // Invariant: `pending` non-empty ⇒ `conn` is Some — shed_conn is
    // the only path that drops the connection and it clears the queue.
    let mut conn: Option<(Conn, u64)> = None;
    let mut pending: VecDeque<(u32, u64)> = VecDeque::with_capacity(spec.window);
    let mut contents: Vec<u64> = Vec::with_capacity(spec.batch);
    let mut next_tag: u32 = 0;
    let mut i = 0usize;
    while i < requests.len() {
        let end = (i + spec.batch).min(requests.len());
        let batch = &requests[i..end];
        i = end;
        if spec.paced {
            pace(start, batch[0].0);
        }
        let n = batch.len() as u64;
        cells.offered.fetch_add(n, Ordering::Relaxed);
        total_offered.fetch_add(n, Ordering::Relaxed);
        // Each node's driver thread is the single writer of its tap
        // lane, so the lock-free sampling contract holds on the wire
        // exactly as in-process. Ranks are recorded at offer time —
        // the controller observes demand, served or shed.
        if let Some(tap) = tap {
            for &(_, content) in batch {
                tap.record(id, ContentId(content));
            }
        }
        // Window full: drain the oldest reply before sending another
        // frame. In-order draining keeps the ledger identical to
        // stop-and-wait — every frame's tally lands exactly once, in
        // send order.
        while pending.len() >= spec.window {
            let Some((c, _)) = conn.as_mut() else { break };
            if !drain_one(c, &mut pending, cells) {
                shed_conn(&mut conn, &mut pending, cells);
            }
        }
        let (addr, generation, alive) = {
            let s = lock_recover(slot);
            (s.addr.clone(), s.generation, s.alive)
        };
        if !alive {
            shed_conn(&mut conn, &mut pending, cells);
            cells.shed.fetch_add(n, Ordering::Relaxed);
            continue;
        }
        if let Some((_, gen)) = &conn {
            if *gen != generation {
                // The node was replaced under us: frames in flight
                // belonged to the previous incarnation and will never
                // be answered.
                shed_conn(&mut conn, &mut pending, cells);
            }
        }
        if conn.is_none() {
            match connect_driver_metered(&addr, timeout, Some(Arc::clone(meter))) {
                Ok(c) => conn = Some((c, generation)),
                Err(_) => {
                    cells.shed.fetch_add(n, Ordering::Relaxed);
                    continue;
                }
            }
        }
        contents.clear();
        contents.extend(batch.iter().map(|&(_, c)| c));
        let tag = next_tag;
        next_tag = next_tag.wrapping_add(1);
        let (c, _) = conn.as_mut().expect("connected above");
        if c.send(|buf| encode_batch_lookup_from(buf, tag, &contents)).is_err() {
            shed_conn(&mut conn, &mut pending, cells);
            cells.shed.fetch_add(n, Ordering::Relaxed);
            continue;
        }
        pending.push_back((tag, n));
        meter.window(pending.len());
    }
    // Tail drain: every frame still in flight resolves to completed
    // (its reply arrives) or shed (the connection desyncs) — never
    // lost.
    while !pending.is_empty() {
        let Some((c, _)) = conn.as_mut() else { break };
        if !drain_one(c, &mut pending, cells) {
            shed_conn(&mut conn, &mut pending, cells);
        }
    }
    if let Some((conn, _)) = conn.take() {
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Runs a multi-process (or in-process multi-thread) wire-mode
/// serving benchmark: spawns the nodes, provisions them at epoch 1,
/// drives the per-node Zipf streams over TCP, applies the kill/revive
/// schedule, and folds the driver ledgers into a [`WireOutcome`]
/// whose conservation invariant has already been verified.
///
/// # Errors
///
/// [`EngineError::InvalidConfig`] / [`EngineError::FaultSpec`] for a
/// bad spec, [`EngineError::Workload`] for a bad stream,
/// [`EngineError::Net`] if bring-up fails, and
/// [`EngineError::Accounting`] if the conservation invariant breaks.
pub fn wire_bench(spec: &WireSpec) -> Result<WireOutcome, EngineError> {
    spec.validate()?;
    let tap = match &spec.adapt {
        Some(cfg) => Some(RankTap::new(spec.nodes, cfg.tap_capacity, cfg.sample_every)?),
        None => None,
    };
    let mut planner = match spec.adapt {
        Some(cfg) => {
            Some(Controller::new(spec.nodes, spec.catalogue, spec.capacity, spec.ell, cfg)?)
        }
        None => None,
    };
    let controller_report: Mutex<Option<ControllerReport>> = Mutex::new(None);
    let all: Vec<usize> = (0..spec.nodes).collect();
    let stream = workload::zipf_irm(
        &all,
        spec.zipf_s,
        spec.catalogue,
        spec.rate_per_node_per_ms,
        spec.horizon_ms,
        spec.seed,
    )?;
    let mut per_node_requests: Vec<Vec<(f64, u64)>> = vec![Vec::new(); spec.nodes];
    for request in stream {
        per_node_requests[request.router].push((request.time, request.content.0));
    }

    // Bring-up: spawn every node, tearing down the ones already up if
    // any spawn fails.
    let mut running: Vec<Option<RunningNode>> = Vec::with_capacity(spec.nodes);
    let mut addrs: Vec<String> = Vec::with_capacity(spec.nodes);
    for id in 0..spec.nodes {
        match spawn_node(spec, id) {
            Ok((node, addr)) => {
                running.push(Some(node));
                addrs.push(addr);
            }
            Err(e) => {
                teardown_nodes(running);
                return Err(e);
            }
        }
    }

    let initial = spec.provision(1, addrs.clone());
    for addr in &addrs {
        // A provisioning failure must tear down exactly like a spawn
        // failure, or already-spawned node processes are orphaned.
        if let Err(e) = push_epoch_to(addr, &initial) {
            teardown_nodes(running);
            return Err(e);
        }
    }
    // The epoch authority starts at the layout just provisioned —
    // identical to the controller's baseline (both derive the epoch-1
    // layout from `spec.ell` with the same rounding), so the first
    // chain step moves exactly what the planner computed.
    let ctl = Mutex::new(WireCtl {
        epoch: 1,
        assignments: initial
            .slices
            .iter()
            .map(|s| RouterAssignment {
                router: s.node as usize,
                local_prefix: initial.prefix,
                slice: s.start..s.end,
            })
            .collect(),
        fitted_s: 0.0,
    });

    let slots: Vec<Mutex<NodeSlot>> = addrs
        .iter()
        .map(|addr| Mutex::new(NodeSlot { addr: addr.clone(), generation: 0, alive: true }))
        .collect();
    let cells: Vec<LedgerCells> = (0..spec.nodes).map(|_| LedgerCells::default()).collect();
    let drive_meter = Arc::new(WireMeter::default());
    let total_offered = AtomicU64::new(0);
    let drivers_done = AtomicUsize::new(0);
    let mut fault_log: Vec<String> = Vec::new();
    let mut tail_base: Option<Vec<WireLedger>> = None;
    let start = Instant::now();

    std::thread::scope(|scope| {
        for (id, requests) in per_node_requests.iter().enumerate() {
            let slot = &slots[id];
            let node_cells = &cells[id];
            let total = &total_offered;
            let done = &drivers_done;
            let node_tap = tap.as_ref();
            let meter = &drive_meter;
            scope.spawn(move || {
                drive_node(spec, id, requests, slot, node_cells, total, node_tap, meter, start);
                done.fetch_add(1, Ordering::Release);
            });
        }

        // Adaptive controller: drain the tap, re-fit, and stage
        // budgeted epochs while the drivers run; once they finish,
        // drain any pending chain so the cluster lands on the final
        // layout before stats collection.
        if let Some(cfg) = spec.adapt {
            let mut planner = planner.take().expect("planner built for adaptive spec");
            let tap = tap.as_ref().expect("tap built for adaptive spec");
            let ctl = &ctl;
            let slots = &slots[..];
            let done_count = &drivers_done;
            let report_slot = &controller_report;
            scope.spawn(move || {
                let mut cursor = tap.cursor();
                let mut scratch: Vec<u64> = Vec::new();
                loop {
                    let done = done_count.load(Ordering::Acquire) == spec.nodes;
                    scratch.clear();
                    tap.drain(&mut cursor, &mut scratch);
                    planner.observe(&scratch);
                    match planner.plan() {
                        Ok(Some(step)) => {
                            push_wire_step(spec, ctl, slots, &step, planner.fitted());
                        }
                        Ok(None) => {}
                        Err(_) => break,
                    }
                    if done {
                        while planner.pending_steps() > 0 {
                            match planner.plan() {
                                Ok(Some(step)) => {
                                    push_wire_step(spec, ctl, slots, &step, planner.fitted());
                                }
                                _ => break,
                            }
                        }
                        break;
                    }
                    std::thread::sleep(cfg.tick_interval);
                }
                *lock_recover(report_slot) = Some(planner.report());
            });
        }

        // Supervisor (inline): replay the fault schedule against the
        // cluster-wide offered count.
        for fault in &spec.faults {
            while total_offered.load(Ordering::Relaxed) < fault.at_op {
                if drivers_done.load(Ordering::Acquire) == spec.nodes {
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            if drivers_done.load(Ordering::Acquire) == spec.nodes
                && total_offered.load(Ordering::Relaxed) < fault.at_op
            {
                fault_log.push(format!("{}@unreached", fault.kind));
                continue;
            }
            let fired_at = total_offered.load(Ordering::Relaxed);
            match fault.kind {
                WireFaultKind::Kill(n) => {
                    {
                        let mut slot = lock_recover(&slots[n]);
                        slot.alive = false;
                    }
                    if let Some(RunningNode::Proc { mut child, .. }) = running[n].take() {
                        // SIGKILL: no drain, no goodbye.
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    fault_log.push(format!("kill:{n}@{fired_at}"));
                }
                WireFaultKind::Revive(n) => match spawn_node(spec, n) {
                    Ok((node, addr)) => {
                        running[n] = Some(node);
                        addrs[n] = addr;
                        // Re-provision everyone under the coordinator's
                        // *current* cumulative layout — the controller
                        // may have issued chain epochs since the kill,
                        // and the revived node must not be resurrected
                        // onto a stale slice plan. The ctl lock is held
                        // across the pushes to serialize with
                        // concurrent controller epochs.
                        {
                            let mut ctl_guard = lock_recover(&ctl);
                            ctl_guard.epoch += 1;
                            let push = ctl_guard.provision(spec, addrs.clone());
                            for (m, addr) in addrs.iter().enumerate() {
                                let reachable = m == n || lock_recover(&slots[m]).alive;
                                if reachable {
                                    if let Err(e) = push_epoch_to(addr, &push) {
                                        fault_log
                                            .push(format!("epoch-push-failed:{m}@{fired_at}: {e}"));
                                    }
                                }
                            }
                        }
                        // The re-convergence window starts once the
                        // revived node is provisioned and addressable.
                        tail_base = Some(cells.iter().map(LedgerCells::snapshot).collect());
                        {
                            let mut slot = lock_recover(&slots[n]);
                            slot.addr = addrs[n].clone();
                            slot.generation += 1;
                            slot.alive = true;
                        }
                        fault_log.push(format!("revive:{n}@{fired_at}"));
                    }
                    Err(e) => {
                        fault_log.push(format!("revive-failed:{n}@{fired_at}: {e}"));
                    }
                },
            }
        }
    });
    #[allow(clippy::cast_precision_loss)]
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Staged-rollout convergence: re-push the final cumulative layout
    // to every live node, so one that missed an epoch (a push racing
    // its kill window, a transient socket failure) catches up before
    // stats collection. Nodes already current just ack their epoch.
    let controller = if spec.adapt.is_some() {
        let push = lock_recover(&ctl).provision(spec, addrs.clone());
        for (id, addr) in addrs.iter().enumerate() {
            if lock_recover(&slots[id]).alive {
                let _ = push_epoch_to(addr, &push);
            }
        }
        lock_recover(&controller_report).take()
    } else {
        None
    };

    // Collect final node-side stats from survivors, then shut every
    // node down in an orderly way.
    let mut node_stats: Vec<Option<NodeStatsSnapshot>> = vec![None; spec.nodes];
    let mut alive_epochs: Vec<(usize, u64)> = Vec::new();
    for (id, addr) in addrs.iter().enumerate() {
        if !lock_recover(&slots[id]).alive {
            continue;
        }
        if let Ok(mut conn) = connect_driver(addr, Duration::from_secs(2)) {
            if conn.send_request(&Request::Stats).is_ok() {
                if let Ok(Response::StatsReply(snapshot)) = conn.recv_response() {
                    alive_epochs.push((id, snapshot.epoch));
                    node_stats[id] = Some(snapshot);
                }
            }
            let _ = conn.send_request(&Request::Shutdown);
            let _ = conn.recv_response();
        }
    }
    for (id, node) in running.into_iter().enumerate() {
        if let Some(node) = node {
            if let Some(snapshot) = stop_node(node) {
                node_stats[id].get_or_insert(snapshot);
            }
        }
    }

    let epoch = lock_recover(&ctl).epoch;
    if controller.is_some() {
        if let Some(&(id, got)) = alive_epochs.iter().find(|&&(_, e)| e != epoch) {
            return Err(proto_err(format!(
                "staged rollout did not converge: node {id} reports epoch {got}, \
                 coordinator finished at {epoch}"
            )));
        }
    }

    let per_node: Vec<WireLedger> = cells.iter().map(LedgerCells::snapshot).collect();
    let tail_per_node = tail_base
        .map(|base| per_node.iter().zip(&base).map(|(now, then)| now.since(then)).collect());
    let outcome = WireOutcome {
        nodes: spec.nodes,
        epoch,
        listen_addrs: addrs,
        per_node,
        tail_per_node,
        node_stats,
        fault_log,
        wall_ms,
        controller,
        pipeline: WirePipelineStats {
            window: spec.window as u64,
            wire_batch: spec.wire_batch as u64,
            max_in_flight: drive_meter.max_window.load(Ordering::Relaxed),
            frames_out: drive_meter.frames_out.load(Ordering::Relaxed),
            frames_in: drive_meter.frames_in.load(Ordering::Relaxed),
            bytes_out: drive_meter.bytes_out.load(Ordering::Relaxed),
            bytes_in: drive_meter.bytes_in.load(Ordering::Relaxed),
        },
    };
    outcome.check_conservation()?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_request(req: &Request) {
        let body = req.encode().expect("encode");
        let back = Request::decode(&body).expect("decode");
        assert_eq!(*req, back);
    }

    fn roundtrip_response(resp: &Response) {
        let body = resp.encode().expect("encode");
        let back = Response::decode(&body).expect("decode");
        assert_eq!(*resp, back);
    }

    fn sample_provision(epoch: u64, peers: Vec<String>) -> Provision {
        WireSpec::new(peers.len().max(1)).provision(epoch, peers)
    }

    #[test]
    fn every_request_kind_roundtrips() {
        roundtrip_request(&Request::Hello { node: 7, version: PROTOCOL_VERSION });
        roundtrip_request(&Request::ConfigEpoch(sample_provision(
            3,
            vec!["127.0.0.1:4000".into(), "127.0.0.1:4001".into()],
        )));
        roundtrip_request(&Request::Lookup { content: 99 });
        roundtrip_request(&Request::BatchLookup { tag: 41, contents: vec![1, 2, 3, u64::MAX] });
        roundtrip_request(&Request::PeerForward { content: 5, budget_us: 250_000 });
        roundtrip_request(&Request::PeerForwardBatch {
            tag: u32::MAX,
            items: vec![(9, 100), (u64::MAX, u32::MAX)],
        });
        roundtrip_request(&Request::HealthProbe);
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Shutdown);
    }

    #[test]
    fn every_response_kind_roundtrips() {
        roundtrip_response(&Response::EpochAck { epoch: 12 });
        roundtrip_response(&Response::Served { tier: TIER_PEER });
        roundtrip_response(&Response::BatchServed {
            tag: 17,
            local: 1,
            peer: 2,
            origin: 3,
            shed: 4,
        });
        roundtrip_response(&Response::ForwardReply { outcome: FWD_MISS });
        roundtrip_response(&Response::ForwardBatchReply {
            tag: 23,
            outcomes: vec![FWD_HIT, FWD_MISS, FWD_REFUSED],
        });
        roundtrip_response(&Response::HelloAck { version: PROTOCOL_VERSION });
        roundtrip_response(&Response::HealthAck { epoch: 0 });
        let snapshot = NodeStatsSnapshot { lookups: 10, local: 6, origin: 4, ..Default::default() };
        roundtrip_response(&Response::StatsReply(snapshot));
        roundtrip_response(&Response::Bye);
        roundtrip_response(&Response::Refused { reason: "not provisioned".into() });
    }

    #[test]
    fn truncated_and_unknown_frames_are_typed_errors() {
        let body = Request::Lookup { content: 1 }.encode().expect("encode");
        let err = Request::decode(&body[..body.len() - 1]).expect_err("truncated");
        assert!(matches!(err, EngineError::Protocol { .. }));
        let err = Request::decode(&[0x7f]).expect_err("unknown kind");
        assert!(matches!(err, EngineError::Protocol { .. }));
        // Trailing garbage after a well-formed payload is rejected too.
        let mut long = body;
        long.push(0);
        let err = Request::decode(&long).expect_err("trailing bytes");
        assert!(matches!(err, EngineError::Protocol { .. }));
    }

    #[test]
    fn stats_snapshot_tolerates_shorter_field_lists() {
        let full = NodeStatsSnapshot { lookups: 5, local: 3, ..Default::default() };
        let mut fields = full.fields();
        fields.truncate(2);
        let partial = NodeStatsSnapshot::from_fields(&fields);
        assert_eq!(partial.lookups, 5);
        assert_eq!(partial.local, 3);
        assert_eq!(partial.origin, 0);
    }

    #[test]
    fn wire_listener_forces_mpsc_and_rejects_spsc() {
        assert_eq!(wire_ring_mode(RingMode::Auto).expect("auto"), RingMode::Mpsc);
        assert_eq!(wire_ring_mode(RingMode::Mpsc).expect("mpsc"), RingMode::Mpsc);
        assert!(matches!(wire_ring_mode(RingMode::Spsc), Err(EngineError::InvalidConfig { .. })));
        let mut config = NodeConfig::new(0);
        config.ring_mode = RingMode::Spsc;
        assert!(NodeServer::bind(config).is_err());
    }

    /// Regression (the Auto-census bug this PR fixes): an Auto ring
    /// whose census saw one in-process producer demotes to SPSC at
    /// seal, and a producer arriving later — the position every
    /// accepted wire connection is in — must be *rejected*, not
    /// silently admitted onto a single-producer ring.
    #[test]
    fn late_remote_producer_cannot_corrupt_sealed_ring() {
        let spec = ShardSpec::new(1, 64).ring_mode(RingMode::Auto);
        let store = ShardedStore::try_spawn_with(
            spec,
            |_| Box::new(LruStore::new(4)) as Box<dyn ContentStore>,
            Arc::new(|_store: &mut dyn ContentStore, _job: ()| {}),
        )
        .expect("spawn");
        let handle = store.handle();
        handle.register_producer().expect("local producer");
        handle.seal_producers();
        assert_eq!(handle.ring_mode(), RingMode::Spsc, "census of one demotes to SPSC");
        let err = handle.register_producer().expect_err("late remote producer must be rejected");
        assert!(matches!(err, EngineError::InvalidConfig { .. }));
        // The wire node never reaches this state: with the listener
        // enabled, Auto resolves to MPSC before the store is built.
        let resolved = wire_ring_mode(RingMode::Auto).expect("auto");
        assert_eq!(resolved, RingMode::Mpsc);
    }

    fn bind_node(id: usize) -> (Arc<NodeServer>, String) {
        let server = Arc::new(NodeServer::bind(NodeConfig::new(id)).expect("bind"));
        let addr = server.local_addr().to_string();
        (server, addr)
    }

    /// Regression: a socket read timeout must classify as a timeout
    /// from its `io::ErrorKind`. On Linux it surfaces as `WouldBlock`
    /// and displays as "Resource temporarily unavailable (os error
    /// 11)" — the old string-match on "timed out" never saw it.
    #[test]
    fn frame_read_timeout_is_classified_by_kind() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let _server = listener.accept().expect("accept");
        client.set_read_timeout(Some(Duration::from_millis(25))).expect("set timeout");
        let mut conn = Conn::new(client, None);
        let err = conn.recv_len().expect_err("idle read must time out");
        assert!(is_timeout(&err), "boundary read timeout must classify as timeout, got: {err}");
    }

    /// Regression: an idle connection must survive past the server's
    /// 200ms per-connection read timeout — misclassifying that
    /// timeout tore down every idle peer link and paced driver
    /// connection, forcing spurious reconnects and degradation.
    #[test]
    fn idle_connection_survives_past_server_read_timeout() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        conn.send_request(&Request::HealthProbe).expect("probe");
        assert_eq!(conn.recv_response().expect("ack"), Response::HealthAck { epoch: 0 });
        // Idle well past the server's read timeout, then ask again on
        // the *same* connection.
        std::thread::sleep(Duration::from_millis(450));
        conn.send_request(&Request::HealthProbe).expect("probe after idle");
        assert_eq!(
            conn.recv_response().expect("idle connection must still be served"),
            Response::HealthAck { epoch: 0 }
        );
        conn.send_request(&Request::Shutdown).expect("shutdown");
        let _ = conn.recv_response();
        join.join().expect("join").expect("run");
    }

    /// Regression: a same-layout re-provision keeps the store and
    /// must register producer lanes only for connections accepted
    /// since the last epoch — re-running the whole connection census
    /// overcounted producers on every epoch push.
    #[test]
    fn kept_store_reprovision_registers_only_the_lane_delta() {
        let shared = NodeShared {
            config: NodeConfig::new(0),
            engine: RwLock::new(None),
            epoch: AtomicU64::new(0),
            stats: NodeStats::default(),
            shutdown: AtomicBool::new(false),
            meter: Arc::new(WireMeter::default()),
            active_conns: AtomicUsize::new(0),
        };
        // Three connections accepted before any engine existed.
        shared.stats.connections.store(3, Ordering::Relaxed);
        let spec = WireSpec::new(1);
        let peers = vec!["127.0.0.1:1".to_owned()];
        provision_node(&shared, spec.provision(1, peers.clone())).expect("epoch 1");
        let first = shared.current_engine().expect("engine").handle.producer_census();
        provision_node(&shared, spec.provision(2, peers.clone())).expect("epoch 2");
        let engine = shared.current_engine().expect("engine");
        assert_eq!(
            engine.handle.producer_census(),
            first,
            "a same-layout epoch swap must not re-register the existing census"
        );
        // One more connection accepted between epochs (what the
        // accept loop does): the next epoch registers no extras.
        shared.stats.add(&shared.stats.connections);
        engine.handle.register_producer().expect("register");
        engine.lanes.fetch_add(1, Ordering::Relaxed);
        provision_node(&shared, spec.provision(3, peers)).expect("epoch 3");
        assert_eq!(
            shared.current_engine().expect("engine").handle.producer_census(),
            first + 1,
            "exactly one lane per newly accepted connection"
        );
    }

    #[test]
    fn unprovisioned_node_refuses_lookups_but_answers_health() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        conn.send_request(&Request::HealthProbe).expect("probe");
        assert_eq!(conn.recv_response().expect("ack"), Response::HealthAck { epoch: 0 });
        conn.send_request(&Request::Lookup { content: 1 }).expect("lookup");
        assert!(matches!(conn.recv_response().expect("refused"), Response::Refused { .. }));
        conn.send_request(&Request::Shutdown).expect("shutdown");
        assert_eq!(conn.recv_response().expect("bye"), Response::Bye);
        let stats = join.join().expect("join").expect("run");
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.lookups, 1);
    }

    #[test]
    fn stale_epoch_is_acked_with_current_and_ignored() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        let p5 = sample_provision(5, vec![addr.clone()]);
        conn.send_request(&Request::ConfigEpoch(p5)).expect("push 5");
        assert_eq!(conn.recv_response().expect("ack"), Response::EpochAck { epoch: 5 });
        let p3 = sample_provision(3, vec![addr.clone()]);
        conn.send_request(&Request::ConfigEpoch(p3)).expect("push 3");
        assert_eq!(
            conn.recv_response().expect("ack"),
            Response::EpochAck { epoch: 5 },
            "a stale push is acked with the current epoch, not applied"
        );
        conn.send_request(&Request::Shutdown).expect("shutdown");
        let _ = conn.recv_response();
        let stats = join.join().expect("join").expect("run");
        assert_eq!(stats.epochs_accepted, 1);
        assert_eq!(stats.epoch, 5);
    }

    #[test]
    fn same_layout_epoch_swap_keeps_lru_warmth() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut spec = WireSpec::new(1);
        spec.policy = StorePolicy::Lru;
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        conn.send_request(&Request::ConfigEpoch(spec.provision(1, vec![addr.clone()])))
            .expect("push");
        assert_eq!(conn.recv_response().expect("ack"), Response::EpochAck { epoch: 1 });
        // Rank 9999 is uncoordinated: the first lookup misses and the
        // LRU edge admits it, the second hits locally.
        for (expected, label) in [(TIER_ORIGIN, "miss + admit"), (TIER_LOCAL, "warm hit")] {
            conn.send_request(&Request::Lookup { content: 9_999 }).expect("lookup");
            assert_eq!(
                conn.recv_response().expect("served"),
                Response::Served { tier: expected },
                "{label}"
            );
        }
        // A same-layout epoch bump (what survivors see after a
        // revival) must keep the warm store.
        conn.send_request(&Request::ConfigEpoch(spec.provision(2, vec![addr.clone()])))
            .expect("push 2");
        assert_eq!(conn.recv_response().expect("ack"), Response::EpochAck { epoch: 2 });
        conn.send_request(&Request::Lookup { content: 9_999 }).expect("lookup");
        assert_eq!(
            conn.recv_response().expect("served"),
            Response::Served { tier: TIER_LOCAL },
            "cache warmth survives a same-layout epoch swap"
        );
        conn.send_request(&Request::Shutdown).expect("shutdown");
        let _ = conn.recv_response();
        join.join().expect("join").expect("run");
    }

    #[test]
    fn in_process_loopback_cluster_serves_all_tiers_conservatively() {
        let mut spec = WireSpec::new(3);
        spec.horizon_ms = 400.0;
        spec.rate_per_node_per_ms = 2.0;
        spec.seed = 7;
        let outcome = wire_bench(&spec).expect("wire bench");
        outcome.check_conservation().expect("conservation");
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.per_node.len(), 3);
        let offered = outcome.offered();
        assert!(offered > 0, "workload must offer requests");
        assert_eq!(outcome.shed(), 0, "no faults: nothing sheds");
        let (local, peer, origin) = WireOutcome::tier_fractions(&outcome.per_node);
        assert!(local > 0.0, "popularity prefix must serve locally");
        assert!(peer > 0.0, "coordinated slices must serve over the wire");
        assert!(origin > 0.0, "catalogue tail must fall through to origin");
        assert!((local + peer + origin - 1.0).abs() < 1e-9);
        for stats in outcome.node_stats.iter().flatten() {
            assert_eq!(stats.epoch, 1);
        }
        let forwards: u64 = outcome.node_stats.iter().flatten().map(|s| s.forwards_in).sum();
        assert!(forwards > 0, "peer serving implies forward frames were exchanged");
    }

    #[test]
    fn provision_fitted_exponent_roundtrips_and_is_layout_neutral() {
        let mut p = sample_provision(4, vec!["127.0.0.1:4000".into()]);
        p.fitted_s = 1.0625;
        roundtrip_request(&Request::ConfigEpoch(p.clone()));
        // A fit-only change must not read as a layout change, or every
        // re-fit would cold-start every store in the cluster.
        let mut q = p.clone();
        q.epoch = 9;
        q.fitted_s = 0.9;
        assert!(p.same_layout(&q));
    }

    /// The wire tier's staged rollout: a deliberately mis-provisioned
    /// cluster (ℓ far below the optimum for the true exponent) is
    /// walked to the re-solved layout by the driver-side controller
    /// through multiple budgeted epochs, and every node converges to
    /// the same final epoch carrying the fitted-exponent snapshot.
    #[test]
    fn adaptive_wire_bench_stages_epochs_and_converges_every_node() {
        let mut spec = WireSpec::new(3);
        spec.ell = 0.2;
        spec.zipf_s = 1.1;
        spec.rate_per_node_per_ms = 4.0;
        spec.horizon_ms = 600.0;
        spec.paced = true;
        spec.batch = 16;
        spec.seed = 11;
        spec.adapt = Some(ControllerConfig {
            decay: 0.9,
            min_window: 300.0,
            movement_budget: 64,
            sample_every: 1,
            tick_interval: Duration::from_millis(5),
            ..ControllerConfig::default()
        });
        let outcome = wire_bench(&spec).expect("adaptive wire bench");
        outcome.check_conservation().expect("conservation");
        let report = outcome.controller.as_ref().expect("controller report present");
        assert!(report.retargets >= 1, "a mis-provisioned ell must retarget");
        assert!(
            report.epochs_issued >= 2,
            "the retarget must be staged incrementally, got {} epochs",
            report.epochs_issued
        );
        assert!(report.slices_moved > 0);
        assert_eq!(
            outcome.epoch,
            1 + report.epochs_issued,
            "every issued epoch must have landed cluster-wide"
        );
        let fitted = report.fitted_s.expect("a fit happened");
        assert!((fitted - spec.zipf_s).abs() < 0.2, "fit {fitted} missed s={}", spec.zipf_s);
        for stats in outcome.node_stats.iter().flatten() {
            assert_eq!(stats.epoch, outcome.epoch, "all nodes converge to the same epoch");
            let node_view = f64::from_bits(stats.fitted_s_bits);
            assert!(
                (node_view - fitted).abs() < 0.2,
                "node stats carry the fitted snapshot, got {node_view}"
            );
        }
    }

    #[test]
    fn wire_spec_rejects_malformed_fault_schedules() {
        let mut spec = WireSpec::new(2);
        spec.faults = vec![WireFault { at_op: 10, kind: WireFaultKind::Kill(5) }];
        assert!(matches!(wire_bench(&spec), Err(EngineError::FaultSpec { .. })));
        spec.faults = vec![WireFault { at_op: 10, kind: WireFaultKind::Revive(0) }];
        assert!(matches!(wire_bench(&spec), Err(EngineError::FaultSpec { .. })));
        // Kill/revive requires real child processes.
        spec.faults = vec![
            WireFault { at_op: 10, kind: WireFaultKind::Kill(0) },
            WireFault { at_op: 20, kind: WireFaultKind::Revive(0) },
        ];
        assert!(matches!(wire_bench(&spec), Err(EngineError::FaultSpec { .. })));
    }

    /// The enum codecs stay the canonical wire format; the hot-path
    /// helpers must emit and accept byte-identical frames, or the two
    /// halves of the cluster silently disagree.
    #[test]
    fn fast_path_codecs_match_enum_codecs() {
        let contents = vec![1u64, 99, u64::MAX, 0];
        let enum_body =
            Request::BatchLookup { tag: 7, contents: contents.clone() }.encode().expect("encode");
        let mut fast_body = Vec::new();
        encode_batch_lookup_from(&mut fast_body, 7, &contents).expect("fast encode");
        assert_eq!(enum_body, fast_body, "BatchLookup bytes diverge");
        let mut decoded = Vec::new();
        assert_eq!(decode_batch_lookup_into(&enum_body, &mut decoded).expect("fast decode"), 7);
        assert_eq!(decoded, contents);

        let items = vec![(5u64, 250u32), (u64::MAX, u32::MAX)];
        let enum_body =
            Request::PeerForwardBatch { tag: 31, items: items.clone() }.encode().expect("encode");
        let mut fast_body = Vec::new();
        encode_forward_batch_from(&mut fast_body, 31, &items).expect("fast encode");
        assert_eq!(enum_body, fast_body, "PeerForwardBatch bytes diverge");
        let mut decoded = Vec::new();
        assert_eq!(decode_forward_batch_into(&enum_body, &mut decoded).expect("decode"), 31);
        assert_eq!(decoded, items);

        let served = Response::BatchServed { tag: 9, local: 1, peer: 2, origin: 3, shed: 4 }
            .encode()
            .expect("encode");
        assert_eq!(decode_batch_served(&served).expect("decode"), (9, 1, 2, 3, 4));

        let outcomes = vec![FWD_HIT, FWD_MISS, FWD_REFUSED];
        let enum_body = Response::ForwardBatchReply { tag: 13, outcomes: outcomes.clone() }
            .encode()
            .expect("encode");
        let mut fast_body = Vec::new();
        encode_forward_batch_reply_from(&mut fast_body, 13, &outcomes).expect("fast encode");
        assert_eq!(enum_body, fast_body, "ForwardBatchReply bytes diverge");
        let (tag, parsed) = parse_forward_batch_reply(&enum_body).expect("parse");
        assert_eq!((tag, parsed), (13, outcomes.as_slice()));
    }

    /// Oversized count fields are rejected before any allocation is
    /// attempted — a hostile frame cannot make the decoder reserve
    /// gigabytes off a 4-byte claim.
    #[test]
    fn oversized_batch_counts_are_rejected() {
        let mut body = vec![kind::BATCH_LOOKUP];
        put_u32(&mut body, 1);
        put_u32(&mut body, u32::MAX);
        let mut scratch = Vec::new();
        let err = decode_batch_lookup_into(&body, &mut scratch).expect_err("oversized");
        assert!(matches!(err, EngineError::Protocol { .. }));
        let mut body = vec![kind::PEER_FORWARD_BATCH];
        put_u32(&mut body, 1);
        put_u32(&mut body, u32::MAX);
        let mut scratch = Vec::new();
        let err = decode_forward_batch_into(&body, &mut scratch).expect_err("oversized");
        assert!(matches!(err, EngineError::Protocol { .. }));
    }

    /// A v1 peer (or any version-mismatched dialer) is refused at the
    /// handshake, so mixed-version clusters fail at connect time.
    #[test]
    fn version_mismatched_hello_is_refused() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let stream = TcpStream::connect(&addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let mut conn = Conn::new(stream, None);
        conn.send_request(&Request::Hello { node: 1, version: PROTOCOL_VERSION - 1 })
            .expect("send stale hello");
        assert!(
            matches!(conn.recv_response().expect("reply"), Response::Refused { .. }),
            "a version-mismatched hello must be refused"
        );
        // The node hangs up after refusing a mismatched version; a
        // fresh current-version dial still completes.
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("v2 connect");
        conn.send_request(&Request::Shutdown).expect("shutdown");
        let _ = conn.recv_response();
        join.join().expect("join").expect("run");
    }

    /// Pipelining contract on the node side: frames are answered
    /// strictly in receipt order, each reply carrying its frame's tag
    /// and a tally covering exactly that frame's requests.
    #[test]
    fn pipelined_frames_are_answered_in_order_with_matching_tags() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        conn.send_request(&Request::ConfigEpoch(sample_provision(1, vec![addr.clone()])))
            .expect("push");
        assert_eq!(conn.recv_response().expect("ack"), Response::EpochAck { epoch: 1 });
        // Three frames in flight before the first reply is read.
        let batches: [&[u64]; 3] = [&[1, 2, 3], &[4], &[5, 6]];
        for (tag, contents) in batches.iter().enumerate() {
            conn.send(|buf| encode_batch_lookup_from(buf, tag as u32 + 10, contents))
                .expect("send");
        }
        for (tag, contents) in batches.iter().enumerate() {
            assert!(matches!(conn.recv_len(), Ok(Some(_))), "reply {tag} must arrive");
            let (got, local, peer, origin, shed) =
                decode_batch_served(conn.last_frame()).expect("decode");
            assert_eq!(got, tag as u32 + 10, "replies must drain in send order");
            assert_eq!(
                local + peer + origin + shed,
                contents.len() as u64,
                "each tally covers exactly its frame"
            );
        }
        conn.send_request(&Request::Shutdown).expect("shutdown");
        let _ = conn.recv_response();
        join.join().expect("join").expect("run");
    }

    /// Driver-side desync handling: a reply carrying a stale tag (or
    /// a tally that does not cover its frame) makes `drain_one` report
    /// desync, and `shed_conn` sheds the whole in-flight tail.
    #[test]
    fn stale_tag_reply_sheds_the_in_flight_tail() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(2))).expect("timeout");
        let (server, _) = listener.accept().expect("accept");
        let mut server_conn = Conn::new(server, None);
        // The server answers the front frame (tag 1) with tag 99.
        server_conn
            .send(|buf| {
                Response::BatchServed { tag: 99, local: 4, peer: 0, origin: 0, shed: 0 }
                    .encode_into(buf)
            })
            .expect("mis-tagged reply");
        let cells = LedgerCells::default();
        let mut pending: VecDeque<(u32, u64)> = VecDeque::from([(1, 4), (2, 7)]);
        let mut conn = Some((Conn::new(client, None), 0u64));
        let (c, _) = conn.as_mut().expect("conn");
        assert!(!drain_one(c, &mut pending, &cells), "stale tag must read as desync");
        shed_conn(&mut conn, &mut pending, &cells);
        assert!(conn.is_none() && pending.is_empty());
        let ledger = cells.snapshot();
        assert_eq!(ledger.completed(), 0, "a mis-tagged tally must not land");
        assert_eq!(ledger.shed, 11, "both in-flight frames shed, 4 + 7 requests");
    }

    /// The accept loop sheds connections over the configured cap with
    /// a typed `Refused` frame instead of spawning unboundedly.
    #[test]
    fn connection_cap_refuses_excess_accepts() {
        let mut config = NodeConfig::new(0);
        config.max_connections = 1;
        let server = Arc::new(NodeServer::bind(config).expect("bind"));
        let addr = server.local_addr().to_string();
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut first = connect_driver(&addr, Duration::from_secs(2)).expect("first connection");
        let err = connect_driver(&addr, Duration::from_secs(2))
            .expect_err("second connection must be refused at the cap");
        assert!(
            err.to_string().contains("connection cap"),
            "refusal must name the cap, got: {err}"
        );
        first.send_request(&Request::Shutdown).expect("shutdown");
        let _ = first.recv_response();
        let stats = join.join().expect("join").expect("run");
        assert_eq!(stats.rejected_conns, 1);
        assert_eq!(stats.connections, 1, "a refused accept must not enter the census");
    }

    /// The allocation-free codec, proven: once the connection's
    /// scratch buffers are warm, a driver thread pushes pipelined
    /// frames and drains tallies without a single heap allocation.
    /// The counter is thread-local, so the node's own threads cannot
    /// pollute the measurement.
    #[test]
    fn warm_connection_serves_frames_without_allocating() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        conn.send_request(&Request::ConfigEpoch(sample_provision(1, vec![addr.clone()])))
            .expect("push");
        assert_eq!(conn.recv_response().expect("ack"), Response::EpochAck { epoch: 1 });
        let contents: Vec<u64> = (0..64).collect();
        let mut exchange = |tags: std::ops::Range<u32>| {
            for tag in tags.clone() {
                conn.send(|buf| encode_batch_lookup_from(buf, tag, &contents)).expect("send");
            }
            for tag in tags {
                assert!(matches!(conn.recv_len(), Ok(Some(_))));
                let (got, ..) = decode_batch_served(conn.last_frame()).expect("decode");
                assert_eq!(got, tag);
            }
        };
        // Warm-up: grows the encode/decode scratch to steady state.
        exchange(0..4);
        let before = crate::alloc_count::allocations();
        exchange(4..36);
        let after = crate::alloc_count::allocations();
        assert_eq!(
            after - before,
            0,
            "warm frame I/O must not allocate, saw {} allocations over 32 round trips",
            after - before
        );
        conn.send_request(&Request::Shutdown).expect("shutdown");
        let _ = conn.recv_response();
        join.join().expect("join").expect("run");
    }

    proptest! {
        /// Canonical-codec agreement and truncation rejection across
        /// random tagged frames: the fast path decodes exactly what
        /// the enum codec encodes, every strict prefix is a typed
        /// protocol error, and trailing garbage is rejected.
        #[test]
        fn tagged_frames_roundtrip_and_reject_truncation(
            tag in 0u32..u32::MAX,
            n in 0usize..33,
            seed in 0u64..500,
        ) {
            use rand::rngs::StdRng;
            use rand::{Rng as _, SeedableRng as _};
            let mut rng = StdRng::seed_from_u64(seed);
            let contents: Vec<u64> = (0..n).map(|_| rng.gen_range(0..u64::MAX)).collect();
            let body = Request::BatchLookup { tag, contents: contents.clone() }
                .encode()
                .expect("encode");
            let mut decoded = Vec::new();
            prop_assert_eq!(decode_batch_lookup_into(&body, &mut decoded).expect("decode"), tag);
            prop_assert_eq!(&decoded, &contents);
            for cut in 1..body.len() {
                prop_assert!(
                    matches!(
                        decode_batch_lookup_into(&body[..cut], &mut decoded),
                        Err(EngineError::Protocol { .. })
                    ),
                    "prefix of {cut} bytes must be rejected"
                );
            }
            let items: Vec<(u64, u32)> =
                contents.iter().map(|&c| (c, rng.gen_range(0..u32::MAX))).collect();
            let body = Request::PeerForwardBatch { tag, items: items.clone() }
                .encode()
                .expect("encode");
            let mut decoded = Vec::new();
            prop_assert_eq!(decode_forward_batch_into(&body, &mut decoded).expect("decode"), tag);
            prop_assert_eq!(&decoded, &items);
            let mut long = body;
            long.push(0);
            prop_assert!(matches!(
                decode_forward_batch_into(&long, &mut decoded),
                Err(EngineError::Protocol { .. })
            ));
        }
    }
}
