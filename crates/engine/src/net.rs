//! Wire tier: the serving engine on real sockets.
//!
//! Everything before this module runs the paper's cooperating routers
//! inside one process — peer forwards are function calls, so the
//! d0/d1/d2 cost hierarchy the engine validates against the DES has
//! never crossed an actual link. This module splits the cluster into
//! real OS processes connected by TCP on a compact length-prefixed
//! binary protocol, in the same vendored, dependency-free style as
//! [`crate::ring`]: `std::net` only, no async runtime, no
//! serialization framework.
//!
//! # Frame layout
//!
//! Every message is one frame:
//!
//! ```text
//! +----------------+---------+--------------------------+
//! | len: u32 LE    | kind: u8| payload (len - 1 bytes)  |
//! +----------------+---------+--------------------------+
//! ```
//!
//! `len` counts the kind byte plus the payload and is capped at
//! [`MAX_FRAME`]; integers are little-endian, strings are `u16`
//! length-prefixed UTF-8. Requests are [`Request`], responses
//! [`Response`]; kinds with the high bit set are responses.
//!
//! # Roles
//!
//! - **Node** ([`NodeServer`], the `ccn node` subcommand): one router
//!   as a standalone process. It binds, prints its address, and waits
//!   for a **config epoch** — the coordinator's versioned provisioning
//!   push carrying the `ccn_coord` slice assignments, store layout,
//!   and the peer address list. Only then does it build its sharded
//!   store (served through the existing MPSC rings — see
//!   *Ring discipline* below) and start serving lookups. Peer misses
//!   are forwarded over per-peer TCP connections with the
//!   local → peer → retry → origin → shed degradation ladder intact.
//! - **Coordinator / driver** ([`wire_bench`]): provisions every node
//!   (epoch 1), drives per-node Zipf request streams over the same
//!   protocol, replays a kill/revive schedule by SIGKILLing node
//!   *processes* and re-provisioning the survivors plus the respawned
//!   node under a bumped epoch, and folds per-node ledgers into a
//!   [`WireOutcome`] whose accounting (`offered == completed + shed`)
//!   is enforced exactly, per node and in total.
//!
//! # Epoch semantics
//!
//! A config epoch is accepted iff it is strictly newer than the
//! node's current epoch; replays and reordered pushes are answered
//! with the current epoch and ignored. An epoch whose store layout
//! (catalogue, capacity, prefix, slices, policy) matches the current
//! provisioning swaps routing and peer links but **keeps the store**,
//! so re-provisioning live survivors after a revival does not discard
//! their cache warmth; a layout change rebuilds the store from
//! scratch.
//!
//! # Failure ladder over sockets
//!
//! The in-process ladder survives the move onto the wire with the
//! same rungs, re-expressed in socket vocabulary:
//!
//! - **peer**: one forward frame on the holder's connection, read
//!   back under the forward deadline (socket read timeout).
//! - **retry**: a holder that answers *refused* (admission
//!   backpressure, not yet provisioned) is retried up to the
//!   configured budget with linear backoff.
//! - **origin**: a deadline expiry or socket failure (connection
//!   refused, reset, torn down mid-conversation) degrades the request
//!   to origin at the client node. A timed-out connection is dropped,
//!   not reused — a late reply on a reused stream would desynchronize
//!   the framing.
//! - **health**: consecutive socket failures against one holder mark
//!   it down in the node's [`LiveRouting`] view (epoch bump, HRW
//!   failover moves exactly that node's share); a background probe
//!   thread pings down peers and restores them when they answer
//!   again. This replaces the in-process op-count probation with
//!   wall-clock probing — the only rung whose clock changes.
//! - **shed**: a killed node's clients shed at the driver edge: a
//!   request offered to a dead process is counted shed, never lost,
//!   so SIGKILL preserves `offered == completed + shed` bit-exactly.
//!
//! # Ring discipline
//!
//! A wire node's producers are its accepted connections, and those
//! arrive *after* traffic starts — an [`RingMode::Auto`] census
//! sealed at first submission could demote a shard ring to SPSC and
//! then admit a second remote producer, corrupting the single-writer
//! invariant. The node therefore resolves `Auto` to MPSC whenever the
//! listener is enabled (and rejects explicit `Spsc` outright), and
//! additionally registers one producer lane per accepted connection,
//! so the census stays honest even if a future mode re-enables
//! demotion. See `late_remote_producer_cannot_corrupt_sealed_ring`.

use std::io::{self, BufRead as _, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs as _};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use ccn_coord::{contiguous_slices, RouterAssignment};
use ccn_sim::store::{ContentStore, LruStore, StaticStore};
use ccn_sim::{workload, ContentId};

use crate::affinity::ShardPlacement;
use crate::cluster::StorePolicy;
use crate::control::{Controller, ControllerConfig, ControllerReport, LayoutStep, RankTap};
use crate::error::EngineError;
use crate::fault::DegradeConfig;
use crate::routing::{LiveRouting, RoutingTable};
use crate::shard::{lock_recover, shard_of, IdleStrategy, RingMode, ShardSpec, ShardedStore};

/// Hard cap on one frame (length prefix included payload): 1 MiB.
/// Large enough for a 64k-request batch lookup, small enough that a
/// corrupt length prefix cannot balloon an allocation.
pub const MAX_FRAME: u32 = 1 << 20;

/// Wire protocol version, carried in `Hello`.
pub const PROTOCOL_VERSION: u8 = 1;

mod kind {
    pub const HELLO: u8 = 0x01;
    pub const CONFIG_EPOCH: u8 = 0x02;
    pub const LOOKUP: u8 = 0x03;
    pub const BATCH_LOOKUP: u8 = 0x04;
    pub const PEER_FORWARD: u8 = 0x05;
    pub const HEALTH_PROBE: u8 = 0x06;
    pub const STATS: u8 = 0x07;
    pub const SHUTDOWN: u8 = 0x08;

    pub const EPOCH_ACK: u8 = 0x81;
    pub const SERVED: u8 = 0x82;
    pub const BATCH_SERVED: u8 = 0x83;
    pub const FORWARD_REPLY: u8 = 0x84;
    pub const HEALTH_ACK: u8 = 0x85;
    pub const STATS_REPLY: u8 = 0x86;
    pub const BYE: u8 = 0x87;
    pub const REFUSED: u8 = 0x88;
}

/// Tier codes used in `Served` replies.
pub const TIER_LOCAL: u8 = 0;
/// See [`TIER_LOCAL`].
pub const TIER_PEER: u8 = 1;
/// See [`TIER_LOCAL`].
pub const TIER_ORIGIN: u8 = 2;

/// `ForwardReply` outcome codes.
pub const FWD_HIT: u8 = 0;
/// Holder probed its slice and missed; origin serves.
pub const FWD_MISS: u8 = 1;
/// Holder refused the forward (backpressure / not provisioned).
pub const FWD_REFUSED: u8 = 2;

fn net_err(op: &str, detail: impl std::fmt::Display) -> EngineError {
    EngineError::Net { op: op.to_owned(), detail: detail.to_string(), timeout: false }
}

fn proto_err(reason: impl Into<String>) -> EngineError {
    EngineError::Protocol { reason: reason.into() }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<(), EngineError> {
    let len = u16::try_from(s.len()).map_err(|_| {
        proto_err(format!("string of {} bytes exceeds the u16 frame field", s.len()))
    })?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Cursor over a received payload; every read is bounds-checked so a
/// truncated frame surfaces as a typed protocol error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| proto_err("frame payload truncated"))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, EngineError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn str(&mut self) -> Result<String, EngineError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| proto_err("string field is not UTF-8"))
    }

    fn done(&self) -> Result<(), EngineError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(proto_err(format!("{} trailing bytes after payload", self.buf.len() - self.at)))
        }
    }
}

/// Writes one frame: `len(kind + payload)` then the bytes.
fn write_frame(stream: &mut TcpStream, body: &[u8]) -> Result<(), EngineError> {
    let len = u32::try_from(body.len()).map_err(|_| proto_err("frame exceeds u32 length"))?;
    if len > MAX_FRAME {
        return Err(proto_err(format!("frame of {len} bytes exceeds MAX_FRAME {MAX_FRAME}")));
    }
    let mut framed = Vec::with_capacity(4 + body.len());
    put_u32(&mut framed, len);
    framed.extend_from_slice(body);
    stream.write_all(&framed).map_err(|e| net_io_err("write-frame", &e))?;
    Ok(())
}

/// Reads one frame body (kind byte + payload), honouring the stream's
/// read timeout. `Ok(None)` is a clean EOF on a frame boundary.
///
/// Only a timeout on the *first* header byte — a frame boundary — is
/// classified as a timeout ([`is_timeout`]): it is safe to retry
/// (idle) or re-route (deadline). Once any frame byte has been read,
/// a stall leaves the stream desynchronized, so mid-frame errors are
/// deliberately wrapped via [`net_err`] (never a timeout) and the
/// caller drops the connection.
fn read_frame(stream: &mut TcpStream) -> Result<Option<Vec<u8>>, EngineError> {
    let mut header = [0u8; 4];
    match stream.read(&mut header) {
        Ok(0) => return Ok(None),
        Ok(n) if n < 4 => {
            stream.read_exact(&mut header[n..]).map_err(|e| net_err("read-frame", e))?;
        }
        Ok(_) => {}
        Err(e) => return Err(net_io_err("read-frame", &e)),
    }
    let len = u32::from_le_bytes(header);
    if len == 0 || len > MAX_FRAME {
        return Err(proto_err(format!("frame length {len} outside 1..={MAX_FRAME}")));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body).map_err(|e| net_err("read-frame", e))?;
    Ok(Some(body))
}

fn is_timeout(e: &EngineError) -> bool {
    matches!(e, EngineError::Net { timeout: true, .. })
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// One contiguous coordinated slice `[start, end)` assigned to `node`,
/// as produced by `ccn_coord::contiguous_slices`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceAssignment {
    /// Owning router.
    pub node: u32,
    /// First coordinated rank of the slice (inclusive).
    pub start: u64,
    /// One past the last rank (exclusive).
    pub end: u64,
}

/// A versioned provisioning push: everything a node process needs to
/// build its store, its routing view, and its peer links.
#[derive(Debug, Clone, PartialEq)]
pub struct Provision {
    /// Monotone config version; a node accepts only strictly newer
    /// epochs.
    pub epoch: u64,
    /// Cluster size (routers).
    pub nodes: u32,
    /// Catalogue size `c_total`.
    pub catalogue: u64,
    /// Per-node store capacity `c`.
    pub capacity: u64,
    /// Local popularity prefix `c − x`.
    pub prefix: u64,
    /// Coordinated slots per node `x` (for a mid-chain incremental
    /// layout with uneven slices: the widest slice).
    pub x: u64,
    /// The coordinator's fitted Zipf exponent at push time, `0.0` when
    /// none (static provisioning, or no fit yet). Metadata only — it
    /// is excluded from [`Provision::same_layout`] so a fit-only
    /// change never discards cache warmth — carried so each node's
    /// stats snapshot reports what the controller believed.
    pub fitted_s: f64,
    /// Store population policy.
    pub policy: StorePolicy,
    /// Coordinated slice assignments (the `ccn_coord` plan).
    pub slices: Vec<SliceAssignment>,
    /// Listen address of every node, indexed by node id; a node
    /// ignores its own entry.
    pub peers: Vec<String>,
}

impl Provision {
    /// `true` when `other` provisions the identical store layout, so a
    /// node can keep its (possibly warm) store across the epoch swap.
    #[must_use]
    pub fn same_layout(&self, other: &Provision) -> bool {
        self.nodes == other.nodes
            && self.catalogue == other.catalogue
            && self.capacity == other.capacity
            && self.prefix == other.prefix
            && self.x == other.x
            && self.policy == other.policy
            && self.slices == other.slices
    }
}

/// Client-to-node and node-to-node request frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Connection preamble from a peer node (`node` = sender id).
    /// Registers the connection as a producer lane on the receiver's
    /// shard rings.
    Hello {
        /// Sender's node id.
        node: u32,
        /// Sender's protocol version.
        version: u8,
    },
    /// Coordinator provisioning push (see [`Provision`]).
    ConfigEpoch(Provision),
    /// One client request for `content`.
    Lookup {
        /// Requested rank.
        content: u64,
    },
    /// A batch of client requests, answered with one tier tally.
    BatchLookup {
        /// Requested ranks.
        contents: Vec<u64>,
    },
    /// Peer forward: the sender's client missed locally and routing
    /// named the receiver holder of `content`.
    PeerForward {
        /// Requested rank.
        content: u64,
        /// Remaining forward-deadline budget, microseconds.
        budget_us: u32,
    },
    /// Liveness probe (works before provisioning).
    HealthProbe,
    /// Snapshot request for the node's counters.
    Stats,
    /// Orderly shutdown; answered with `Bye`.
    Shutdown,
}

impl Request {
    /// Serializes into a frame body (kind byte + payload).
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] if a field exceeds its wire width.
    pub fn encode(&self) -> Result<Vec<u8>, EngineError> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { node, version } => {
                buf.push(kind::HELLO);
                put_u32(&mut buf, *node);
                buf.push(*version);
            }
            Request::ConfigEpoch(p) => {
                buf.push(kind::CONFIG_EPOCH);
                put_u64(&mut buf, p.epoch);
                put_u32(&mut buf, p.nodes);
                put_u64(&mut buf, p.catalogue);
                put_u64(&mut buf, p.capacity);
                put_u64(&mut buf, p.prefix);
                put_u64(&mut buf, p.x);
                put_u64(&mut buf, p.fitted_s.to_bits());
                buf.push(match p.policy {
                    StorePolicy::Provisioned => 0,
                    StorePolicy::Lru => 1,
                });
                let slices = u32::try_from(p.slices.len())
                    .map_err(|_| proto_err("too many slices for one frame"))?;
                put_u32(&mut buf, slices);
                for s in &p.slices {
                    put_u32(&mut buf, s.node);
                    put_u64(&mut buf, s.start);
                    put_u64(&mut buf, s.end);
                }
                let peers = u32::try_from(p.peers.len())
                    .map_err(|_| proto_err("too many peers for one frame"))?;
                put_u32(&mut buf, peers);
                for addr in &p.peers {
                    put_str(&mut buf, addr)?;
                }
            }
            Request::Lookup { content } => {
                buf.push(kind::LOOKUP);
                put_u64(&mut buf, *content);
            }
            Request::BatchLookup { contents } => {
                buf.push(kind::BATCH_LOOKUP);
                let count = u32::try_from(contents.len())
                    .map_err(|_| proto_err("batch exceeds u32 count"))?;
                put_u32(&mut buf, count);
                for &c in contents {
                    put_u64(&mut buf, c);
                }
            }
            Request::PeerForward { content, budget_us } => {
                buf.push(kind::PEER_FORWARD);
                put_u64(&mut buf, *content);
                put_u32(&mut buf, *budget_us);
            }
            Request::HealthProbe => buf.push(kind::HEALTH_PROBE),
            Request::Stats => buf.push(kind::STATS),
            Request::Shutdown => buf.push(kind::SHUTDOWN),
        }
        Ok(buf)
    }

    /// Parses a frame body as a request.
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] for unknown kinds, truncated or
    /// oversized payloads.
    pub fn decode(body: &[u8]) -> Result<Self, EngineError> {
        let mut c = Cursor::new(body);
        let k = c.u8()?;
        let req = match k {
            kind::HELLO => Request::Hello { node: c.u32()?, version: c.u8()? },
            kind::CONFIG_EPOCH => {
                let epoch = c.u64()?;
                let nodes = c.u32()?;
                let catalogue = c.u64()?;
                let capacity = c.u64()?;
                let prefix = c.u64()?;
                let x = c.u64()?;
                let fitted_s = f64::from_bits(c.u64()?);
                let policy = match c.u8()? {
                    0 => StorePolicy::Provisioned,
                    1 => StorePolicy::Lru,
                    other => return Err(proto_err(format!("unknown store policy code {other}"))),
                };
                let n_slices = c.u32()? as usize;
                if n_slices > MAX_FRAME as usize / 20 {
                    return Err(proto_err("slice count exceeds frame capacity"));
                }
                let mut slices = Vec::with_capacity(n_slices);
                for _ in 0..n_slices {
                    slices.push(SliceAssignment { node: c.u32()?, start: c.u64()?, end: c.u64()? });
                }
                let n_peers = c.u32()? as usize;
                if n_peers > u16::MAX as usize {
                    return Err(proto_err("peer count exceeds frame capacity"));
                }
                let mut peers = Vec::with_capacity(n_peers);
                for _ in 0..n_peers {
                    peers.push(c.str()?);
                }
                Request::ConfigEpoch(Provision {
                    epoch,
                    nodes,
                    catalogue,
                    capacity,
                    prefix,
                    x,
                    fitted_s,
                    policy,
                    slices,
                    peers,
                })
            }
            kind::LOOKUP => Request::Lookup { content: c.u64()? },
            kind::BATCH_LOOKUP => {
                let count = c.u32()? as usize;
                if count > MAX_FRAME as usize / 8 {
                    return Err(proto_err("batch count exceeds frame capacity"));
                }
                let mut contents = Vec::with_capacity(count);
                for _ in 0..count {
                    contents.push(c.u64()?);
                }
                Request::BatchLookup { contents }
            }
            kind::PEER_FORWARD => Request::PeerForward { content: c.u64()?, budget_us: c.u32()? },
            kind::HEALTH_PROBE => Request::HealthProbe,
            kind::STATS => Request::Stats,
            kind::SHUTDOWN => Request::Shutdown,
            other => return Err(proto_err(format!("unknown request kind {other:#04x}"))),
        };
        c.done()?;
        Ok(req)
    }
}

/// Node-to-client and node-to-node response frames.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Config push acknowledged; carries the node's (possibly
    /// unchanged) current epoch.
    EpochAck {
        /// The node's config epoch after processing the push.
        epoch: u64,
    },
    /// One lookup served by `tier` ([`TIER_LOCAL`] / [`TIER_PEER`] /
    /// [`TIER_ORIGIN`]).
    Served {
        /// Serving tier code.
        tier: u8,
    },
    /// Tier tally for one batch lookup; the four counts sum to the
    /// batch size.
    BatchServed {
        /// Served from the node's own store.
        local: u64,
        /// Served by a peer's coordinated slice.
        peer: u64,
        /// Fell through to origin.
        origin: u64,
        /// Refused (only before provisioning).
        shed: u64,
    },
    /// Forward verdict ([`FWD_HIT`] / [`FWD_MISS`] / [`FWD_REFUSED`]).
    ForwardReply {
        /// Outcome code.
        outcome: u8,
    },
    /// Health probe answer.
    HealthAck {
        /// The node's config epoch (0 = not yet provisioned).
        epoch: u64,
    },
    /// Counter snapshot.
    StatsReply(NodeStatsSnapshot),
    /// Shutdown acknowledged.
    Bye,
    /// The node cannot serve the request (e.g. not yet provisioned).
    Refused {
        /// Human-readable reason.
        reason: String,
    },
}

impl Response {
    /// Serializes into a frame body (kind byte + payload).
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] if a field exceeds its wire width.
    pub fn encode(&self) -> Result<Vec<u8>, EngineError> {
        let mut buf = Vec::new();
        match self {
            Response::EpochAck { epoch } => {
                buf.push(kind::EPOCH_ACK);
                put_u64(&mut buf, *epoch);
            }
            Response::Served { tier } => {
                buf.push(kind::SERVED);
                buf.push(*tier);
            }
            Response::BatchServed { local, peer, origin, shed } => {
                buf.push(kind::BATCH_SERVED);
                put_u64(&mut buf, *local);
                put_u64(&mut buf, *peer);
                put_u64(&mut buf, *origin);
                put_u64(&mut buf, *shed);
            }
            Response::ForwardReply { outcome } => {
                buf.push(kind::FORWARD_REPLY);
                buf.push(*outcome);
            }
            Response::HealthAck { epoch } => {
                buf.push(kind::HEALTH_ACK);
                put_u64(&mut buf, *epoch);
            }
            Response::StatsReply(stats) => {
                buf.push(kind::STATS_REPLY);
                let fields = stats.fields();
                put_u32(&mut buf, fields.len() as u32);
                for v in fields {
                    put_u64(&mut buf, v);
                }
            }
            Response::Bye => buf.push(kind::BYE),
            Response::Refused { reason } => {
                buf.push(kind::REFUSED);
                put_str(&mut buf, reason)?;
            }
        }
        Ok(buf)
    }

    /// Parses a frame body as a response.
    ///
    /// # Errors
    ///
    /// [`EngineError::Protocol`] for unknown kinds or truncated
    /// payloads.
    pub fn decode(body: &[u8]) -> Result<Self, EngineError> {
        let mut c = Cursor::new(body);
        let k = c.u8()?;
        let resp = match k {
            kind::EPOCH_ACK => Response::EpochAck { epoch: c.u64()? },
            kind::SERVED => Response::Served { tier: c.u8()? },
            kind::BATCH_SERVED => Response::BatchServed {
                local: c.u64()?,
                peer: c.u64()?,
                origin: c.u64()?,
                shed: c.u64()?,
            },
            kind::FORWARD_REPLY => Response::ForwardReply { outcome: c.u8()? },
            kind::HEALTH_ACK => Response::HealthAck { epoch: c.u64()? },
            kind::STATS_REPLY => {
                let count = c.u32()? as usize;
                if count > 1024 {
                    return Err(proto_err("stats field count exceeds frame capacity"));
                }
                let mut fields = Vec::with_capacity(count);
                for _ in 0..count {
                    fields.push(c.u64()?);
                }
                Response::StatsReply(NodeStatsSnapshot::from_fields(&fields))
            }
            kind::BYE => Response::Bye,
            kind::REFUSED => Response::Refused { reason: c.str()? },
            other => return Err(proto_err(format!("unknown response kind {other:#04x}"))),
        };
        c.done()?;
        Ok(resp)
    }
}

fn send_request(stream: &mut TcpStream, req: &Request) -> Result<(), EngineError> {
    write_frame(stream, &req.encode()?)
}

fn recv_response(stream: &mut TcpStream) -> Result<Response, EngineError> {
    match read_frame(stream)? {
        Some(body) => Response::decode(&body),
        None => Err(net_err("read-frame", "connection closed mid-conversation")),
    }
}

// ---------------------------------------------------------------------------
// Node-side counters
// ---------------------------------------------------------------------------

macro_rules! node_stats {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        #[derive(Default)]
        struct NodeStats {
            $($field: AtomicU64,)+
        }

        /// Plain snapshot of a node's counters, carried in
        /// `StatsReply` frames. Field order is the wire order; a
        /// shorter reply decodes with the missing tail fields zero, so
        /// the snapshot can grow without breaking older peers.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        #[allow(missing_docs)]
        pub struct NodeStatsSnapshot {
            $($(#[$doc])* pub $field: u64,)+
        }

        impl NodeStats {
            fn snapshot(&self) -> NodeStatsSnapshot {
                NodeStatsSnapshot {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                }
            }
        }

        impl NodeStatsSnapshot {
            fn fields(&self) -> Vec<u64> {
                vec![$(self.$field,)+]
            }

            fn from_fields(fields: &[u64]) -> Self {
                let mut it = fields.iter().copied();
                Self {
                    $($field: it.next().unwrap_or(0),)+
                }
            }
        }
    };
}

node_stats! {
    /// Client lookups offered to this node (single + batched).
    lookups,
    /// Lookups served from this node's own store.
    local,
    /// Lookups served by a peer's coordinated slice over the wire.
    peer,
    /// Lookups that fell through to origin.
    origin,
    /// Lookups refused because the node was not yet provisioned.
    shed,
    /// Peer-forward frames this node answered as holder.
    forwards_in,
    /// Forwards answered as holder hits.
    forward_hits,
    /// Forwards answered as holder misses.
    forward_misses,
    /// Peer-forward frames this node sent as client edge.
    forwards_out,
    /// Forward retries after a holder refused (backpressure).
    retried,
    /// Lookups routed to a rendezvous survivor instead of the primary.
    failed_over,
    /// Forwards abandoned because the deadline expired on the socket.
    deadline_expired,
    /// Forwards degraded to origin by socket failure or retry
    /// exhaustion.
    degraded,
    /// Peers this node marked down after consecutive socket failures.
    marked_down,
    /// Down peers restored by the background health prober.
    revived,
    /// Config epochs accepted (strictly newer than the current one).
    epochs_accepted,
    /// Connections accepted by the listener.
    connections,
    /// Completed forward round-trips with a measured RTT.
    rtt_count,
    /// Sum of measured forward RTTs, microseconds.
    rtt_sum_us,
    /// Minimum measured forward RTT, microseconds (0 if none).
    rtt_min_us,
    /// Maximum measured forward RTT, microseconds.
    rtt_max_us,
    /// The node's config epoch at snapshot time.
    epoch,
    /// `f64::to_bits` of the fitted Zipf exponent carried by the last
    /// accepted provisioning push (0 = static provisioning / no fit).
    /// Sits after `epoch` so an older peer's shorter reply still
    /// decodes with this tail field zero.
    fitted_s_bits,
}

impl NodeStats {
    fn add(&self, field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }

    fn record_rtt(&self, rtt: Duration) {
        let us = u64::try_from(rtt.as_micros()).unwrap_or(u64::MAX);
        self.rtt_count.fetch_add(1, Ordering::Relaxed);
        self.rtt_sum_us.fetch_add(us, Ordering::Relaxed);
        self.rtt_min_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(if cur == 0 { us } else { cur.min(us) })
            })
            .ok();
        self.rtt_max_us.fetch_max(us, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Peer links (client side of the forward path)
// ---------------------------------------------------------------------------

/// Verdict of one forward attempt over a peer link.
enum ForwardVerdict {
    Hit,
    Miss,
    Refused,
    TimedOut,
    Broken,
}

fn resolve(addr: &str) -> Result<SocketAddr, EngineError> {
    addr.to_socket_addrs()
        .map_err(|e| net_err("resolve", format!("{addr}: {e}")))?
        .next()
        .ok_or_else(|| net_err("resolve", format!("{addr}: no addresses")))
}

/// Floor for connect/read timeouts so a zero remaining budget still
/// maps to a valid socket timeout (`set_read_timeout` rejects zero).
const MIN_SOCKET_TIMEOUT: Duration = Duration::from_micros(50);

fn connect_hello(addr: &str, my_id: u32, timeout: Duration) -> Result<TcpStream, EngineError> {
    let sockaddr = resolve(addr)?;
    let timeout = timeout.max(MIN_SOCKET_TIMEOUT);
    let mut stream =
        TcpStream::connect_timeout(&sockaddr, timeout).map_err(|e| net_io_err("connect", &e))?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(timeout)).map_err(|e| net_io_err("connect", &e))?;
    send_request(&mut stream, &Request::Hello { node: my_id, version: PROTOCOL_VERSION })?;
    Ok(stream)
}

/// Wraps an `io::Error`, classifying timeouts from its *kind*: Linux
/// reports a socket read timeout as `WouldBlock` ("Resource
/// temporarily unavailable"), other platforms as `TimedOut` — the
/// display string is not portable, the kind is.
fn net_io_err(op: &str, e: &io::Error) -> EngineError {
    let timeout = matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut);
    EngineError::Net { op: op.to_owned(), detail: e.to_string(), timeout }
}

/// One outbound connection to a peer node, lazily established and
/// dropped on any failure (a timed-out stream may deliver a late
/// reply, which would desynchronize the framing — never reuse it).
struct PeerLink {
    node: usize,
    addr: String,
    stream: Mutex<Option<TcpStream>>,
    failures: AtomicU32,
}

impl PeerLink {
    fn new(node: usize, addr: String) -> Self {
        Self { node, addr, stream: Mutex::new(None), failures: AtomicU32::new(0) }
    }

    /// One rung of the ladder: forward `content` to this peer under
    /// `budget`, classifying the reply.
    fn forward(&self, my_id: u32, content: u64, budget: Duration) -> ForwardVerdict {
        let budget = budget.max(MIN_SOCKET_TIMEOUT);
        let mut guard = lock_recover(&self.stream);
        if guard.is_none() {
            match connect_hello(&self.addr, my_id, budget) {
                Ok(s) => *guard = Some(s),
                Err(e) if is_timeout(&e) => return ForwardVerdict::TimedOut,
                Err(_) => return ForwardVerdict::Broken,
            }
        }
        let Some(stream) = guard.as_mut() else {
            return ForwardVerdict::Broken;
        };
        let _ = stream.set_read_timeout(Some(budget));
        let budget_us = u32::try_from(budget.as_micros()).unwrap_or(u32::MAX);
        let result = send_request(stream, &Request::PeerForward { content, budget_us })
            .and_then(|()| recv_response(stream));
        match result {
            Ok(Response::ForwardReply { outcome: FWD_HIT }) => ForwardVerdict::Hit,
            Ok(Response::ForwardReply { outcome: FWD_MISS }) => ForwardVerdict::Miss,
            Ok(Response::ForwardReply { outcome: FWD_REFUSED }) | Ok(Response::Refused { .. }) => {
                ForwardVerdict::Refused
            }
            Ok(_) => {
                *guard = None;
                ForwardVerdict::Broken
            }
            Err(e) => {
                *guard = None;
                if is_timeout(&e) {
                    ForwardVerdict::TimedOut
                } else {
                    ForwardVerdict::Broken
                }
            }
        }
    }

    /// Health probe on a fresh short-lived connection (never the
    /// forward stream, whose framing a probe could interleave with).
    fn probe_health(&self, my_id: u32) -> Option<u64> {
        let mut stream = connect_hello(&self.addr, my_id, Duration::from_millis(100)).ok()?;
        send_request(&mut stream, &Request::HealthProbe).ok()?;
        match recv_response(&mut stream) {
            Ok(Response::HealthAck { epoch }) => Some(epoch),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Node server
// ---------------------------------------------------------------------------

/// Static configuration of one wire node process.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's id within the cluster (validated against the
    /// provisioned `nodes` at config-epoch time).
    pub id: usize,
    /// Listen address; `127.0.0.1:0` picks an ephemeral port, the
    /// bound address is reported by [`NodeServer::local_addr`].
    pub listen: String,
    /// Store shards (one pinned single-writer worker each).
    pub shards: usize,
    /// Per-shard ring capacity.
    pub queue_capacity: usize,
    /// Worker idle strategy.
    pub idle: IdleStrategy,
    /// Requested ring mode; resolved by [`wire_ring_mode`] — the wire
    /// listener forces MPSC (see module docs, *Ring discipline*).
    pub ring_mode: RingMode,
    /// Core placement for shard workers.
    pub placement: ShardPlacement,
    /// Degradation-ladder knobs for the forward path.
    pub degrade: DegradeConfig,
}

impl NodeConfig {
    /// Defaults for node `id`: one shard, 1024-slot rings, ephemeral
    /// loopback listener, default degradation ladder, no pinning.
    #[must_use]
    pub fn new(id: usize) -> Self {
        Self {
            id,
            listen: "127.0.0.1:0".to_owned(),
            shards: 1,
            queue_capacity: 1024,
            idle: IdleStrategy::spin_then_park(),
            ring_mode: RingMode::Auto,
            placement: ShardPlacement::disabled(),
            degrade: DegradeConfig::default(),
        }
    }
}

/// Resolves the requested ring mode for a node with the wire listener
/// enabled: remote producers (accepted connections) register after
/// any census seal, so `Auto` must not be allowed to demote to SPSC —
/// it resolves to MPSC — and explicit `Spsc` is rejected outright.
///
/// # Errors
///
/// [`EngineError::InvalidConfig`] for `Spsc`.
pub fn wire_ring_mode(requested: RingMode) -> Result<RingMode, EngineError> {
    match requested {
        RingMode::Auto | RingMode::Mpsc => Ok(RingMode::Mpsc),
        RingMode::Spsc => Err(EngineError::InvalidConfig {
            reason: "wire listener admits remote producers after the census seals; \
                     SPSC rings are not allowed on a node with the listener enabled"
                .into(),
        }),
    }
}

/// A provisioned node's runtime: store, routing view, and peer links,
/// swapped atomically as one unit at each accepted config epoch.
struct NodeEngine {
    provision: Provision,
    store: Arc<ShardedStore<()>>,
    handle: crate::shard::ShardHandle<()>,
    routing: LiveRouting,
    peers: Vec<Option<PeerLink>>,
    /// Producer lanes registered on `handle` for accepted
    /// connections, carried across same-layout epoch swaps so a
    /// re-provision registers only the *delta* — never the whole
    /// connection census again. Mutated under the `NodeShared::engine`
    /// read lock (accept path); read under the write lock
    /// ([`provision_node`]), so the delta is exact.
    lanes: AtomicU64,
}

struct NodeShared {
    config: NodeConfig,
    engine: RwLock<Option<Arc<NodeEngine>>>,
    epoch: AtomicU64,
    stats: NodeStats,
    shutdown: AtomicBool,
}

impl NodeShared {
    fn current_engine(&self) -> Option<Arc<NodeEngine>> {
        self.engine.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }
}

fn make_node_store(
    p: &Provision,
    my_slice: Option<&SliceAssignment>,
    shards: usize,
    shard: usize,
) -> Box<dyn ContentStore> {
    match p.policy {
        StorePolicy::Provisioned => {
            let (start, end) = my_slice.map_or((0, 0), |s| (s.start, s.end));
            let pinned = (1..=p.prefix)
                .chain(start..end)
                .map(ContentId)
                .filter(|&c| shard_of(c, shards) == shard);
            Box::new(StaticStore::new(pinned))
        }
        StorePolicy::Lru => {
            let base = p.capacity / shards as u64;
            let extra = u64::from((shard as u64) < p.capacity % shards as u64);
            #[allow(clippy::cast_possible_truncation)]
            let capacity = ((base + extra).max(1)) as usize;
            Box::new(LruStore::new(capacity))
        }
    }
}

fn build_store(
    config: &NodeConfig,
    p: &Provision,
) -> Result<(Arc<ShardedStore<()>>, crate::shard::ShardHandle<()>), EngineError> {
    let shards = config.shards;
    let mode = wire_ring_mode(config.ring_mode)?;
    let mut spec = ShardSpec::new(shards, config.queue_capacity).idle(config.idle).ring_mode(mode);
    if config.placement.pin() {
        spec = spec.pin_cores(
            (0..shards).map(|s| Some(config.placement.worker_core(config.id, shards, s))).collect(),
        );
    }
    let my_slice = p.slices.iter().find(|s| s.node as usize == config.id);
    let store = ShardedStore::try_spawn_with(
        spec,
        |shard| make_node_store(p, my_slice, shards, shard),
        Arc::new(|_store: &mut dyn ContentStore, _job: ()| {}),
    )?;
    let handle = store.handle();
    Ok((Arc::new(store), handle))
}

fn provision_node(shared: &NodeShared, p: Provision) -> Result<u64, EngineError> {
    let mut guard = shared.engine.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    let current = shared.epoch.load(Ordering::Acquire);
    if p.epoch <= current {
        return Ok(current);
    }
    if shared.config.id >= p.nodes as usize {
        return Err(EngineError::InvalidConfig {
            reason: format!(
                "node id {} outside provisioned cluster of {} nodes",
                shared.config.id, p.nodes
            ),
        });
    }
    let assignments: Vec<ccn_coord::RouterAssignment> = p
        .slices
        .iter()
        .map(|s| ccn_coord::RouterAssignment {
            router: s.node as usize,
            local_prefix: p.prefix,
            slice: s.start..s.end,
        })
        .collect();
    let table = RoutingTable::from_assignments(&assignments, p.nodes as usize)?;
    // An epoch with an identical store layout (the common case:
    // re-provisioning survivors after a revival changed only peer
    // addresses) keeps the store, preserving cache warmth; a layout
    // change rebuilds it.
    let (store, handle, lanes) = match guard.as_ref() {
        Some(old) if old.provision.same_layout(&p) => {
            (old.store.clone(), old.handle.clone(), old.lanes.load(Ordering::Relaxed))
        }
        _ => {
            let (store, handle) = build_store(&shared.config, &p)?;
            (store, handle, 0)
        }
    };
    // Keep the producer census honest: one lane per connection the
    // listener has already accepted (see module docs, *Ring
    // discipline* — under the forced-MPSC mode this is a no-op, but
    // it is the contract a future demotion-capable mode must honour).
    // A kept same-layout store already carries lanes for every
    // connection accepted so far, so only the delta (connections that
    // arrived before any engine existed) is registered — re-running
    // the full census here would overcount on each re-provision.
    let connections = shared.stats.connections.load(Ordering::Relaxed);
    for _ in lanes..connections {
        handle.register_producer()?;
    }
    let peers = (0..p.nodes as usize)
        .map(|n| {
            if n == shared.config.id {
                None
            } else {
                p.peers.get(n).map(|addr| PeerLink::new(n, addr.clone()))
            }
        })
        .collect();
    let engine = Arc::new(NodeEngine {
        routing: LiveRouting::new(table),
        provision: p.clone(),
        store,
        handle,
        peers,
        lanes: AtomicU64::new(connections.max(lanes)),
    });
    *guard = Some(engine);
    shared.epoch.store(p.epoch, Ordering::Release);
    shared.stats.add(&shared.stats.epochs_accepted);
    shared.stats.epoch.store(p.epoch, Ordering::Relaxed);
    shared.stats.fitted_s_bits.store(p.fitted_s.to_bits(), Ordering::Relaxed);
    Ok(p.epoch)
}

/// Marks `holder` down once the consecutive-failure streak crosses
/// the configured threshold, bumping the routing epoch so HRW
/// failover moves exactly that node's share.
fn note_forward_failure(shared: &NodeShared, engine: &NodeEngine, holder: usize) {
    if shared.config.degrade.timeout_threshold == 0 {
        return;
    }
    let Some(link) = engine.peers.get(holder).and_then(Option::as_ref) else {
        return;
    };
    let streak = link.failures.fetch_add(1, Ordering::Relaxed) + 1;
    if streak >= shared.config.degrade.timeout_threshold
        && engine.routing.set_live(holder, false).is_some()
    {
        shared.stats.add(&shared.stats.marked_down);
    }
}

/// Serves one client lookup at this node, returning the tier code.
fn serve_one(shared: &NodeShared, engine: &NodeEngine, content: u64) -> u8 {
    let stats = &shared.stats;
    stats.add(&stats.lookups);
    let id = ContentId(content);
    if engine.handle.probe(id) {
        stats.add(&stats.local);
        return TIER_LOCAL;
    }
    let me = shared.config.id;
    match engine.routing.holder(id) {
        Some(holder) if holder != me => {
            if engine.routing.primary(id) != Some(holder) {
                stats.add(&stats.failed_over);
            }
            let Some(link) = engine.peers.get(holder).and_then(Option::as_ref) else {
                stats.add(&stats.degraded);
                stats.add(&stats.origin);
                return TIER_ORIGIN;
            };
            let issued = Instant::now();
            let deadline = shared.config.degrade.forward_deadline;
            let mut attempt = 0u32;
            loop {
                let remaining = deadline.saturating_sub(issued.elapsed());
                if remaining.is_zero() {
                    stats.add(&stats.deadline_expired);
                    break;
                }
                stats.add(&stats.forwards_out);
                let sent = Instant::now();
                match link.forward(me as u32, content, remaining) {
                    ForwardVerdict::Hit => {
                        link.failures.store(0, Ordering::Relaxed);
                        stats.record_rtt(sent.elapsed());
                        stats.add(&stats.peer);
                        return TIER_PEER;
                    }
                    ForwardVerdict::Miss => {
                        link.failures.store(0, Ordering::Relaxed);
                        stats.record_rtt(sent.elapsed());
                        stats.add(&stats.origin);
                        return TIER_ORIGIN;
                    }
                    ForwardVerdict::Refused => {
                        if attempt >= shared.config.degrade.forward_retries {
                            stats.add(&stats.degraded);
                            break;
                        }
                        attempt += 1;
                        stats.add(&stats.retried);
                        std::thread::sleep(shared.config.degrade.retry_backoff * attempt);
                    }
                    ForwardVerdict::TimedOut => {
                        note_forward_failure(shared, engine, holder);
                        stats.add(&stats.deadline_expired);
                        break;
                    }
                    ForwardVerdict::Broken => {
                        note_forward_failure(shared, engine, holder);
                        stats.add(&stats.degraded);
                        break;
                    }
                }
            }
            stats.add(&stats.origin);
            TIER_ORIGIN
        }
        _ => {
            // Uncoordinated content (or this node is the holder and
            // missed): origin serves; under LRU the edge admits it,
            // mirroring the in-process cluster.
            if engine.provision.policy == StorePolicy::Lru {
                engine.handle.apply(id);
            }
            stats.add(&stats.origin);
            TIER_ORIGIN
        }
    }
}

/// One router as a standalone wire-serving process (or thread, for
/// in-process tests): binds, then [`NodeServer::run`] serves until a
/// `Shutdown` frame arrives.
pub struct NodeServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<NodeShared>,
}

impl NodeServer {
    /// Binds the listener (validating the ring mode up front) without
    /// serving yet.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] for an SPSC ring mode,
    /// [`EngineError::Net`] if the bind fails.
    pub fn bind(config: NodeConfig) -> Result<Self, EngineError> {
        wire_ring_mode(config.ring_mode)?;
        if config.shards == 0 || config.queue_capacity == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "node needs at least one shard and a non-empty queue".into(),
            });
        }
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| net_err("bind", format!("{}: {e}", config.listen)))?;
        let local_addr = listener.local_addr().map_err(|e| net_io_err("bind", &e))?;
        listener.set_nonblocking(true).map_err(|e| net_io_err("bind", &e))?;
        let shared = Arc::new(NodeShared {
            config,
            engine: RwLock::new(None),
            epoch: AtomicU64::new(0),
            stats: NodeStats::default(),
            shutdown: AtomicBool::new(false),
        });
        Ok(Self { listener, local_addr, shared })
    }

    /// The bound listen address (resolves `:0` to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests shutdown from another thread (tests); the serve loop
    /// notices within one accept-poll interval.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Serves until a `Shutdown` frame (or [`Self::request_shutdown`])
    /// stops the loop, then returns the final counter snapshot.
    ///
    /// # Errors
    ///
    /// [`EngineError::Net`] if the listener itself fails; per-
    /// connection failures only drop that connection.
    pub fn run(&self) -> Result<NodeStatsSnapshot, EngineError> {
        let shared = &self.shared;
        std::thread::scope(|scope| {
            scope.spawn(|| health_prober(shared));
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        // Count + pre-register this connection's
                        // producer lane (before any of its traffic
                        // reaches the rings) under the engine read
                        // lock: a concurrent config epoch holds the
                        // write lock, so it sees either both effects
                        // or neither and its census delta stays exact.
                        {
                            let guard = shared
                                .engine
                                .read()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            shared.stats.add(&shared.stats.connections);
                            if let Some(engine) = guard.as_ref() {
                                if engine.handle.register_producer().is_ok() {
                                    engine.lanes.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        scope.spawn(move || serve_conn(shared, stream));
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::Interrupted =>
                    {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => {
                        shared.shutdown.store(true, Ordering::Release);
                        return Err(net_io_err("accept", &e));
                    }
                }
            }
            Ok(())
        })?;
        shared.stats.epoch.store(shared.epoch.load(Ordering::Acquire), Ordering::Relaxed);
        Ok(shared.stats.snapshot())
    }
}

/// Background prober: pings peers this node has marked down and
/// restores them in the routing view when they answer again. This is
/// the wire tier's analogue of the in-process op-count probation —
/// wall-clock because a dead *process* produces no ops to count.
fn health_prober(shared: &NodeShared) {
    let my_id = shared.config.id as u32;
    while !shared.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(25));
        let Some(engine) = shared.current_engine() else {
            continue;
        };
        for link in engine.peers.iter().flatten() {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if engine.routing.is_live(link.node) {
                continue;
            }
            if link.probe_health(my_id).is_some() {
                link.failures.store(0, Ordering::Relaxed);
                if engine.routing.set_live(link.node, true).is_some() {
                    shared.stats.add(&shared.stats.revived);
                }
            }
        }
    }
}

/// Reads the next frame, retrying idle timeouts until shutdown. A
/// timeout can only be treated as idle on a frame boundary; frames
/// are small enough (≤ [`MAX_FRAME`]) that a mid-frame stall means
/// the peer is gone and the connection is dropped by the caller.
fn read_frame_idle(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Option<Vec<u8>>, EngineError> {
    loop {
        match read_frame(stream) {
            Ok(v) => return Ok(v),
            Err(e) if is_timeout(&e) => {
                if shutdown.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn serve_conn(shared: &NodeShared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    loop {
        let body = match read_frame_idle(&mut stream, &shared.shutdown) {
            Ok(Some(body)) => body,
            Ok(None) | Err(_) => return,
        };
        let request = match Request::decode(&body) {
            Ok(r) => r,
            Err(e) => {
                // A malformed frame poisons the framing; answer once
                // and drop the connection.
                let refuse = Response::Refused { reason: e.to_string() };
                if let Ok(frame) = refuse.encode() {
                    let _ = write_frame(&mut stream, &frame);
                }
                return;
            }
        };
        let response = match handle_request(shared, request) {
            Ok(None) => continue, // Hello: preamble, no reply.
            Ok(Some(resp)) => resp,
            Err(e) => Response::Refused { reason: e.to_string() },
        };
        let should_close = response == Response::Bye;
        match response.encode() {
            Ok(frame) => {
                if write_frame(&mut stream, &frame).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
        if should_close {
            return;
        }
    }
}

fn handle_request(shared: &NodeShared, request: Request) -> Result<Option<Response>, EngineError> {
    let stats = &shared.stats;
    match request {
        Request::Hello { .. } => {
            // The producer lane was pre-registered at accept; the
            // preamble just identifies the peer. No reply — the
            // sender pipelines its first forward immediately.
            Ok(None)
        }
        Request::ConfigEpoch(p) => {
            let epoch = provision_node(shared, p)?;
            Ok(Some(Response::EpochAck { epoch }))
        }
        Request::Lookup { content } => match shared.current_engine() {
            Some(engine) => {
                Ok(Some(Response::Served { tier: serve_one(shared, &engine, content) }))
            }
            None => {
                stats.add(&stats.lookups);
                stats.add(&stats.shed);
                Ok(Some(Response::Refused { reason: "node not provisioned".into() }))
            }
        },
        Request::BatchLookup { contents } => {
            let Some(engine) = shared.current_engine() else {
                let n = contents.len() as u64;
                stats.lookups.fetch_add(n, Ordering::Relaxed);
                stats.shed.fetch_add(n, Ordering::Relaxed);
                return Ok(Some(Response::BatchServed { local: 0, peer: 0, origin: 0, shed: n }));
            };
            let ids: Vec<ContentId> = contents.iter().map(|&c| ContentId(c)).collect();
            let mut hits = Vec::with_capacity(ids.len());
            engine.handle.probe_batch(&ids, &mut hits);
            let (mut local, mut peer, mut origin) = (0u64, 0u64, 0u64);
            for (i, &content) in contents.iter().enumerate() {
                if hits.get(i).copied().unwrap_or(false) {
                    stats.add(&stats.lookups);
                    stats.add(&stats.local);
                    local += 1;
                } else {
                    match serve_one(shared, &engine, content) {
                        TIER_LOCAL => local += 1,
                        TIER_PEER => peer += 1,
                        _ => origin += 1,
                    }
                }
            }
            Ok(Some(Response::BatchServed { local, peer, origin, shed: 0 }))
        }
        Request::PeerForward { content, .. } => {
            let Some(engine) = shared.current_engine() else {
                return Ok(Some(Response::ForwardReply { outcome: FWD_REFUSED }));
            };
            stats.add(&stats.forwards_in);
            let id = ContentId(content);
            if engine.handle.probe(id) {
                stats.add(&stats.forward_hits);
                Ok(Some(Response::ForwardReply { outcome: FWD_HIT }))
            } else {
                // Holder miss: origin serves at the requesting edge;
                // under LRU the holder admits its coordinated content
                // so traffic attracts the slice into place.
                if engine.provision.policy == StorePolicy::Lru
                    && engine.routing.holder(id) == Some(shared.config.id)
                {
                    engine.handle.apply(id);
                }
                stats.add(&stats.forward_misses);
                Ok(Some(Response::ForwardReply { outcome: FWD_MISS }))
            }
        }
        Request::HealthProbe => {
            Ok(Some(Response::HealthAck { epoch: shared.epoch.load(Ordering::Acquire) }))
        }
        Request::Stats => {
            shared.stats.epoch.store(shared.epoch.load(Ordering::Acquire), Ordering::Relaxed);
            Ok(Some(Response::StatsReply(shared.stats.snapshot())))
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            Ok(Some(Response::Bye))
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator / driver
// ---------------------------------------------------------------------------

/// How the driver brings up node serving loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeLaunch {
    /// Node servers run as threads inside the driver process —
    /// exercises the full wire path over loopback without child
    /// processes. Kill/revive faults are not available (a thread
    /// cannot be SIGKILLed).
    InProcess,
    /// Node servers run as `ccn node` child processes spawned from
    /// this executable path; kill faults SIGKILL the process.
    Exe(PathBuf),
}

/// One scheduled process-level fault, triggered when the cluster-wide
/// offered-request count crosses `at_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFault {
    /// Offered-op threshold that triggers the fault.
    pub at_op: u64,
    /// What happens.
    pub kind: WireFaultKind,
}

/// Process-level fault kinds for the wire driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFaultKind {
    /// SIGKILL node `n`'s process (no warning, no drain).
    Kill(usize),
    /// Respawn node `n` and re-provision the cluster under a bumped
    /// config epoch.
    Revive(usize),
}

impl std::fmt::Display for WireFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFaultKind::Kill(n) => write!(f, "kill:{n}"),
            WireFaultKind::Revive(n) => write!(f, "revive:{n}"),
        }
    }
}

/// Full specification of a wire-mode serving benchmark.
#[derive(Debug, Clone)]
pub struct WireSpec {
    /// Cluster size.
    pub nodes: usize,
    /// Store shards per node.
    pub shards_per_node: usize,
    /// Per-shard ring capacity.
    pub queue_capacity: usize,
    /// Catalogue size.
    pub catalogue: u64,
    /// Per-node store capacity `c`.
    pub capacity: u64,
    /// Coordinated fraction `ℓ = x/c`.
    pub ell: f64,
    /// Store population policy.
    pub policy: StorePolicy,
    /// Zipf exponent of the request stream.
    pub zipf_s: f64,
    /// Per-node client request rate, requests per millisecond.
    pub rate_per_node_per_ms: f64,
    /// Workload horizon, milliseconds.
    pub horizon_ms: f64,
    /// Pace requests to their Poisson arrival times (false = drive
    /// as fast as the wire allows).
    pub paced: bool,
    /// Workload seed — the driver draws the identical
    /// `zipf_irm(&[0..nodes], …)` stream as the in-process
    /// [`crate::load::OpenLoopConfig`] with one generator, so wire
    /// and in-process runs are comparable request-for-request.
    pub seed: u64,
    /// Requests per `BatchLookup` frame.
    pub batch: usize,
    /// Node worker idle strategy.
    pub idle: IdleStrategy,
    /// Requested ring mode (nodes resolve it via [`wire_ring_mode`]).
    pub ring_mode: RingMode,
    /// Core placement passed through to node processes.
    pub placement: ShardPlacement,
    /// Degradation-ladder knobs passed through to node processes.
    pub degrade: DegradeConfig,
    /// Scheduled kill/revive faults (requires [`NodeLaunch::Exe`]).
    pub faults: Vec<WireFault>,
    /// How node serving loops are brought up.
    pub launch: NodeLaunch,
    /// Run the adaptive-provisioning controller on the driver: sample
    /// offered ranks, re-fit the exponent, and stage budgeted config
    /// epochs to every live node ([`crate::control`]).
    pub adapt: Option<ControllerConfig>,
}

impl WireSpec {
    /// Defaults mirroring the in-process serve-bench smoke settings.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            shards_per_node: 1,
            queue_capacity: 1024,
            catalogue: 10_000,
            capacity: 100,
            ell: 0.5,
            policy: StorePolicy::Provisioned,
            zipf_s: 0.8,
            rate_per_node_per_ms: 0.5,
            horizon_ms: 1_000.0,
            paced: false,
            seed: 42,
            batch: 64,
            idle: IdleStrategy::spin_then_park(),
            ring_mode: RingMode::Auto,
            placement: ShardPlacement::disabled(),
            degrade: DegradeConfig::default(),
            faults: Vec::new(),
            launch: NodeLaunch::InProcess,
            adapt: None,
        }
    }

    /// Coordinated slots per node, `x = round(ℓ·c)` — the identical
    /// rounding as [`crate::ClusterConfig::x`].
    #[must_use]
    pub fn x(&self) -> u64 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (self.ell * self.capacity as f64).round() as u64
        }
    }

    /// Local popularity prefix `c − x`.
    #[must_use]
    pub fn local_prefix(&self) -> u64 {
        self.capacity - self.x()
    }

    /// Builds the provisioning push for `epoch` with the given peer
    /// address list (one entry per node, indexed by id).
    #[must_use]
    pub fn provision(&self, epoch: u64, peers: Vec<String>) -> Provision {
        let x = self.x();
        let prefix = self.local_prefix();
        let slices = contiguous_slices(prefix, prefix + 1, x, self.nodes)
            .into_iter()
            .map(|a| SliceAssignment {
                node: a.router as u32,
                start: a.slice.start,
                end: a.slice.end,
            })
            .collect();
        Provision {
            epoch,
            nodes: self.nodes as u32,
            catalogue: self.catalogue,
            capacity: self.capacity,
            prefix,
            x,
            fitted_s: 0.0,
            policy: self.policy,
            slices,
            peers,
        }
    }

    fn validate(&self) -> Result<(), EngineError> {
        let invalid = |reason: String| Err(EngineError::InvalidConfig { reason });
        if self.nodes == 0 {
            return invalid("need at least one node".into());
        }
        if self.capacity == 0 {
            return invalid("need a non-zero store capacity".into());
        }
        if !(0.0..=1.0).contains(&self.ell) || self.ell.is_nan() {
            return invalid(format!("ell {} outside [0, 1]", self.ell));
        }
        if self.batch == 0 {
            return invalid("batch must be >= 1".into());
        }
        let coordinated_end = self.local_prefix() + self.nodes as u64 * self.x();
        if coordinated_end > self.catalogue {
            return invalid(format!(
                "catalogue {} too small for prefix + {} slices of x = {}",
                self.catalogue,
                self.nodes,
                self.x()
            ));
        }
        wire_ring_mode(self.ring_mode)?;
        if let Some(adapt) = &self.adapt {
            adapt.validate(self.nodes)?;
        }
        let mut dead = vec![false; self.nodes];
        let mut last_op = 0u64;
        for fault in &self.faults {
            if fault.at_op < last_op {
                return Err(EngineError::FaultSpec {
                    reason: "wire faults must be sorted by at_op".into(),
                });
            }
            last_op = fault.at_op;
            match fault.kind {
                WireFaultKind::Kill(n) => {
                    if n >= self.nodes {
                        return Err(EngineError::FaultSpec {
                            reason: format!("kill references node {n} of {}", self.nodes),
                        });
                    }
                    if dead[n] {
                        return Err(EngineError::FaultSpec {
                            reason: format!("node {n} killed twice without a revive"),
                        });
                    }
                    dead[n] = true;
                }
                WireFaultKind::Revive(n) => {
                    if n >= self.nodes {
                        return Err(EngineError::FaultSpec {
                            reason: format!("revive references node {n} of {}", self.nodes),
                        });
                    }
                    if !dead[n] {
                        return Err(EngineError::FaultSpec {
                            reason: format!("revive of node {n} without a prior kill"),
                        });
                    }
                    dead[n] = false;
                }
            }
        }
        if !self.faults.is_empty() && self.launch == NodeLaunch::InProcess {
            return Err(EngineError::FaultSpec {
                reason: "kill/revive faults need child processes (NodeLaunch::Exe); \
                         an in-process node thread cannot be SIGKILLed"
                    .into(),
            });
        }
        Ok(())
    }
}

/// Per-node driver-side tier ledger. `offered` counts every request
/// the driver issued for this node's clients; each lands in exactly
/// one of the other buckets, so `offered == completed() + shed`
/// bit-exactly by construction — including requests offered to a
/// SIGKILLed node, which are shed at the driver edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireLedger {
    /// Requests issued by this node's clients.
    pub offered: u64,
    /// Served from the node's own store.
    pub local: u64,
    /// Served by a peer's coordinated slice.
    pub peer: u64,
    /// Fell through to origin.
    pub origin: u64,
    /// Shed: offered to a dead or unreachable node.
    pub shed: u64,
}

impl WireLedger {
    /// Requests completed by some tier.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.local + self.peer + self.origin
    }

    /// Per-field difference `self − earlier` (saturating), for
    /// post-revival tail windows.
    #[must_use]
    pub fn since(&self, earlier: &WireLedger) -> WireLedger {
        WireLedger {
            offered: self.offered.saturating_sub(earlier.offered),
            local: self.local.saturating_sub(earlier.local),
            peer: self.peer.saturating_sub(earlier.peer),
            origin: self.origin.saturating_sub(earlier.origin),
            shed: self.shed.saturating_sub(earlier.shed),
        }
    }
}

#[derive(Default)]
struct LedgerCells {
    offered: AtomicU64,
    local: AtomicU64,
    peer: AtomicU64,
    origin: AtomicU64,
    shed: AtomicU64,
}

impl LedgerCells {
    fn snapshot(&self) -> WireLedger {
        WireLedger {
            offered: self.offered.load(Ordering::Relaxed),
            local: self.local.load(Ordering::Relaxed),
            peer: self.peer.load(Ordering::Relaxed),
            origin: self.origin.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

/// Results of one wire-mode benchmark run.
#[derive(Debug, Clone)]
pub struct WireOutcome {
    /// Cluster size.
    pub nodes: usize,
    /// Final config epoch (1 + one bump per revival).
    pub epoch: u64,
    /// Final listen address of every node.
    pub listen_addrs: Vec<String>,
    /// Per-node driver ledgers for the whole run.
    pub per_node: Vec<WireLedger>,
    /// Per-node ledgers counting only traffic after the last revival
    /// re-provision (present iff a revival happened) — the window the
    /// re-convergence acceptance check evaluates.
    pub tail_per_node: Option<Vec<WireLedger>>,
    /// Final node-side counter snapshots (None for a node that was
    /// dead at collection time).
    pub node_stats: Vec<Option<NodeStatsSnapshot>>,
    /// Applied faults, `"kill:1@2000"` style.
    pub fault_log: Vec<String>,
    /// Wall-clock duration of the driven phase, milliseconds.
    pub wall_ms: f64,
    /// Decision log and counters of the driver-side adaptive
    /// controller (present iff [`WireSpec::adapt`] was set).
    pub controller: Option<ControllerReport>,
}

impl WireOutcome {
    /// Total requests offered across all nodes.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.per_node.iter().map(|l| l.offered).sum()
    }

    /// Total requests completed by some tier.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.per_node.iter().map(WireLedger::completed).sum()
    }

    /// Total requests shed at the driver edge.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.per_node.iter().map(|l| l.shed).sum()
    }

    /// Verifies `offered == completed + shed`, per node and in total.
    ///
    /// # Errors
    ///
    /// [`EngineError::Accounting`] with the offending totals.
    pub fn check_conservation(&self) -> Result<(), EngineError> {
        for ledger in &self.per_node {
            if ledger.offered != ledger.completed() + ledger.shed {
                return Err(EngineError::Accounting {
                    offered: ledger.offered,
                    completed: ledger.completed(),
                    shed: ledger.shed,
                });
            }
        }
        Ok(())
    }

    /// `(local, peer, origin)` fractions of completed requests over
    /// the given ledgers (the whole run, or a tail window).
    #[must_use]
    pub fn tier_fractions(ledgers: &[WireLedger]) -> (f64, f64, f64) {
        let completed: u64 = ledgers.iter().map(WireLedger::completed).sum();
        if completed == 0 {
            return (0.0, 0.0, 0.0);
        }
        #[allow(clippy::cast_precision_loss)]
        let frac = |v: u64| v as f64 / completed as f64;
        (
            frac(ledgers.iter().map(|l| l.local).sum()),
            frac(ledgers.iter().map(|l| l.peer).sum()),
            frac(ledgers.iter().map(|l| l.origin).sum()),
        )
    }
}

enum RunningNode {
    Proc {
        child: Child,
        // Keeps the stdout pipe open so the child's final summary
        // print cannot fail with a broken pipe.
        _stdout: Option<io::BufReader<std::process::ChildStdout>>,
    },
    Thread {
        server: Arc<NodeServer>,
        join: std::thread::JoinHandle<Result<NodeStatsSnapshot, EngineError>>,
    },
}

struct NodeSlot {
    addr: String,
    generation: u64,
    alive: bool,
}

/// The coordinator's single epoch authority, shared between the
/// adaptive controller and the fault supervisor. Both issue config
/// epochs; every bump-and-push happens under this lock, so epoch
/// order equals layout order and a node applying the highest epoch it
/// saw holds the newest layout.
struct WireCtl {
    epoch: u64,
    /// The cumulative layout as of `epoch` — for an in-flight
    /// incremental chain, the sum of every step issued so far.
    assignments: Vec<RouterAssignment>,
    fitted_s: f64,
}

impl WireCtl {
    /// Builds the provisioning push for the current cumulative layout.
    /// This is also the revival path: a node that was SIGKILLed
    /// mid-chain and missed epochs receives the chain's *current*
    /// state under the newest epoch — the partial chain re-pushed as
    /// one frame.
    fn provision(&self, spec: &WireSpec, peers: Vec<String>) -> Provision {
        let prefix = self.assignments.first().map_or(0, |a| a.local_prefix);
        let x = self.assignments.iter().map(|a| a.slice.end - a.slice.start).max().unwrap_or(0);
        Provision {
            epoch: self.epoch,
            nodes: spec.nodes as u32,
            catalogue: spec.catalogue,
            capacity: spec.capacity,
            prefix,
            x,
            fitted_s: self.fitted_s,
            policy: spec.policy,
            slices: self
                .assignments
                .iter()
                .map(|a| SliceAssignment {
                    node: a.router as u32,
                    start: a.slice.start,
                    end: a.slice.end,
                })
                .collect(),
            peers,
        }
    }
}

/// Installs one controller chain step cluster-wide: bumps the epoch,
/// records the new cumulative layout, and pushes it to every node
/// whose slot is alive. A push to a node that died under the
/// supervisor's feet simply fails — the revival path re-pushes the
/// then-current layout. The [`WireCtl`] lock is held across the
/// pushes to serialize with revival provisioning.
fn push_wire_step(
    spec: &WireSpec,
    ctl: &Mutex<WireCtl>,
    slots: &[Mutex<NodeSlot>],
    step: &LayoutStep,
    fitted_s: Option<f64>,
) {
    let mut ctl = lock_recover(ctl);
    ctl.epoch += 1;
    ctl.assignments = step.assignments.clone();
    if let Some(s) = fitted_s {
        ctl.fitted_s = s;
    }
    let snapshot: Vec<(String, bool)> = slots
        .iter()
        .map(|slot| {
            let slot = lock_recover(slot);
            (slot.addr.clone(), slot.alive)
        })
        .collect();
    let push = ctl.provision(spec, snapshot.iter().map(|(addr, _)| addr.clone()).collect());
    for (addr, alive) in &snapshot {
        if *alive {
            let _ = push_epoch_to(addr, &push);
        }
    }
}

fn connect_driver(addr: &str, timeout: Duration) -> Result<TcpStream, EngineError> {
    let sockaddr = resolve(addr)?;
    let stream = TcpStream::connect_timeout(&sockaddr, timeout.max(MIN_SOCKET_TIMEOUT))
        .map_err(|e| net_io_err("connect", &e))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(timeout.max(MIN_SOCKET_TIMEOUT)))
        .map_err(|e| net_io_err("connect", &e))?;
    Ok(stream)
}

fn push_epoch_to(addr: &str, provision: &Provision) -> Result<(), EngineError> {
    let mut stream = connect_driver(addr, Duration::from_secs(5))?;
    send_request(&mut stream, &Request::ConfigEpoch(provision.clone()))?;
    match recv_response(&mut stream)? {
        Response::EpochAck { epoch } if epoch >= provision.epoch => Ok(()),
        Response::EpochAck { epoch } => Err(proto_err(format!(
            "node at {addr} acked epoch {epoch} after a push of {}",
            provision.epoch
        ))),
        Response::Refused { reason } => Err(proto_err(format!("epoch push refused: {reason}"))),
        other => Err(proto_err(format!("unexpected reply to epoch push: {other:?}"))),
    }
}

fn spawn_thread_node(spec: &WireSpec, id: usize) -> Result<(RunningNode, String), EngineError> {
    let mut config = NodeConfig::new(id);
    config.shards = spec.shards_per_node;
    config.queue_capacity = spec.queue_capacity;
    config.idle = spec.idle;
    config.ring_mode = spec.ring_mode;
    config.placement = spec.placement;
    config.degrade = spec.degrade;
    let server = Arc::new(NodeServer::bind(config)?);
    let addr = server.local_addr().to_string();
    let runner = Arc::clone(&server);
    let join = std::thread::Builder::new()
        .name(format!("wire-node-{id}"))
        .spawn(move || runner.run())
        .map_err(|e| EngineError::Spawn { reason: e.to_string() })?;
    Ok((RunningNode::Thread { server, join }, addr))
}

/// How long the driver waits for a spawned node process to print its
/// `READY <addr>` line before giving up and killing it.
const READY_TIMEOUT: Duration = Duration::from_secs(15);

fn spawn_proc_node(
    exe: &PathBuf,
    spec: &WireSpec,
    id: usize,
) -> Result<(RunningNode, String), EngineError> {
    let mut cmd = Command::new(exe);
    cmd.arg("node")
        .args(["--id", &id.to_string()])
        .args(["--listen", "127.0.0.1:0"])
        .args(["--shards", &spec.shards_per_node.to_string()])
        .args(["--queue", &spec.queue_capacity.to_string()])
        .args(["--idle", &spec.idle.name()])
        .args(["--ring-mode", spec.ring_mode.name()])
        .args(["--deadline-us", &spec.degrade.forward_deadline.as_micros().to_string()])
        .args(["--retries", &spec.degrade.forward_retries.to_string()])
        .args(["--backoff-us", &spec.degrade.retry_backoff.as_micros().to_string()])
        .args(["--timeout-threshold", &spec.degrade.timeout_threshold.to_string()]);
    if spec.placement.pin() {
        cmd.args(["--cores", &spec.placement.cores().to_string()]).args(["--pin", "true"]);
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
    let mut child = cmd.spawn().map_err(|e| net_err("spawn-node", e))?;
    let Some(stdout) = child.stdout.take() else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(net_err("spawn-node", "child stdout was not piped"));
    };
    // Read the READY line on a helper thread so a child that starts
    // but never reports cannot hang the whole bench.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = io::BufReader::new(stdout);
        let mut line = String::new();
        let result = reader.read_line(&mut line);
        let _ = tx.send((result.map(|_| line), reader));
    });
    match rx.recv_timeout(READY_TIMEOUT) {
        Ok((Ok(line), reader)) => {
            let addr = line.trim().strip_prefix("READY ").map(str::to_owned).ok_or_else(|| {
                let _ = child.kill();
                let _ = child.wait();
                net_err(
                    "spawn-node",
                    format!("node {id} reported {:?}, expected READY", line.trim()),
                )
            })?;
            Ok((RunningNode::Proc { child, _stdout: Some(reader) }, addr))
        }
        Ok((Err(e), _)) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(net_err("spawn-node", format!("node {id} stdout failed: {e}")))
        }
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(net_err(
                "spawn-node",
                format!("node {id} did not report READY within {READY_TIMEOUT:?}"),
            ))
        }
    }
}

fn spawn_node(spec: &WireSpec, id: usize) -> Result<(RunningNode, String), EngineError> {
    match &spec.launch {
        NodeLaunch::InProcess => spawn_thread_node(spec, id),
        NodeLaunch::Exe(exe) => spawn_proc_node(exe, spec, id),
    }
}

/// Hard bring-up abort: kills child processes (dropping a `Child`
/// does *not* kill it — skipping this would orphan `ccn node`
/// processes that serve forever) and joins thread nodes.
fn teardown_nodes(running: Vec<Option<RunningNode>>) {
    for node in running.into_iter().flatten() {
        match node {
            RunningNode::Proc { mut child, .. } => {
                let _ = child.kill();
                let _ = child.wait();
            }
            RunningNode::Thread { server, join } => {
                server.request_shutdown();
                let _ = join.join();
            }
        }
    }
}

fn stop_node(running: RunningNode) -> Option<NodeStatsSnapshot> {
    match running {
        RunningNode::Proc { mut child, _stdout } => {
            let deadline = Instant::now() + Duration::from_secs(3);
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => return None,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return None;
                    }
                }
            }
        }
        RunningNode::Thread { server, join } => {
            server.request_shutdown();
            join.join().ok().and_then(Result::ok)
        }
    }
}

fn pace(start: Instant, at_ms: f64) {
    let target = start + Duration::from_secs_f64(at_ms.max(0.0) / 1000.0);
    let now = Instant::now();
    if target > now {
        std::thread::sleep(target - now);
    }
}

/// Sends one batch to the node currently occupying `slot`, lazily
/// (re)connecting when the slot's address or generation changed.
/// `None` means the whole batch must be shed at the driver edge.
fn send_batch(
    conn: &mut Option<(TcpStream, u64)>,
    slot: &Mutex<NodeSlot>,
    contents: Vec<u64>,
    timeout: Duration,
) -> Option<(u64, u64, u64, u64)> {
    let expected = contents.len() as u64;
    let (addr, generation, alive) = {
        let s = lock_recover(slot);
        (s.addr.clone(), s.generation, s.alive)
    };
    if !alive {
        *conn = None;
        return None;
    }
    if let Some((_, gen)) = conn {
        if *gen != generation {
            *conn = None;
        }
    }
    if conn.is_none() {
        match connect_driver(&addr, timeout) {
            Ok(stream) => *conn = Some((stream, generation)),
            Err(_) => return None,
        }
    }
    let (stream, _) = conn.as_mut()?;
    let result = send_request(stream, &Request::BatchLookup { contents })
        .and_then(|()| recv_response(stream));
    match result {
        Ok(Response::BatchServed { local, peer, origin, shed })
            if local + peer + origin + shed == expected =>
        {
            Some((local, peer, origin, shed))
        }
        _ => {
            // Socket failure, a torn-down node mid-conversation, or a
            // tally that does not cover the batch: shed the batch.
            *conn = None;
            None
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_node(
    spec: &WireSpec,
    id: usize,
    requests: &[(f64, u64)],
    slot: &Mutex<NodeSlot>,
    cells: &LedgerCells,
    total_offered: &AtomicU64,
    tap: Option<&RankTap>,
    start: Instant,
) {
    // Generous driver-side read timeout: a batch is served
    // sequentially, so a slow-but-alive node may walk the whole retry
    // ladder for *every* request in the batch before its one reply —
    // the timeout must cover the worst-case batch, or legitimately
    // served batches get misaccounted as shed at the driver edge.
    let ladder = spec.degrade.forward_deadline * (spec.degrade.forward_retries + 1);
    let worst_batch = ladder
        .checked_mul(u32::try_from(spec.batch.max(1)).unwrap_or(u32::MAX))
        .unwrap_or(Duration::MAX);
    let timeout = worst_batch.saturating_add(Duration::from_secs(1)).max(Duration::from_secs(2));
    let mut conn: Option<(TcpStream, u64)> = None;
    let mut i = 0usize;
    while i < requests.len() {
        let end = (i + spec.batch).min(requests.len());
        let batch = &requests[i..end];
        if spec.paced {
            pace(start, batch[0].0);
        }
        let n = batch.len() as u64;
        cells.offered.fetch_add(n, Ordering::Relaxed);
        total_offered.fetch_add(n, Ordering::Relaxed);
        // Each node's driver thread is the single writer of its tap
        // lane, so the lock-free sampling contract holds on the wire
        // exactly as in-process. Ranks are recorded at offer time —
        // the controller observes demand, served or shed.
        if let Some(tap) = tap {
            for &(_, content) in batch {
                tap.record(id, ContentId(content));
            }
        }
        let contents: Vec<u64> = batch.iter().map(|&(_, c)| c).collect();
        match send_batch(&mut conn, slot, contents, timeout) {
            Some((local, peer, origin, shed)) => {
                cells.local.fetch_add(local, Ordering::Relaxed);
                cells.peer.fetch_add(peer, Ordering::Relaxed);
                cells.origin.fetch_add(origin, Ordering::Relaxed);
                cells.shed.fetch_add(shed, Ordering::Relaxed);
            }
            None => {
                cells.shed.fetch_add(n, Ordering::Relaxed);
            }
        }
        i = end;
    }
    if let Some((stream, _)) = conn.take() {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Runs a multi-process (or in-process multi-thread) wire-mode
/// serving benchmark: spawns the nodes, provisions them at epoch 1,
/// drives the per-node Zipf streams over TCP, applies the kill/revive
/// schedule, and folds the driver ledgers into a [`WireOutcome`]
/// whose conservation invariant has already been verified.
///
/// # Errors
///
/// [`EngineError::InvalidConfig`] / [`EngineError::FaultSpec`] for a
/// bad spec, [`EngineError::Workload`] for a bad stream,
/// [`EngineError::Net`] if bring-up fails, and
/// [`EngineError::Accounting`] if the conservation invariant breaks.
pub fn wire_bench(spec: &WireSpec) -> Result<WireOutcome, EngineError> {
    spec.validate()?;
    let tap = match &spec.adapt {
        Some(cfg) => Some(RankTap::new(spec.nodes, cfg.tap_capacity, cfg.sample_every)?),
        None => None,
    };
    let mut planner = match spec.adapt {
        Some(cfg) => {
            Some(Controller::new(spec.nodes, spec.catalogue, spec.capacity, spec.ell, cfg)?)
        }
        None => None,
    };
    let controller_report: Mutex<Option<ControllerReport>> = Mutex::new(None);
    let all: Vec<usize> = (0..spec.nodes).collect();
    let stream = workload::zipf_irm(
        &all,
        spec.zipf_s,
        spec.catalogue,
        spec.rate_per_node_per_ms,
        spec.horizon_ms,
        spec.seed,
    )?;
    let mut per_node_requests: Vec<Vec<(f64, u64)>> = vec![Vec::new(); spec.nodes];
    for request in stream {
        per_node_requests[request.router].push((request.time, request.content.0));
    }

    // Bring-up: spawn every node, tearing down the ones already up if
    // any spawn fails.
    let mut running: Vec<Option<RunningNode>> = Vec::with_capacity(spec.nodes);
    let mut addrs: Vec<String> = Vec::with_capacity(spec.nodes);
    for id in 0..spec.nodes {
        match spawn_node(spec, id) {
            Ok((node, addr)) => {
                running.push(Some(node));
                addrs.push(addr);
            }
            Err(e) => {
                teardown_nodes(running);
                return Err(e);
            }
        }
    }

    let initial = spec.provision(1, addrs.clone());
    for addr in &addrs {
        // A provisioning failure must tear down exactly like a spawn
        // failure, or already-spawned node processes are orphaned.
        if let Err(e) = push_epoch_to(addr, &initial) {
            teardown_nodes(running);
            return Err(e);
        }
    }
    // The epoch authority starts at the layout just provisioned —
    // identical to the controller's baseline (both derive the epoch-1
    // layout from `spec.ell` with the same rounding), so the first
    // chain step moves exactly what the planner computed.
    let ctl = Mutex::new(WireCtl {
        epoch: 1,
        assignments: initial
            .slices
            .iter()
            .map(|s| RouterAssignment {
                router: s.node as usize,
                local_prefix: initial.prefix,
                slice: s.start..s.end,
            })
            .collect(),
        fitted_s: 0.0,
    });

    let slots: Vec<Mutex<NodeSlot>> = addrs
        .iter()
        .map(|addr| Mutex::new(NodeSlot { addr: addr.clone(), generation: 0, alive: true }))
        .collect();
    let cells: Vec<LedgerCells> = (0..spec.nodes).map(|_| LedgerCells::default()).collect();
    let total_offered = AtomicU64::new(0);
    let drivers_done = AtomicUsize::new(0);
    let mut fault_log: Vec<String> = Vec::new();
    let mut tail_base: Option<Vec<WireLedger>> = None;
    let start = Instant::now();

    std::thread::scope(|scope| {
        for (id, requests) in per_node_requests.iter().enumerate() {
            let slot = &slots[id];
            let node_cells = &cells[id];
            let total = &total_offered;
            let done = &drivers_done;
            let node_tap = tap.as_ref();
            scope.spawn(move || {
                drive_node(spec, id, requests, slot, node_cells, total, node_tap, start);
                done.fetch_add(1, Ordering::Release);
            });
        }

        // Adaptive controller: drain the tap, re-fit, and stage
        // budgeted epochs while the drivers run; once they finish,
        // drain any pending chain so the cluster lands on the final
        // layout before stats collection.
        if let Some(cfg) = spec.adapt {
            let mut planner = planner.take().expect("planner built for adaptive spec");
            let tap = tap.as_ref().expect("tap built for adaptive spec");
            let ctl = &ctl;
            let slots = &slots[..];
            let done_count = &drivers_done;
            let report_slot = &controller_report;
            scope.spawn(move || {
                let mut cursor = tap.cursor();
                let mut scratch: Vec<u64> = Vec::new();
                loop {
                    let done = done_count.load(Ordering::Acquire) == spec.nodes;
                    scratch.clear();
                    tap.drain(&mut cursor, &mut scratch);
                    planner.observe(&scratch);
                    match planner.plan() {
                        Ok(Some(step)) => {
                            push_wire_step(spec, ctl, slots, &step, planner.fitted());
                        }
                        Ok(None) => {}
                        Err(_) => break,
                    }
                    if done {
                        while planner.pending_steps() > 0 {
                            match planner.plan() {
                                Ok(Some(step)) => {
                                    push_wire_step(spec, ctl, slots, &step, planner.fitted());
                                }
                                _ => break,
                            }
                        }
                        break;
                    }
                    std::thread::sleep(cfg.tick_interval);
                }
                *lock_recover(report_slot) = Some(planner.report());
            });
        }

        // Supervisor (inline): replay the fault schedule against the
        // cluster-wide offered count.
        for fault in &spec.faults {
            while total_offered.load(Ordering::Relaxed) < fault.at_op {
                if drivers_done.load(Ordering::Acquire) == spec.nodes {
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            if drivers_done.load(Ordering::Acquire) == spec.nodes
                && total_offered.load(Ordering::Relaxed) < fault.at_op
            {
                fault_log.push(format!("{}@unreached", fault.kind));
                continue;
            }
            let fired_at = total_offered.load(Ordering::Relaxed);
            match fault.kind {
                WireFaultKind::Kill(n) => {
                    {
                        let mut slot = lock_recover(&slots[n]);
                        slot.alive = false;
                    }
                    if let Some(RunningNode::Proc { mut child, .. }) = running[n].take() {
                        // SIGKILL: no drain, no goodbye.
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    fault_log.push(format!("kill:{n}@{fired_at}"));
                }
                WireFaultKind::Revive(n) => match spawn_node(spec, n) {
                    Ok((node, addr)) => {
                        running[n] = Some(node);
                        addrs[n] = addr;
                        // Re-provision everyone under the coordinator's
                        // *current* cumulative layout — the controller
                        // may have issued chain epochs since the kill,
                        // and the revived node must not be resurrected
                        // onto a stale slice plan. The ctl lock is held
                        // across the pushes to serialize with
                        // concurrent controller epochs.
                        {
                            let mut ctl_guard = lock_recover(&ctl);
                            ctl_guard.epoch += 1;
                            let push = ctl_guard.provision(spec, addrs.clone());
                            for (m, addr) in addrs.iter().enumerate() {
                                let reachable = m == n || lock_recover(&slots[m]).alive;
                                if reachable {
                                    if let Err(e) = push_epoch_to(addr, &push) {
                                        fault_log
                                            .push(format!("epoch-push-failed:{m}@{fired_at}: {e}"));
                                    }
                                }
                            }
                        }
                        // The re-convergence window starts once the
                        // revived node is provisioned and addressable.
                        tail_base = Some(cells.iter().map(LedgerCells::snapshot).collect());
                        {
                            let mut slot = lock_recover(&slots[n]);
                            slot.addr = addrs[n].clone();
                            slot.generation += 1;
                            slot.alive = true;
                        }
                        fault_log.push(format!("revive:{n}@{fired_at}"));
                    }
                    Err(e) => {
                        fault_log.push(format!("revive-failed:{n}@{fired_at}: {e}"));
                    }
                },
            }
        }
    });
    #[allow(clippy::cast_precision_loss)]
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Staged-rollout convergence: re-push the final cumulative layout
    // to every live node, so one that missed an epoch (a push racing
    // its kill window, a transient socket failure) catches up before
    // stats collection. Nodes already current just ack their epoch.
    let controller = if spec.adapt.is_some() {
        let push = lock_recover(&ctl).provision(spec, addrs.clone());
        for (id, addr) in addrs.iter().enumerate() {
            if lock_recover(&slots[id]).alive {
                let _ = push_epoch_to(addr, &push);
            }
        }
        lock_recover(&controller_report).take()
    } else {
        None
    };

    // Collect final node-side stats from survivors, then shut every
    // node down in an orderly way.
    let mut node_stats: Vec<Option<NodeStatsSnapshot>> = vec![None; spec.nodes];
    let mut alive_epochs: Vec<(usize, u64)> = Vec::new();
    for (id, addr) in addrs.iter().enumerate() {
        if !lock_recover(&slots[id]).alive {
            continue;
        }
        if let Ok(mut stream) = connect_driver(addr, Duration::from_secs(2)) {
            if send_request(&mut stream, &Request::Stats).is_ok() {
                if let Ok(Response::StatsReply(snapshot)) = recv_response(&mut stream) {
                    alive_epochs.push((id, snapshot.epoch));
                    node_stats[id] = Some(snapshot);
                }
            }
            let _ = send_request(&mut stream, &Request::Shutdown);
            let _ = recv_response(&mut stream);
        }
    }
    for (id, node) in running.into_iter().enumerate() {
        if let Some(node) = node {
            if let Some(snapshot) = stop_node(node) {
                node_stats[id].get_or_insert(snapshot);
            }
        }
    }

    let epoch = lock_recover(&ctl).epoch;
    if controller.is_some() {
        if let Some(&(id, got)) = alive_epochs.iter().find(|&&(_, e)| e != epoch) {
            return Err(proto_err(format!(
                "staged rollout did not converge: node {id} reports epoch {got}, \
                 coordinator finished at {epoch}"
            )));
        }
    }

    let per_node: Vec<WireLedger> = cells.iter().map(LedgerCells::snapshot).collect();
    let tail_per_node = tail_base
        .map(|base| per_node.iter().zip(&base).map(|(now, then)| now.since(then)).collect());
    let outcome = WireOutcome {
        nodes: spec.nodes,
        epoch,
        listen_addrs: addrs,
        per_node,
        tail_per_node,
        node_stats,
        fault_log,
        wall_ms,
        controller,
    };
    outcome.check_conservation()?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) {
        let body = req.encode().expect("encode");
        let back = Request::decode(&body).expect("decode");
        assert_eq!(*req, back);
    }

    fn roundtrip_response(resp: &Response) {
        let body = resp.encode().expect("encode");
        let back = Response::decode(&body).expect("decode");
        assert_eq!(*resp, back);
    }

    fn sample_provision(epoch: u64, peers: Vec<String>) -> Provision {
        WireSpec::new(peers.len().max(1)).provision(epoch, peers)
    }

    #[test]
    fn every_request_kind_roundtrips() {
        roundtrip_request(&Request::Hello { node: 7, version: PROTOCOL_VERSION });
        roundtrip_request(&Request::ConfigEpoch(sample_provision(
            3,
            vec!["127.0.0.1:4000".into(), "127.0.0.1:4001".into()],
        )));
        roundtrip_request(&Request::Lookup { content: 99 });
        roundtrip_request(&Request::BatchLookup { contents: vec![1, 2, 3, u64::MAX] });
        roundtrip_request(&Request::PeerForward { content: 5, budget_us: 250_000 });
        roundtrip_request(&Request::HealthProbe);
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::Shutdown);
    }

    #[test]
    fn every_response_kind_roundtrips() {
        roundtrip_response(&Response::EpochAck { epoch: 12 });
        roundtrip_response(&Response::Served { tier: TIER_PEER });
        roundtrip_response(&Response::BatchServed { local: 1, peer: 2, origin: 3, shed: 4 });
        roundtrip_response(&Response::ForwardReply { outcome: FWD_MISS });
        roundtrip_response(&Response::HealthAck { epoch: 0 });
        let snapshot = NodeStatsSnapshot { lookups: 10, local: 6, origin: 4, ..Default::default() };
        roundtrip_response(&Response::StatsReply(snapshot));
        roundtrip_response(&Response::Bye);
        roundtrip_response(&Response::Refused { reason: "not provisioned".into() });
    }

    #[test]
    fn truncated_and_unknown_frames_are_typed_errors() {
        let body = Request::Lookup { content: 1 }.encode().expect("encode");
        let err = Request::decode(&body[..body.len() - 1]).expect_err("truncated");
        assert!(matches!(err, EngineError::Protocol { .. }));
        let err = Request::decode(&[0x7f]).expect_err("unknown kind");
        assert!(matches!(err, EngineError::Protocol { .. }));
        // Trailing garbage after a well-formed payload is rejected too.
        let mut long = body;
        long.push(0);
        let err = Request::decode(&long).expect_err("trailing bytes");
        assert!(matches!(err, EngineError::Protocol { .. }));
    }

    #[test]
    fn stats_snapshot_tolerates_shorter_field_lists() {
        let full = NodeStatsSnapshot { lookups: 5, local: 3, ..Default::default() };
        let mut fields = full.fields();
        fields.truncate(2);
        let partial = NodeStatsSnapshot::from_fields(&fields);
        assert_eq!(partial.lookups, 5);
        assert_eq!(partial.local, 3);
        assert_eq!(partial.origin, 0);
    }

    #[test]
    fn wire_listener_forces_mpsc_and_rejects_spsc() {
        assert_eq!(wire_ring_mode(RingMode::Auto).expect("auto"), RingMode::Mpsc);
        assert_eq!(wire_ring_mode(RingMode::Mpsc).expect("mpsc"), RingMode::Mpsc);
        assert!(matches!(wire_ring_mode(RingMode::Spsc), Err(EngineError::InvalidConfig { .. })));
        let mut config = NodeConfig::new(0);
        config.ring_mode = RingMode::Spsc;
        assert!(NodeServer::bind(config).is_err());
    }

    /// Regression (the Auto-census bug this PR fixes): an Auto ring
    /// whose census saw one in-process producer demotes to SPSC at
    /// seal, and a producer arriving later — the position every
    /// accepted wire connection is in — must be *rejected*, not
    /// silently admitted onto a single-producer ring.
    #[test]
    fn late_remote_producer_cannot_corrupt_sealed_ring() {
        let spec = ShardSpec::new(1, 64).ring_mode(RingMode::Auto);
        let store = ShardedStore::try_spawn_with(
            spec,
            |_| Box::new(LruStore::new(4)) as Box<dyn ContentStore>,
            Arc::new(|_store: &mut dyn ContentStore, _job: ()| {}),
        )
        .expect("spawn");
        let handle = store.handle();
        handle.register_producer().expect("local producer");
        handle.seal_producers();
        assert_eq!(handle.ring_mode(), RingMode::Spsc, "census of one demotes to SPSC");
        let err = handle.register_producer().expect_err("late remote producer must be rejected");
        assert!(matches!(err, EngineError::InvalidConfig { .. }));
        // The wire node never reaches this state: with the listener
        // enabled, Auto resolves to MPSC before the store is built.
        let resolved = wire_ring_mode(RingMode::Auto).expect("auto");
        assert_eq!(resolved, RingMode::Mpsc);
    }

    fn bind_node(id: usize) -> (Arc<NodeServer>, String) {
        let server = Arc::new(NodeServer::bind(NodeConfig::new(id)).expect("bind"));
        let addr = server.local_addr().to_string();
        (server, addr)
    }

    /// Regression: a socket read timeout must classify as a timeout
    /// from its `io::ErrorKind`. On Linux it surfaces as `WouldBlock`
    /// and displays as "Resource temporarily unavailable (os error
    /// 11)" — the old string-match on "timed out" never saw it.
    #[test]
    fn frame_read_timeout_is_classified_by_kind() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let _server = listener.accept().expect("accept");
        client.set_read_timeout(Some(Duration::from_millis(25))).expect("set timeout");
        let err = read_frame(&mut client).expect_err("idle read must time out");
        assert!(is_timeout(&err), "boundary read timeout must classify as timeout, got: {err}");
    }

    /// Regression: an idle connection must survive past the server's
    /// 200ms per-connection read timeout — misclassifying that
    /// timeout tore down every idle peer link and paced driver
    /// connection, forcing spurious reconnects and degradation.
    #[test]
    fn idle_connection_survives_past_server_read_timeout() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        send_request(&mut conn, &Request::HealthProbe).expect("probe");
        assert_eq!(recv_response(&mut conn).expect("ack"), Response::HealthAck { epoch: 0 });
        // Idle well past the server's read timeout, then ask again on
        // the *same* connection.
        std::thread::sleep(Duration::from_millis(450));
        send_request(&mut conn, &Request::HealthProbe).expect("probe after idle");
        assert_eq!(
            recv_response(&mut conn).expect("idle connection must still be served"),
            Response::HealthAck { epoch: 0 }
        );
        send_request(&mut conn, &Request::Shutdown).expect("shutdown");
        let _ = recv_response(&mut conn);
        join.join().expect("join").expect("run");
    }

    /// Regression: a same-layout re-provision keeps the store and
    /// must register producer lanes only for connections accepted
    /// since the last epoch — re-running the whole connection census
    /// overcounted producers on every epoch push.
    #[test]
    fn kept_store_reprovision_registers_only_the_lane_delta() {
        let shared = NodeShared {
            config: NodeConfig::new(0),
            engine: RwLock::new(None),
            epoch: AtomicU64::new(0),
            stats: NodeStats::default(),
            shutdown: AtomicBool::new(false),
        };
        // Three connections accepted before any engine existed.
        shared.stats.connections.store(3, Ordering::Relaxed);
        let spec = WireSpec::new(1);
        let peers = vec!["127.0.0.1:1".to_owned()];
        provision_node(&shared, spec.provision(1, peers.clone())).expect("epoch 1");
        let first = shared.current_engine().expect("engine").handle.producer_census();
        provision_node(&shared, spec.provision(2, peers.clone())).expect("epoch 2");
        let engine = shared.current_engine().expect("engine");
        assert_eq!(
            engine.handle.producer_census(),
            first,
            "a same-layout epoch swap must not re-register the existing census"
        );
        // One more connection accepted between epochs (what the
        // accept loop does): the next epoch registers no extras.
        shared.stats.add(&shared.stats.connections);
        engine.handle.register_producer().expect("register");
        engine.lanes.fetch_add(1, Ordering::Relaxed);
        provision_node(&shared, spec.provision(3, peers)).expect("epoch 3");
        assert_eq!(
            shared.current_engine().expect("engine").handle.producer_census(),
            first + 1,
            "exactly one lane per newly accepted connection"
        );
    }

    #[test]
    fn unprovisioned_node_refuses_lookups_but_answers_health() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        send_request(&mut conn, &Request::HealthProbe).expect("probe");
        assert_eq!(recv_response(&mut conn).expect("ack"), Response::HealthAck { epoch: 0 });
        send_request(&mut conn, &Request::Lookup { content: 1 }).expect("lookup");
        assert!(matches!(recv_response(&mut conn).expect("refused"), Response::Refused { .. }));
        send_request(&mut conn, &Request::Shutdown).expect("shutdown");
        assert_eq!(recv_response(&mut conn).expect("bye"), Response::Bye);
        let stats = join.join().expect("join").expect("run");
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.lookups, 1);
    }

    #[test]
    fn stale_epoch_is_acked_with_current_and_ignored() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        let p5 = sample_provision(5, vec![addr.clone()]);
        send_request(&mut conn, &Request::ConfigEpoch(p5)).expect("push 5");
        assert_eq!(recv_response(&mut conn).expect("ack"), Response::EpochAck { epoch: 5 });
        let p3 = sample_provision(3, vec![addr.clone()]);
        send_request(&mut conn, &Request::ConfigEpoch(p3)).expect("push 3");
        assert_eq!(
            recv_response(&mut conn).expect("ack"),
            Response::EpochAck { epoch: 5 },
            "a stale push is acked with the current epoch, not applied"
        );
        send_request(&mut conn, &Request::Shutdown).expect("shutdown");
        let _ = recv_response(&mut conn);
        let stats = join.join().expect("join").expect("run");
        assert_eq!(stats.epochs_accepted, 1);
        assert_eq!(stats.epoch, 5);
    }

    #[test]
    fn same_layout_epoch_swap_keeps_lru_warmth() {
        let (server, addr) = bind_node(0);
        let runner = Arc::clone(&server);
        let join = std::thread::spawn(move || runner.run());
        let mut spec = WireSpec::new(1);
        spec.policy = StorePolicy::Lru;
        let mut conn = connect_driver(&addr, Duration::from_secs(2)).expect("connect");
        send_request(&mut conn, &Request::ConfigEpoch(spec.provision(1, vec![addr.clone()])))
            .expect("push");
        assert_eq!(recv_response(&mut conn).expect("ack"), Response::EpochAck { epoch: 1 });
        // Rank 9999 is uncoordinated: the first lookup misses and the
        // LRU edge admits it, the second hits locally.
        for (expected, label) in [(TIER_ORIGIN, "miss + admit"), (TIER_LOCAL, "warm hit")] {
            send_request(&mut conn, &Request::Lookup { content: 9_999 }).expect("lookup");
            assert_eq!(
                recv_response(&mut conn).expect("served"),
                Response::Served { tier: expected },
                "{label}"
            );
        }
        // A same-layout epoch bump (what survivors see after a
        // revival) must keep the warm store.
        send_request(&mut conn, &Request::ConfigEpoch(spec.provision(2, vec![addr.clone()])))
            .expect("push 2");
        assert_eq!(recv_response(&mut conn).expect("ack"), Response::EpochAck { epoch: 2 });
        send_request(&mut conn, &Request::Lookup { content: 9_999 }).expect("lookup");
        assert_eq!(
            recv_response(&mut conn).expect("served"),
            Response::Served { tier: TIER_LOCAL },
            "cache warmth survives a same-layout epoch swap"
        );
        send_request(&mut conn, &Request::Shutdown).expect("shutdown");
        let _ = recv_response(&mut conn);
        join.join().expect("join").expect("run");
    }

    #[test]
    fn in_process_loopback_cluster_serves_all_tiers_conservatively() {
        let mut spec = WireSpec::new(3);
        spec.horizon_ms = 400.0;
        spec.rate_per_node_per_ms = 2.0;
        spec.seed = 7;
        let outcome = wire_bench(&spec).expect("wire bench");
        outcome.check_conservation().expect("conservation");
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.per_node.len(), 3);
        let offered = outcome.offered();
        assert!(offered > 0, "workload must offer requests");
        assert_eq!(outcome.shed(), 0, "no faults: nothing sheds");
        let (local, peer, origin) = WireOutcome::tier_fractions(&outcome.per_node);
        assert!(local > 0.0, "popularity prefix must serve locally");
        assert!(peer > 0.0, "coordinated slices must serve over the wire");
        assert!(origin > 0.0, "catalogue tail must fall through to origin");
        assert!((local + peer + origin - 1.0).abs() < 1e-9);
        for stats in outcome.node_stats.iter().flatten() {
            assert_eq!(stats.epoch, 1);
        }
        let forwards: u64 = outcome.node_stats.iter().flatten().map(|s| s.forwards_in).sum();
        assert!(forwards > 0, "peer serving implies forward frames were exchanged");
    }

    #[test]
    fn provision_fitted_exponent_roundtrips_and_is_layout_neutral() {
        let mut p = sample_provision(4, vec!["127.0.0.1:4000".into()]);
        p.fitted_s = 1.0625;
        roundtrip_request(&Request::ConfigEpoch(p.clone()));
        // A fit-only change must not read as a layout change, or every
        // re-fit would cold-start every store in the cluster.
        let mut q = p.clone();
        q.epoch = 9;
        q.fitted_s = 0.9;
        assert!(p.same_layout(&q));
    }

    /// The wire tier's staged rollout: a deliberately mis-provisioned
    /// cluster (ℓ far below the optimum for the true exponent) is
    /// walked to the re-solved layout by the driver-side controller
    /// through multiple budgeted epochs, and every node converges to
    /// the same final epoch carrying the fitted-exponent snapshot.
    #[test]
    fn adaptive_wire_bench_stages_epochs_and_converges_every_node() {
        let mut spec = WireSpec::new(3);
        spec.ell = 0.2;
        spec.zipf_s = 1.1;
        spec.rate_per_node_per_ms = 4.0;
        spec.horizon_ms = 600.0;
        spec.paced = true;
        spec.batch = 16;
        spec.seed = 11;
        spec.adapt = Some(ControllerConfig {
            decay: 0.9,
            min_window: 300.0,
            movement_budget: 64,
            sample_every: 1,
            tick_interval: Duration::from_millis(5),
            ..ControllerConfig::default()
        });
        let outcome = wire_bench(&spec).expect("adaptive wire bench");
        outcome.check_conservation().expect("conservation");
        let report = outcome.controller.as_ref().expect("controller report present");
        assert!(report.retargets >= 1, "a mis-provisioned ell must retarget");
        assert!(
            report.epochs_issued >= 2,
            "the retarget must be staged incrementally, got {} epochs",
            report.epochs_issued
        );
        assert!(report.slices_moved > 0);
        assert_eq!(
            outcome.epoch,
            1 + report.epochs_issued,
            "every issued epoch must have landed cluster-wide"
        );
        let fitted = report.fitted_s.expect("a fit happened");
        assert!((fitted - spec.zipf_s).abs() < 0.2, "fit {fitted} missed s={}", spec.zipf_s);
        for stats in outcome.node_stats.iter().flatten() {
            assert_eq!(stats.epoch, outcome.epoch, "all nodes converge to the same epoch");
            let node_view = f64::from_bits(stats.fitted_s_bits);
            assert!(
                (node_view - fitted).abs() < 0.2,
                "node stats carry the fitted snapshot, got {node_view}"
            );
        }
    }

    #[test]
    fn wire_spec_rejects_malformed_fault_schedules() {
        let mut spec = WireSpec::new(2);
        spec.faults = vec![WireFault { at_op: 10, kind: WireFaultKind::Kill(5) }];
        assert!(matches!(wire_bench(&spec), Err(EngineError::FaultSpec { .. })));
        spec.faults = vec![WireFault { at_op: 10, kind: WireFaultKind::Revive(0) }];
        assert!(matches!(wire_bench(&spec), Err(EngineError::FaultSpec { .. })));
        // Kill/revive requires real child processes.
        spec.faults = vec![
            WireFault { at_op: 10, kind: WireFaultKind::Kill(0) },
            WireFault { at_op: 20, kind: WireFaultKind::Revive(0) },
        ];
        assert!(matches!(wire_bench(&spec), Err(EngineError::FaultSpec { .. })));
    }
}
