//! Live fault injection and graceful-degradation policy for the
//! serving engine.
//!
//! The simulator already breaks the paper's clean-state assumption
//! deterministically ([`ccn_sim::FailureScenario`]); this module ports
//! that vocabulary onto the *live* engine, where there is no event
//! queue to script against. The deterministic clock here is the
//! **global admission-operation counter**: a [`FaultPlan`] is a
//! schedule of transitions pinned to operation counts, so the same
//! seed + plan + single-generator load perturbs the exact same
//! request in every run — wall-clock jitter cannot move a fault
//! relative to the workload.
//!
//! Three layers live here:
//!
//! - **Plans** ([`FaultPlan`], [`FaultKind`], [`FaultEvent`]): what to
//!   break and when — kill/revive whole nodes or single shard
//!   workers, inject per-request latency into a node (slow node), or
//!   stall a node outright to force transient queue saturation.
//!   Plans are hand-built, parsed from the CLI `--faults` spec, or
//!   drawn from a seeded MTBF/MTTR renewal process
//!   ([`FaultPlan::seeded`]) mirroring `ccn_sim::FailureModel`.
//! - **Degradation policy** ([`DegradeConfig`]): the knobs of the
//!   ladder `local → peer → retry (bounded, backed-off) → origin →
//!   shed` — peer-forward deadline, retry budget, and the
//!   consecutive-timeout health detector that feeds the epoch-bumped
//!   [`crate::routing::LiveRouting`] view.
//! - **Runtime state** ([`FaultState`], [`FaultController`],
//!   crate-private): the atomics the hot path consults, the
//!   apply-due-events poll, and the applied-fault log
//!   ([`AppliedFault`]) surfaced through
//!   [`crate::cluster::EngineMetrics`].
//!
//! # Interaction with thread-per-core placement
//!
//! Kill and revive are *mode flips*, not thread lifecycle events: a
//! killed node or worker keeps its threads (they drain already-
//! admitted work at origin in dead mode) and revival flips the flag
//! back. No thread is ever respawned, so a worker pinned by
//! [`crate::ShardPlacement`] stays on its placement core through any
//! fault schedule — fault injection respects placement by
//! construction.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::error::EngineError;
use crate::pad::CachePadded;
use crate::routing::LiveRouting;
use crate::shard::{lock_recover, mix};

/// Longest latency injection a plan may request per request (1 s):
/// large enough to saturate any queue, small enough that a
/// mis-written plan cannot wedge a run beyond its horizon.
pub const MAX_INJECTED_DELAY_US: u64 = 1_000_000;

/// One live-engine fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The whole node crashes: admission from its clients is refused
    /// (shed), its coordinated slice re-homes by rendezvous hashing,
    /// and already-admitted jobs complete at origin instead of being
    /// lost. Its stores stay warm for revival.
    KillNode(usize),
    /// The node rejoins: admission resumes, the routing epoch bumps
    /// again, and — because rendezvous failover never moved anyone
    /// else's share — it gets its exact old slice back.
    ReviveNode(usize),
    /// One shard worker of one node dies: jobs routed to that shard
    /// complete at origin (recorded as fault-served) until revival.
    /// Routing is untouched — shard death is invisible outside the
    /// node.
    KillWorker {
        /// Owning node.
        node: usize,
        /// Shard index within the node.
        shard: usize,
    },
    /// The shard worker comes back (store warm, as with nodes).
    ReviveWorker {
        /// Owning node.
        node: usize,
        /// Shard index within the node.
        shard: usize,
    },
    /// Every request processed by the node is delayed by `delay_us`
    /// before being served — a slow node. Forwards to it blow their
    /// deadline and the health detector eventually routes around it.
    SlowNode {
        /// Slowed node.
        node: usize,
        /// Injected per-request delay, microseconds.
        delay_us: u64,
    },
    /// Clears a [`FaultKind::SlowNode`] injection.
    ClearSlow(usize),
    /// The node's workers stop draining for `micros`, forcing
    /// transient queue saturation: admission sheds and forwards
    /// bounce while the stall lasts, then the backlog clears.
    Stall {
        /// Stalled node.
        node: usize,
        /// Stall duration, microseconds.
        micros: u64,
    },
}

impl FaultKind {
    fn node(self) -> usize {
        match self {
            FaultKind::KillNode(n)
            | FaultKind::ReviveNode(n)
            | FaultKind::ClearSlow(n)
            | FaultKind::KillWorker { node: n, .. }
            | FaultKind::ReviveWorker { node: n, .. }
            | FaultKind::SlowNode { node: n, .. }
            | FaultKind::Stall { node: n, .. } => n,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultKind::KillNode(n) => write!(f, "kill:{n}"),
            FaultKind::ReviveNode(n) => write!(f, "revive:{n}"),
            FaultKind::KillWorker { node, shard } => write!(f, "kill-worker:{node}.{shard}"),
            FaultKind::ReviveWorker { node, shard } => write!(f, "revive-worker:{node}.{shard}"),
            FaultKind::SlowNode { node, delay_us } => write!(f, "slow:{node}:{delay_us}"),
            FaultKind::ClearSlow(n) => write!(f, "clear:{n}"),
            FaultKind::Stall { node, micros } => write!(f, "stall:{node}:{micros}"),
        }
    }
}

/// A fault transition pinned to a global admission-operation count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Applies when the cluster-wide offered-operation counter
    /// reaches this value (1-based: `at_op = 1` fires on the very
    /// first admission).
    pub at_op: u64,
    /// The transition.
    pub kind: FaultKind,
}

/// A deterministic, operation-count-scheduled fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan — the engine's prior, fault-free world.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from arbitrary events, sorting them by trigger
    /// operation (ties keep insertion order).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at_op);
        Self { events }
    }

    /// Adds a node outage: killed at `down_op`, revived at `up_op`
    /// (`None` = never — a permanent crash).
    #[must_use]
    pub fn with_node_outage(mut self, node: usize, down_op: u64, up_op: Option<u64>) -> Self {
        self.push(down_op, FaultKind::KillNode(node));
        if let Some(up) = up_op {
            self.push(up, FaultKind::ReviveNode(node));
        }
        self
    }

    /// Adds a single-shard-worker outage.
    #[must_use]
    pub fn with_worker_outage(
        mut self,
        node: usize,
        shard: usize,
        down_op: u64,
        up_op: Option<u64>,
    ) -> Self {
        self.push(down_op, FaultKind::KillWorker { node, shard });
        if let Some(up) = up_op {
            self.push(up, FaultKind::ReviveWorker { node, shard });
        }
        self
    }

    /// Adds a slow-node window: `delay_us` per request from `from_op`
    /// until `until_op` (`None` = for the rest of the run).
    #[must_use]
    pub fn with_slowdown(
        mut self,
        node: usize,
        delay_us: u64,
        from_op: u64,
        until_op: Option<u64>,
    ) -> Self {
        self.push(from_op, FaultKind::SlowNode { node, delay_us });
        if let Some(until) = until_op {
            self.push(until, FaultKind::ClearSlow(node));
        }
        self
    }

    /// Adds a one-shot stall (transient queue saturation).
    #[must_use]
    pub fn with_stall(mut self, node: usize, micros: u64, at_op: u64) -> Self {
        self.push(at_op, FaultKind::Stall { node, micros });
        self
    }

    fn push(&mut self, at_op: u64, kind: FaultKind) {
        let i = self.events.partition_point(|e| e.at_op <= at_op);
        self.events.insert(i, FaultEvent { at_op, kind });
    }

    /// The schedule, sorted by trigger operation.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan contains no transitions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draws a kill/revive schedule from a seeded renewal process:
    /// each node alternates exponential up (`mtbf_ops`) and down
    /// (`mttr_ops`) periods measured in admission operations — the
    /// engine-side analogue of `ccn_sim::FailureModel`, with the
    /// operation counter standing in for simulated time. Identical
    /// arguments ⇒ identical plan.
    #[must_use]
    pub fn seeded(seed: u64, nodes: usize, mtbf_ops: u64, mttr_ops: u64, horizon_ops: u64) -> Self {
        let mut events = Vec::new();
        for node in 0..nodes {
            let mut state = seed ^ mix(0x5eed_0002 + node as u64);
            let mut at = 0.0_f64;
            loop {
                at += exponential(&mut state, mtbf_ops.max(1) as f64);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let down = at.min(1e18) as u64 + 1;
                if down > horizon_ops {
                    break;
                }
                events.push(FaultEvent { at_op: down, kind: FaultKind::KillNode(node) });
                at += exponential(&mut state, mttr_ops.max(1) as f64);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let up = at.min(1e18) as u64 + 1;
                if up > horizon_ops {
                    break;
                }
                events.push(FaultEvent { at_op: up, kind: FaultKind::ReviveNode(node) });
            }
        }
        Self::new(events)
    }

    /// Parses the CLI spec: comma-separated transitions
    /// `kill:N@OP`, `revive:N@OP`, `kill-worker:N.S@OP`,
    /// `revive-worker:N.S@OP`, `slow:N:DELAY_US@OP`, `clear:N@OP`,
    /// `stall:N:MICROS@OP`, plus `seeded:SEED:MTBF:MTTR` which
    /// expands to a seeded node-outage schedule over `horizon_ops`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::FaultSpec`] for unknown forms or
    /// out-of-range indices/parameters (validated against `nodes` ×
    /// `shards_per_node`).
    pub fn parse(
        spec: &str,
        nodes: usize,
        shards_per_node: usize,
        horizon_ops: u64,
    ) -> Result<Self, EngineError> {
        let bad = |token: &str, why: &str| {
            Err(EngineError::FaultSpec { reason: format!("{token:?}: {why}") })
        };
        let mut plan = Self::none();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(rest) = token.strip_prefix("seeded:") {
                let mut it = rest.split(':');
                let (Some(seed), Some(mtbf), Some(mttr), None) =
                    (it.next(), it.next(), it.next(), it.next())
                else {
                    return bad(token, "expected seeded:SEED:MTBF_OPS:MTTR_OPS");
                };
                let parse_u64 = |s: &str, what: &str| {
                    s.parse::<u64>().map_err(|e| EngineError::FaultSpec {
                        reason: format!("{token:?}: bad {what} {s:?}: {e}"),
                    })
                };
                let seeded = Self::seeded(
                    parse_u64(seed, "seed")?,
                    nodes,
                    parse_u64(mtbf, "mtbf")?,
                    parse_u64(mttr, "mttr")?,
                    horizon_ops,
                );
                plan.events.extend(seeded.events);
                continue;
            }
            let Some((head, op)) = token.rsplit_once('@') else {
                return bad(token, "expected KIND:...@OP");
            };
            let at_op: u64 = match op.parse() {
                Ok(v) if v >= 1 => v,
                _ => return bad(token, "operation count must be a positive integer"),
            };
            let mut parts = head.split(':');
            let (Some(kind), args): (_, Vec<&str>) = (parts.next(), parts.collect()) else {
                return bad(token, "empty transition");
            };
            let one_usize = |what: &str| -> Result<usize, EngineError> {
                let [v] = args.as_slice() else {
                    return Err(EngineError::FaultSpec {
                        reason: format!("{token:?}: expected {kind}:{what}@OP"),
                    });
                };
                v.parse().map_err(|e| EngineError::FaultSpec {
                    reason: format!("{token:?}: bad {what} {v:?}: {e}"),
                })
            };
            let node_and_u64 = |what: &str| -> Result<(usize, u64), EngineError> {
                let [n, v] = args.as_slice() else {
                    return Err(EngineError::FaultSpec {
                        reason: format!("{token:?}: expected {kind}:NODE:{what}@OP"),
                    });
                };
                let node = n.parse().map_err(|e| EngineError::FaultSpec {
                    reason: format!("{token:?}: bad node {n:?}: {e}"),
                })?;
                let value = v.parse().map_err(|e| EngineError::FaultSpec {
                    reason: format!("{token:?}: bad {what} {v:?}: {e}"),
                })?;
                Ok((node, value))
            };
            let worker = || -> Result<(usize, usize), EngineError> {
                let [pair] = args.as_slice() else {
                    return Err(EngineError::FaultSpec {
                        reason: format!("{token:?}: expected {kind}:NODE.SHARD@OP"),
                    });
                };
                let Some((n, s)) = pair.split_once('.') else {
                    return Err(EngineError::FaultSpec {
                        reason: format!("{token:?}: expected NODE.SHARD, got {pair:?}"),
                    });
                };
                match (n.parse(), s.parse()) {
                    (Ok(n), Ok(s)) => Ok((n, s)),
                    _ => Err(EngineError::FaultSpec {
                        reason: format!("{token:?}: bad NODE.SHARD {pair:?}"),
                    }),
                }
            };
            let parsed = match kind {
                "kill" => FaultKind::KillNode(one_usize("NODE")?),
                "revive" => FaultKind::ReviveNode(one_usize("NODE")?),
                "clear" => FaultKind::ClearSlow(one_usize("NODE")?),
                "kill-worker" => {
                    let (node, shard) = worker()?;
                    FaultKind::KillWorker { node, shard }
                }
                "revive-worker" => {
                    let (node, shard) = worker()?;
                    FaultKind::ReviveWorker { node, shard }
                }
                "slow" => {
                    let (node, delay_us) = node_and_u64("DELAY_US")?;
                    FaultKind::SlowNode { node, delay_us }
                }
                "stall" => {
                    let (node, micros) = node_and_u64("MICROS")?;
                    FaultKind::Stall { node, micros }
                }
                other => return bad(token, &format!("unknown transition {other:?}")),
            };
            plan.push(at_op, parsed);
        }
        plan.events.sort_by_key(|e| e.at_op);
        plan.validate(nodes, shards_per_node)?;
        Ok(plan)
    }

    /// Validates every event against the cluster shape.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::FaultSpec`] for node/shard indices out
    /// of range, zero trigger operations, or injected delays beyond
    /// [`MAX_INJECTED_DELAY_US`].
    pub fn validate(&self, nodes: usize, shards_per_node: usize) -> Result<(), EngineError> {
        let reject =
            |reason: String| -> Result<(), EngineError> { Err(EngineError::FaultSpec { reason }) };
        for e in &self.events {
            if e.at_op == 0 {
                return reject(format!("{}: trigger operation must be >= 1", e.kind));
            }
            let node = e.kind.node();
            if node >= nodes {
                return reject(format!("{}: node {node} out of range (nodes = {nodes})", e.kind));
            }
            match e.kind {
                FaultKind::KillWorker { shard, .. } | FaultKind::ReviveWorker { shard, .. }
                    if shard >= shards_per_node =>
                {
                    return reject(format!(
                        "{}: shard {shard} out of range (shards_per_node = {shards_per_node})",
                        e.kind
                    ));
                }
                FaultKind::SlowNode { delay_us: us, .. } | FaultKind::Stall { micros: us, .. }
                    if us > MAX_INJECTED_DELAY_US =>
                {
                    return reject(format!(
                        "{}: injected delay {us} us exceeds the {MAX_INJECTED_DELAY_US} us cap",
                        e.kind
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Exponential draw in operation units from a SplitMix64 stream.
fn exponential(state: &mut u64, mean: f64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    #[allow(clippy::cast_precision_loss)]
    let u = ((mix(*state) >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
    -u.ln() * mean
}

/// Knobs of the degradation ladder `local → peer → retry → origin →
/// shed` and of the health detector feeding routing failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Budget for the whole local→peer detour: a forwarded request
    /// still unserved this long after admission is answered by origin
    /// at the holder (recorded as deadline-expired) instead of
    /// serving a stale peer hit.
    pub forward_deadline: Duration,
    /// Bounded re-enqueue attempts when a peer queue bounces a
    /// forward, before degrading to origin.
    pub forward_retries: u32,
    /// Base backoff between forward retries (attempt `k` waits
    /// `k × retry_backoff`, spin-waited — the shard worker never
    /// sleeps long on this path).
    pub retry_backoff: Duration,
    /// Consecutive forward failures (bounces after retry exhaustion,
    /// deadline expiries, fault-served forwards) against one holder
    /// before the health view marks it down and the routing epoch
    /// bumps. `0` disables the detector.
    pub timeout_threshold: u32,
    /// Admission operations a health-marked-down node stays out of
    /// routing before probation puts it back (plan-driven revival
    /// also clears it).
    pub probation_ops: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self {
            forward_deadline: Duration::from_secs(1),
            forward_retries: 2,
            retry_backoff: Duration::from_micros(5),
            timeout_threshold: 16,
            probation_ops: 8_192,
        }
    }
}

impl DegradeConfig {
    pub(crate) fn validate(&self) -> Result<(), EngineError> {
        if self.forward_deadline.is_zero() {
            return Err(EngineError::InvalidConfig {
                reason: "forward_deadline must be positive".into(),
            });
        }
        if self.probation_ops == 0 {
            return Err(EngineError::InvalidConfig { reason: "probation_ops must be >= 1".into() });
        }
        Ok(())
    }
}

/// One fault the controller actually applied, for the run log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedFault {
    /// Operation count at which it fired.
    pub at_op: u64,
    /// The transition.
    pub kind: FaultKind,
    /// Routing epoch after application.
    pub epoch: u64,
}

impl fmt::Display for AppliedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} (epoch {})", self.kind, self.at_op, self.epoch)
    }
}

/// Per-node runtime fault flags, consulted lock-free on the hot path.
struct NodeFaultState {
    /// Plan-killed (admission refused, serving dark).
    killed: AtomicBool,
    /// Health-detector-marked down (routed around, still serving).
    health_down: AtomicBool,
    /// Operation count when health marked it down (probation base).
    health_down_at_op: AtomicU64,
    /// Consecutive forward failures observed against this holder.
    consecutive_timeouts: AtomicU32,
    /// Injected per-request latency, nanoseconds (0 = none).
    slow_nanos: AtomicU64,
    /// Stall horizon in nanoseconds since the cluster anchor (0 =
    /// none).
    stall_until_nanos: AtomicU64,
    /// Individually killed shard workers.
    workers_down: Vec<AtomicBool>,
}

/// Cluster-wide runtime fault state and health counters.
pub(crate) struct FaultState {
    /// Padded per node: every admission and every served job loads
    /// this node's flags, and the health detector's streak counter is
    /// written from peer workers — adjacent nodes must not share a
    /// line.
    nodes: Vec<CachePadded<NodeFaultState>>,
    /// Nodes currently health-marked down (fast probation guard).
    health_down_count: AtomicUsize,
    health_marked_down: AtomicU64,
    health_revived: AtomicU64,
}

impl FaultState {
    pub(crate) fn new(nodes: usize, shards_per_node: usize) -> Self {
        Self {
            nodes: (0..nodes)
                .map(|_| {
                    CachePadded::new(NodeFaultState {
                        killed: AtomicBool::new(false),
                        health_down: AtomicBool::new(false),
                        health_down_at_op: AtomicU64::new(0),
                        consecutive_timeouts: AtomicU32::new(0),
                        slow_nanos: AtomicU64::new(0),
                        stall_until_nanos: AtomicU64::new(0),
                        workers_down: (0..shards_per_node)
                            .map(|_| AtomicBool::new(false))
                            .collect(),
                    })
                })
                .collect(),
            health_down_count: AtomicUsize::new(0),
            health_marked_down: AtomicU64::new(0),
            health_revived: AtomicU64::new(0),
        }
    }

    /// Whether `node` refuses admission (plan-killed).
    pub(crate) fn node_killed(&self, node: usize) -> bool {
        self.nodes[node].killed.load(Ordering::Acquire)
    }

    /// Whether the store behind (`node`, `shard`) is dark — the node
    /// is killed or that worker is individually dead.
    pub(crate) fn serving_down(&self, node: usize, shard: usize) -> bool {
        let s = &self.nodes[node];
        s.killed.load(Ordering::Acquire) || s.workers_down[shard].load(Ordering::Acquire)
    }

    /// Applies plan-injected latency (slow node, stall) before a
    /// request is served; called on the shard worker.
    pub(crate) fn inject_latency(&self, node: usize, anchor: Instant) {
        let s = &self.nodes[node];
        let stall = s.stall_until_nanos.load(Ordering::Acquire);
        if stall > 0 {
            #[allow(clippy::cast_possible_truncation)]
            let now = anchor.elapsed().as_nanos() as u64;
            if now < stall {
                std::thread::sleep(Duration::from_nanos(stall - now));
            }
            // One worker clearing suffices; racing clears are idempotent.
            s.stall_until_nanos.store(0, Ordering::Release);
        }
        let slow = s.slow_nanos.load(Ordering::Acquire);
        if slow > 0 {
            std::thread::sleep(Duration::from_nanos(slow));
        }
    }

    /// Health detector: feeds the consecutive-timeout counter for
    /// `holder` and, at the threshold, marks it down and bumps the
    /// routing epoch. Successful peer service resets the streak.
    pub(crate) fn note_holder_outcome(
        &self,
        holder: usize,
        ok: bool,
        degrade: &DegradeConfig,
        now_op: u64,
        routing: &LiveRouting,
    ) {
        if degrade.timeout_threshold == 0 {
            return;
        }
        let s = &self.nodes[holder];
        if ok {
            s.consecutive_timeouts.store(0, Ordering::Relaxed);
            return;
        }
        let streak = s.consecutive_timeouts.fetch_add(1, Ordering::Relaxed) + 1;
        if streak < degrade.timeout_threshold {
            return;
        }
        if s.health_down.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire).is_ok()
        {
            s.health_down_at_op.store(now_op, Ordering::Relaxed);
            self.health_down_count.fetch_add(1, Ordering::Relaxed);
            self.health_marked_down.fetch_add(1, Ordering::Relaxed);
            self.sync_liveness(holder, routing);
        }
    }

    /// Probation pass: health-marked-down nodes rejoin routing after
    /// `probation_ops` admissions (cheap no-op while nothing is
    /// marked down).
    pub(crate) fn probation(&self, now_op: u64, degrade: &DegradeConfig, routing: &LiveRouting) {
        if self.health_down_count.load(Ordering::Relaxed) == 0 {
            return;
        }
        for (node, s) in self.nodes.iter().enumerate() {
            if !s.health_down.load(Ordering::Acquire) {
                continue;
            }
            let since = s.health_down_at_op.load(Ordering::Relaxed);
            if now_op < since.saturating_add(degrade.probation_ops) {
                continue;
            }
            if s.health_down
                .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                s.consecutive_timeouts.store(0, Ordering::Relaxed);
                self.health_down_count.fetch_sub(1, Ordering::Relaxed);
                self.health_revived.fetch_add(1, Ordering::Relaxed);
                self.sync_liveness(node, routing);
            }
        }
    }

    /// Applies one plan transition; returns the routing epoch after.
    pub(crate) fn apply(&self, kind: FaultKind, routing: &LiveRouting, anchor: Instant) -> u64 {
        match kind {
            FaultKind::KillNode(n) => {
                self.nodes[n].killed.store(true, Ordering::Release);
                self.sync_liveness(n, routing);
            }
            FaultKind::ReviveNode(n) => {
                let s = &self.nodes[n];
                s.killed.store(false, Ordering::Release);
                // Revival is a clean slate: any health verdict earned
                // while dead (or before) is reset with it.
                s.consecutive_timeouts.store(0, Ordering::Relaxed);
                if s.health_down
                    .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    self.health_down_count.fetch_sub(1, Ordering::Relaxed);
                }
                self.sync_liveness(n, routing);
            }
            FaultKind::KillWorker { node, shard } => {
                self.nodes[node].workers_down[shard].store(true, Ordering::Release);
            }
            FaultKind::ReviveWorker { node, shard } => {
                self.nodes[node].workers_down[shard].store(false, Ordering::Release);
            }
            FaultKind::SlowNode { node, delay_us } => {
                self.nodes[node].slow_nanos.store(delay_us * 1_000, Ordering::Release);
            }
            FaultKind::ClearSlow(n) => {
                self.nodes[n].slow_nanos.store(0, Ordering::Release);
            }
            FaultKind::Stall { node, micros } => {
                #[allow(clippy::cast_possible_truncation)]
                let now = anchor.elapsed().as_nanos() as u64;
                self.nodes[node].stall_until_nanos.store(now + micros * 1_000, Ordering::Release);
            }
        }
        routing.epoch()
    }

    /// Routing liveness is the conjunction of both verdicts.
    fn sync_liveness(&self, node: usize, routing: &LiveRouting) {
        let s = &self.nodes[node];
        let up = !s.killed.load(Ordering::Acquire) && !s.health_down.load(Ordering::Acquire);
        routing.set_live(node, up);
    }

    /// Nodes the health detector marked down over the run.
    pub(crate) fn health_marked_down(&self) -> u64 {
        self.health_marked_down.load(Ordering::Relaxed)
    }

    /// Probation revivals over the run.
    pub(crate) fn health_revived(&self) -> u64 {
        self.health_revived.load(Ordering::Relaxed)
    }
}

/// Applies due [`FaultPlan`] events as the operation counter crosses
/// their triggers, and logs what it applied.
pub(crate) struct FaultController {
    events: Vec<FaultEvent>,
    /// Index of the next unapplied event (guarded by `cursor`).
    cursor: Mutex<usize>,
    /// Trigger of the next unapplied event (`u64::MAX` when drained):
    /// the only thing the hot path reads.
    next_at: AtomicU64,
    log: Mutex<Vec<AppliedFault>>,
}

impl FaultController {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let next = plan.events.first().map_or(u64::MAX, |e| e.at_op);
        Self {
            events: plan.events,
            cursor: Mutex::new(0),
            next_at: AtomicU64::new(next),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Cheap hot-path check: is anything due at `op`?
    pub(crate) fn due(&self, op: u64) -> bool {
        op >= self.next_at.load(Ordering::Acquire)
    }

    /// Applies every event with `at_op <= op`. Racing callers
    /// serialize on the cursor; latecomers find nothing left to do.
    pub(crate) fn apply_due(
        &self,
        op: u64,
        state: &FaultState,
        routing: &LiveRouting,
        anchor: Instant,
    ) {
        let mut cursor = lock_recover(&self.cursor);
        while let Some(event) = self.events.get(*cursor) {
            if event.at_op > op {
                break;
            }
            *cursor += 1;
            let epoch = state.apply(event.kind, routing, anchor);
            lock_recover(&self.log).push(AppliedFault {
                at_op: event.at_op,
                kind: event.kind,
                epoch,
            });
        }
        let next = self.events.get(*cursor).map_or(u64::MAX, |e| e.at_op);
        self.next_at.store(next, Ordering::Release);
    }

    /// Everything applied so far, in application order.
    pub(crate) fn log(&self) -> Vec<AppliedFault> {
        lock_recover(&self.log).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingTable;

    #[test]
    fn builders_sort_by_trigger_and_validate() {
        let plan = FaultPlan::none()
            .with_node_outage(1, 500, Some(900))
            .with_worker_outage(0, 0, 50, None)
            .with_slowdown(2, 250, 100, Some(700))
            .with_stall(0, 1_000, 300);
        let ops: Vec<u64> = plan.events().iter().map(|e| e.at_op).collect();
        assert_eq!(ops, vec![50, 100, 300, 500, 700, 900]);
        assert!(plan.validate(3, 1).is_ok());
        assert!(plan.validate(2, 1).is_err(), "node 2 out of range");
        let worker = FaultPlan::none().with_worker_outage(0, 3, 10, None);
        assert!(worker.validate(1, 2).is_err(), "shard 3 out of range");
        let zero = FaultPlan::new(vec![FaultEvent { at_op: 0, kind: FaultKind::KillNode(0) }]);
        assert!(zero.validate(1, 1).is_err(), "op 0 never fires");
        let huge = FaultPlan::none().with_slowdown(0, MAX_INJECTED_DELAY_US + 1, 1, None);
        assert!(huge.validate(1, 1).is_err(), "delay beyond cap");
    }

    #[test]
    fn parse_round_trips_every_form() {
        let plan = FaultPlan::parse(
            "kill:1@500, revive:1@900, kill-worker:0.1@50, revive-worker:0.1@80, \
             slow:2:250@100, clear:2@700, stall:0:1000@300",
            3,
            2,
            10_000,
        )
        .unwrap();
        assert_eq!(plan.events().len(), 7);
        assert_eq!(plan.events()[0].kind, FaultKind::KillWorker { node: 0, shard: 1 });
        assert_eq!(plan.events()[6].kind, FaultKind::ReviveNode(1));
        // Display round-trips through parse.
        let rendered: Vec<String> =
            plan.events().iter().map(|e| format!("{}@{}", e.kind, e.at_op)).collect();
        let reparsed = FaultPlan::parse(&rendered.join(","), 3, 2, 10_000).unwrap();
        assert_eq!(reparsed, plan);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "kill:1",             // missing @OP
            "kill:9@10",          // node out of range
            "kill-worker:0.9@10", // shard out of range
            "kill:1@0",           // zero op
            "frob:1@10",          // unknown kind
            "slow:1@10",          // missing delay
            "seeded:1:2",         // missing mttr
            "slow:0:2000000@5",   // delay beyond cap
        ] {
            assert!(FaultPlan::parse(bad, 3, 2, 1_000).is_err(), "{bad:?} accepted");
        }
        assert_eq!(FaultPlan::parse("", 3, 2, 1_000).unwrap(), FaultPlan::none());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_alternate() {
        let a = FaultPlan::seeded(7, 4, 300, 120, 5_000);
        let b = FaultPlan::seeded(7, 4, 300, 120, 5_000);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty(), "mtbf well under horizon draws failures");
        assert!(a.validate(4, 1).is_ok());
        assert!(a.events().iter().all(|e| e.at_op >= 1 && e.at_op <= 5_000));
        // Per node the schedule strictly alternates kill/revive.
        for node in 0..4 {
            let mut expect_kill = true;
            for e in a.events().iter().filter(|e| e.kind.node() == node) {
                match e.kind {
                    FaultKind::KillNode(_) => {
                        assert!(expect_kill, "double kill for node {node}");
                        expect_kill = false;
                    }
                    FaultKind::ReviveNode(_) => {
                        assert!(!expect_kill, "revive before kill for node {node}");
                        expect_kill = true;
                    }
                    other => panic!("seeded plan drew {other}"),
                }
            }
        }
        let c = FaultPlan::seeded(8, 4, 300, 120, 5_000);
        assert_ne!(a, c, "different seed, different plan");
        // The seeded spec form expands identically.
        let via_spec = FaultPlan::parse("seeded:7:300:120", 4, 1, 5_000).unwrap();
        assert_eq!(via_spec, a);
    }

    #[test]
    fn controller_applies_due_events_once_and_logs() {
        let table = RoutingTable::empty(3);
        let routing = LiveRouting::new(table);
        let state = FaultState::new(3, 2);
        let plan =
            FaultPlan::none().with_node_outage(1, 10, Some(20)).with_worker_outage(2, 1, 15, None);
        let controller = FaultController::new(plan);
        let anchor = Instant::now();
        assert!(!controller.due(9));
        assert!(controller.due(10));
        controller.apply_due(10, &state, &routing, anchor);
        assert!(state.node_killed(1));
        assert!(!state.serving_down(2, 1));
        assert!(!routing.is_live(1));
        controller.apply_due(16, &state, &routing, anchor);
        assert!(state.serving_down(2, 1), "worker kill applied");
        assert!(state.serving_down(1, 0), "killed node is dark on every shard");
        controller.apply_due(25, &state, &routing, anchor);
        assert!(!state.node_killed(1), "revived");
        assert!(routing.is_live(1));
        assert!(!controller.due(u64::MAX - 1), "plan drained");
        let log = controller.log();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].kind, FaultKind::KillNode(1));
        assert_eq!(log[2].kind, FaultKind::ReviveNode(1));
        assert!(log[0].to_string().contains("kill:1@10"));
    }

    #[test]
    fn health_detector_marks_down_at_threshold_and_probation_revives() {
        let routing = LiveRouting::new(RoutingTable::empty(2));
        let state = FaultState::new(2, 1);
        let degrade =
            DegradeConfig { timeout_threshold: 3, probation_ops: 100, ..DegradeConfig::default() };
        // Two failures, then a success: streak resets, nothing marked.
        state.note_holder_outcome(1, false, &degrade, 10, &routing);
        state.note_holder_outcome(1, false, &degrade, 11, &routing);
        state.note_holder_outcome(1, true, &degrade, 12, &routing);
        assert!(routing.is_live(1));
        assert_eq!(state.health_marked_down(), 0);
        // Three consecutive failures: marked down, epoch bumped.
        for op in 20..23 {
            state.note_holder_outcome(1, false, &degrade, op, &routing);
        }
        assert!(!routing.is_live(1));
        assert_eq!(state.health_marked_down(), 1);
        // Probation before the window: still down. After: revived.
        state.probation(50, &degrade, &routing);
        assert!(!routing.is_live(1));
        state.probation(122, &degrade, &routing);
        assert!(routing.is_live(1));
        assert_eq!(state.health_revived(), 1);
        // Disabled detector never marks.
        let off = DegradeConfig { timeout_threshold: 0, ..DegradeConfig::default() };
        for op in 0..100 {
            state.note_holder_outcome(0, false, &off, op, &routing);
        }
        assert!(routing.is_live(0));
    }
}
