//! Bounded multi-producer / single-consumer ring queue — the engine's
//! purpose-built replacement for the `std::sync::mpsc::sync_channel`
//! hop on the shard request path.
//!
//! `sync_channel` takes a mutex on every send and allocates per
//! channel; under open-loop load that mutex (plus a condvar wake) is
//! paid *per request*. This ring makes the uncontended enqueue a
//! couple of atomic operations and, crucially, supports **batch
//! reservation**: a run of `n` jobs claims its slots with a single
//! compare-and-swap, so the queue-hop cost is amortized across the
//! whole run (the same discipline memcached-derived and LMAX-style
//! servers use to survive per-op coordination costs).
//!
//! # Design
//!
//! A power-of-two slot array indexed by monotonically increasing
//! `u64` positions (`pos & mask`), in the style of D. Vyukov's
//! bounded queue, restricted to one consumer:
//!
//! - `tail` is the next unclaimed producer position. Producers claim
//!   `[tail, tail+n)` by CAS-ing `tail` forward once per batch.
//! - `head` is the next unconsumed position, advanced only by the
//!   single consumer.
//! - Each slot carries a `seq` word that *publishes* it: after
//!   writing the value for position `p`, the producer stores
//!   `seq = p + 1`. The consumer treats a slot as readable only when
//!   `seq == p + 1`, which tolerates out-of-order publication among
//!   racing producers.
//!
//! # Why this is sound (Loom-style reasoning)
//!
//! The two hazards are a producer overwriting a slot the consumer is
//! still reading, and the consumer reading a value the producer has
//! not finished writing. Both reduce to two happens-before edges:
//!
//! 1. **publish**: producer writes value, then `seq.store(p + 1,
//!    Release)`; the consumer's `seq.load(Acquire) == p + 1` pairs
//!    with it, so the value write happens-before the value read.
//! 2. **reuse**: the consumer finishes reading position `q`, *then*
//!    stores `head ≥ q + 1` (Release). A producer claims position
//!    `p` only after observing `p < head + capacity` via
//!    `head.load(Acquire)`, i.e. only after observing a head store
//!    that happens-after the read of position `p − capacity` from the
//!    same slot. So the old read happens-before the new write.
//!
//! Claims are serialized by the CAS on `tail` (`u64` positions never
//! wrap in practice — 2⁶⁴ operations — so there is no ABA). The
//! consumer is single-threaded by construction: [`Consumer`] is not
//! `Clone` and its methods take `&mut self`.
//!
//! One more subtlety: a producer's `tail` snapshot can go stale
//! between loading it and loading `head` — another producer advances
//! the real tail and the consumer then moves `head` *past* the
//! snapshot. Both claim loops detect `head > tail` and refresh the
//! snapshot instead of computing a wrapped occupancy (the stale CAS
//! would have failed anyway). In the other direction the snapshot is
//! a lower bound of the real occupancy, so a `full` verdict is never
//! spurious.
//!
//! A producer that panics between claiming slots and publishing them
//! stalls the consumer at the unpublished position (and leaks the
//! claimed slots at drop); the engine's producers only move `Send`
//! data into slots, which cannot panic.
//!
//! The single-threaded semantics (FIFO per producer, capacity bound,
//! batch claim/drain equivalence to singles) are property-tested
//! against a `VecDeque` model below; a cross-thread stress test
//! checks per-producer order and loss-freedom under contention.

// The one module in the engine allowed to use unsafe code: the slot
// array needs `UnsafeCell<MaybeUninit<T>>` for racing initialization.
// Every unsafe block cites the happens-before argument above.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Slot<T> {
    /// Publication word: `p + 1` once position `p`'s value is ready.
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct RingInner<T> {
    slots: Box<[Slot<T>]>,
    mask: u64,
    /// Next position a producer may claim.
    tail: AtomicU64,
    /// Next position the consumer will read.
    head: AtomicU64,
}

// SAFETY: slots are plain storage; cross-thread transfer of T is
// gated on the Release/Acquire protocol documented above, so sharing
// the ring between threads is safe exactly when T itself is Send.
unsafe impl<T: Send> Send for RingInner<T> {}
unsafe impl<T: Send> Sync for RingInner<T> {}

impl<T> Drop for RingInner<T> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): drop every published,
        // unconsumed value. Claimed-but-unpublished slots (producer
        // panic mid-batch) are leaked, never double-dropped.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for pos in head..tail {
            let slot = &self.slots[(pos & self.mask) as usize];
            if slot.seq.load(Ordering::Relaxed) == pos + 1 {
                // SAFETY: seq == pos + 1 means the value was fully
                // written and never read (head never passed it).
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

/// Creates a bounded ring with room for at least `capacity` values
/// (rounded up to the next power of two), returning the shareable
/// producer side and the unique consumer side.
///
/// # Panics
///
/// Panics if `capacity` is zero.
#[must_use]
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity >= 1, "ring capacity must be at least 1");
    let cap = capacity.next_power_of_two();
    let slots = (0..cap)
        .map(|_| Slot { seq: AtomicU64::new(0), value: UnsafeCell::new(MaybeUninit::uninit()) })
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(RingInner {
        slots,
        mask: cap as u64 - 1,
        tail: AtomicU64::new(0),
        head: AtomicU64::new(0),
    });
    (Producer { inner: Arc::clone(&inner) }, Consumer { inner, head: 0 })
}

/// Shareable enqueue side of a [`ring`]. Cloning is cheap; any number
/// of threads may push concurrently.
pub struct Producer<T> {
    inner: Arc<RingInner<T>>,
}

impl<T> Clone for Producer<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Producer<T> {
    /// Usable capacity of the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Values currently claimed but not yet consumed (approximate
    /// under concurrency; exact when the ring is quiescent).
    #[must_use]
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Relaxed);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring currently holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues one value, returning it if the ring is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when no slot is free.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        let cap = inner.slots.len() as u64;
        let mut tail = inner.tail.load(Ordering::Relaxed);
        loop {
            // Reuse edge: Acquire on head makes the consumer's last
            // read of the slot we are about to claim visible.
            let head = inner.head.load(Ordering::Acquire);
            if head > tail {
                // Stale snapshot: another producer advanced tail and
                // the consumer moved head past our copy. Refresh and
                // retry (the CAS below would have failed anyway).
                tail = inner.tail.load(Ordering::Relaxed);
                continue;
            }
            // `tail <= real tail` at the moment head was read, so
            // `tail - head` is a lower bound of the real occupancy —
            // a `full` verdict here is never spurious.
            if tail - head >= cap {
                return Err(value); // full
            }
            match inner.tail.compare_exchange_weak(
                tail,
                tail + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => tail = current,
            }
        }
        let slot = &inner.slots[(tail & inner.mask) as usize];
        // SAFETY: the CAS gave this thread exclusive ownership of
        // position `tail`, and `tail < head + cap` proved the
        // consumer is done with this slot (reuse edge above).
        unsafe { (*slot.value.get()).write(value) };
        // Publish edge: value write happens-before this store.
        slot.seq.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Enqueues a run of values with **one** claim operation,
    /// draining the accepted prefix out of `values`. Returns how many
    /// were accepted (0 when the ring is full; fewer than
    /// `values.len()` when it is nearly full).
    pub fn try_push_batch(&self, values: &mut Vec<T>) -> usize {
        self.try_push_batch_map(values, |value| value)
    }

    /// Like [`Producer::try_push_batch`], but wraps each accepted
    /// value through `wrap` on its way into the ring — so callers
    /// holding a `Vec<U>` can enqueue `T`-typed messages without an
    /// intermediate allocation.
    pub fn try_push_batch_map<U>(
        &self,
        values: &mut Vec<U>,
        mut wrap: impl FnMut(U) -> T,
    ) -> usize {
        let want = values.len() as u64;
        if want == 0 {
            return 0;
        }
        let inner = &*self.inner;
        let cap = inner.slots.len() as u64;
        let mut tail = inner.tail.load(Ordering::Relaxed);
        let claimed = loop {
            let head = inner.head.load(Ordering::Acquire);
            if head > tail {
                // Stale snapshot (see `try_push`): refresh and retry.
                tail = inner.tail.load(Ordering::Relaxed);
                continue;
            }
            let free = cap - (tail - head);
            let n = want.min(free);
            if n == 0 {
                return 0;
            }
            match inner.tail.compare_exchange_weak(
                tail,
                tail + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break n,
                Err(current) => tail = current,
            }
        };
        for (i, value) in values.drain(..claimed as usize).enumerate() {
            let pos = tail + i as u64;
            let slot = &inner.slots[(pos & inner.mask) as usize];
            // SAFETY: the batch CAS claimed `[tail, tail+claimed)`
            // exclusively, and every claimed position is below
            // `head + cap` (reuse edge), so each slot is writable.
            unsafe { (*slot.value.get()).write(wrap(value)) };
            slot.seq.store(pos + 1, Ordering::Release);
        }
        claimed as usize
    }
}

/// Unique dequeue side of a [`ring`]. Not `Clone`; all methods take
/// `&mut self`, so single-consumer discipline is enforced by the type
/// system rather than by convention.
pub struct Consumer<T> {
    inner: Arc<RingInner<T>>,
    /// Consumer-private copy of head (the atomic is only for
    /// producers' capacity checks).
    head: u64,
}

impl<T> Consumer<T> {
    /// Whether a published value is ready to pop.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        let slot = &self.inner.slots[(self.head & self.inner.mask) as usize];
        slot.seq.load(Ordering::Acquire) == self.head + 1
    }

    /// Pops the next value, if one is published.
    pub fn pop(&mut self) -> Option<T> {
        let pos = self.head;
        let slot = &self.inner.slots[(pos & self.inner.mask) as usize];
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None;
        }
        // SAFETY: publish edge — seq == pos + 1 (Acquire) pairs with
        // the producer's Release store, so the value is fully written
        // and exclusively ours (only this consumer reads, and
        // producers cannot reclaim the slot until head advances).
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        self.head = pos + 1;
        // Reuse edge: the value read above happens-before this store.
        self.inner.head.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Drains up to `max` published values into `out` with a single
    /// head update — the consumer-side half of batch amortization.
    /// Returns how many values were appended.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0u64;
        while (taken as usize) < max {
            let pos = self.head + taken;
            let slot = &self.inner.slots[(pos & self.inner.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                break;
            }
            // SAFETY: same publish-edge argument as `pop`, per slot.
            out.push(unsafe { (*slot.value.get()).assume_init_read() });
            taken += 1;
        }
        if taken > 0 {
            self.head += taken;
            // One Release store frees all `taken` slots at once.
            self.inner.head.store(self.head, Ordering::Release);
        }
        taken as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::VecDeque;

    #[test]
    fn fifo_and_capacity_bound() {
        let (tx, mut rx) = ring::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99), "fifth push must bounce");
        assert_eq!(tx.len(), 4);
        for v in 0..4 {
            assert_eq!(rx.pop(), Some(v));
        }
        assert_eq!(rx.pop(), None);
        assert!(tx.is_empty());
    }

    #[test]
    fn batch_push_claims_at_most_the_free_space() {
        let (tx, mut rx) = ring::<u32>(4);
        tx.try_push(0).unwrap();
        let mut batch = vec![1, 2, 3, 4, 5];
        assert_eq!(tx.try_push_batch(&mut batch), 3, "only 3 slots were free");
        assert_eq!(batch, vec![4, 5], "accepted prefix drained");
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 16), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert!(!rx.has_pending());
    }

    #[test]
    fn wraparound_reuses_slots_correctly() {
        let (tx, mut rx) = ring::<u64>(2);
        for lap in 0..1_000u64 {
            tx.try_push(lap).unwrap();
            assert_eq!(rx.pop(), Some(lap));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn drop_releases_unconsumed_values() {
        // Arc strong counts observe that queued values are dropped
        // with the ring, not leaked.
        let marker = Arc::new(());
        {
            let (tx, rx) = ring::<Arc<()>>(8);
            for _ in 0..5 {
                tx.try_push(Arc::clone(&marker)).unwrap();
            }
            drop(tx);
            drop(rx);
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    proptest! {
        /// Random interleavings of single/batch push and pop match a
        /// VecDeque executing the same accepted operations.
        #[test]
        fn matches_a_vecdeque_model(seed in 0u64..500, cap in 1usize..40) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (tx, mut rx) = ring::<u64>(cap);
            let mut model: VecDeque<u64> = VecDeque::new();
            let mut next = 0u64;
            for _ in 0..400 {
                match rng.gen_range(0u32..4) {
                    0 => {
                        let accepted = tx.try_push(next).is_ok();
                        prop_assert_eq!(accepted, model.len() < tx.capacity());
                        if accepted {
                            model.push_back(next);
                        }
                        next += 1;
                    }
                    1 => {
                        let n = rng.gen_range(0usize..8);
                        let mut batch: Vec<u64> = (next..next + n as u64).collect();
                        let accepted = tx.try_push_batch(&mut batch);
                        let free = tx.capacity() - model.len();
                        prop_assert_eq!(accepted, n.min(free));
                        for v in next..next + accepted as u64 {
                            model.push_back(v);
                        }
                        next += n as u64;
                    }
                    2 => {
                        prop_assert_eq!(rx.pop(), model.pop_front());
                    }
                    _ => {
                        let max = rng.gen_range(0usize..8);
                        let mut out = Vec::new();
                        let taken = rx.pop_batch(&mut out, max);
                        prop_assert_eq!(taken, max.min(model.len()));
                        for v in out {
                            prop_assert_eq!(Some(v), model.pop_front());
                        }
                    }
                }
                prop_assert_eq!(tx.len(), model.len());
            }
        }
    }

    #[test]
    fn concurrent_producers_lose_nothing_and_keep_per_producer_order() {
        const PRODUCERS: u64 = 3;
        const PER_PRODUCER: u64 = 20_000;
        let (tx, mut rx) = ring::<u64>(64);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                let mut batch = Vec::new();
                let mut sent = 0u64;
                while sent < PER_PRODUCER {
                    // Alternate single pushes and batches of 7.
                    if sent % 2 == 0 {
                        let v = p * PER_PRODUCER + sent;
                        while tx.try_push(v).is_err() {
                            std::thread::yield_now();
                        }
                        sent += 1;
                    } else {
                        let n = 7.min(PER_PRODUCER - sent);
                        batch.clear();
                        batch.extend((sent..sent + n).map(|i| p * PER_PRODUCER + i));
                        while !batch.is_empty() {
                            if tx.try_push_batch(&mut batch) == 0 {
                                std::thread::yield_now();
                            }
                        }
                        sent += n;
                    }
                }
            }));
        }
        let mut last_seen = [None::<u64>; PRODUCERS as usize];
        let mut received = 0u64;
        let mut out = Vec::new();
        while received < PRODUCERS * PER_PRODUCER {
            out.clear();
            if rx.pop_batch(&mut out, 32) == 0 {
                std::thread::yield_now();
                continue;
            }
            for &v in &out {
                let producer = (v / PER_PRODUCER) as usize;
                // FIFO per producer: values arrive in send order.
                assert!(last_seen[producer].is_none_or(|prev| prev < v), "reordered {v}");
                last_seen[producer] = Some(v);
                received += 1;
            }
        }
        for handle in handles {
            handle.join().unwrap();
        }
        for (p, last) in last_seen.iter().enumerate() {
            assert_eq!(*last, Some((p as u64 + 1) * PER_PRODUCER - 1));
        }
    }
}
