//! Bounded multi-producer / single-consumer ring queue — the engine's
//! purpose-built replacement for the `std::sync::mpsc::sync_channel`
//! hop on the shard request path.
//!
//! `sync_channel` takes a mutex on every send and allocates per
//! channel; under open-loop load that mutex (plus a condvar wake) is
//! paid *per request*. This ring makes the uncontended enqueue a
//! couple of atomic operations and, crucially, supports **batch
//! reservation**: a run of `n` jobs claims its slots with a single
//! compare-and-swap, so the queue-hop cost is amortized across the
//! whole run (the same discipline memcached-derived and LMAX-style
//! servers use to survive per-op coordination costs).
//!
//! # Design
//!
//! A power-of-two slot array indexed by monotonically increasing
//! `u64` positions (`pos & mask`), in the style of D. Vyukov's
//! bounded queue, restricted to one consumer:
//!
//! - `tail` is the next unclaimed producer position. Producers claim
//!   `[tail, tail+n)` by CAS-ing `tail` forward once per batch.
//! - `head` is the next unconsumed position, advanced only by the
//!   single consumer.
//! - Each slot carries a `seq` word that *publishes* it: after
//!   writing the value for position `p`, the producer stores
//!   `seq = p + 1`. The consumer treats a slot as readable only when
//!   `seq == p + 1`, which tolerates out-of-order publication among
//!   racing producers.
//!
//! # SPSC demotion
//!
//! When the owner can prove a ring has exactly one producer (the
//! engine's seal protocol in `shard.rs` does this at the first
//! submission), the ring can be *demoted* to single-producer mode:
//! the claim CAS — the one contended RMW on the enqueue path —
//! becomes a plain load + plain store of `tail`, because a lone
//! producer's snapshot can never go stale. Publication (`seq`) and
//! reuse (`head`) edges are unchanged, so the consumer side is
//! oblivious to the mode and the observable behaviour is identical
//! (property-tested against the MPSC path below). Demotion is
//! `unsafe`: a second concurrent producer on an SPSC ring is a data
//! race on the slot array. Debug builds carry an overlap detector
//! that panics if two claims ever interleave.
//!
//! # Why this is sound (Loom-style reasoning)
//!
//! The two hazards are a producer overwriting a slot the consumer is
//! still reading, and the consumer reading a value the producer has
//! not finished writing. Both reduce to two happens-before edges:
//!
//! 1. **publish**: producer writes value, then `seq.store(p + 1,
//!    Release)`; the consumer's `seq.load(Acquire) == p + 1` pairs
//!    with it, so the value write happens-before the value read.
//! 2. **reuse**: the consumer finishes reading position `q`, *then*
//!    stores `head ≥ q + 1` (Release). A producer claims position
//!    `p` only after observing `p < head + capacity` via
//!    `head.load(Acquire)`, i.e. only after observing a head store
//!    that happens-after the read of position `p − capacity` from the
//!    same slot. So the old read happens-before the new write.
//!
//! Claims are serialized by the CAS on `tail` (`u64` positions never
//! wrap in practice — 2⁶⁴ operations — so there is no ABA); in SPSC
//! mode they are serialized by the caller's single-producer contract
//! instead. The consumer is single-threaded by construction:
//! [`Consumer`] is not `Clone` and its methods take `&mut self`.
//!
//! One more subtlety: a producer's `tail` snapshot can go stale
//! between loading it and loading `head` — another producer advances
//! the real tail and the consumer then moves `head` *past* the
//! snapshot. Both MPSC claim loops detect `head > tail` and refresh
//! the snapshot instead of computing a wrapped occupancy (the stale
//! CAS would have failed anyway). In the other direction the snapshot
//! is a lower bound of the real occupancy, so a `full` verdict is
//! never spurious. In SPSC mode the snapshot is exact — only this
//! producer moves `tail` — so neither hazard exists.
//!
//! A producer that panics between claiming slots and publishing them
//! stalls the consumer at the unpublished position (and leaks the
//! claimed slots at drop); the engine's producers only move `Send`
//! data into slots, which cannot panic.
//!
//! The single-threaded semantics (FIFO per producer, capacity bound,
//! batch claim/drain equivalence to singles) are property-tested
//! against a `VecDeque` model below — in both modes, plus a direct
//! MPSC-vs-SPSC equivalence run; a cross-thread stress test checks
//! per-producer order and loss-freedom under contention, and a
//! handoff test exercises SPSC across threads with a happens-before
//! edge between producers.

// The one module in the engine allowed to define unsafe code: the
// slot array needs `UnsafeCell<MaybeUninit<T>>` for racing
// initialization. Every unsafe block cites the happens-before
// argument above.
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crate::pad::CachePadded;

/// Producer-side coordination discipline of a ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Any number of concurrent producers; slots claimed by CAS.
    Mpsc,
    /// Exactly one producer at a time; slots claimed by a plain
    /// load + store of `tail`. Concurrent producers are a data race.
    Spsc,
}

const MODE_MPSC: u8 = 0;
const MODE_SPSC: u8 = 1;

struct Slot<T> {
    /// Publication word: `p + 1` once position `p`'s value is ready.
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct RingInner<T> {
    slots: Box<[Slot<T>]>,
    mask: u64,
    /// Claim discipline (`MODE_MPSC` / `MODE_SPSC`). Only ever moves
    /// Mpsc → Spsc, under [`Producer::demote_to_spsc`]'s contract.
    mode: AtomicU8,
    /// Debug-only overlap detector: set while an SPSC claim is in
    /// flight so a racing second producer panics instead of silently
    /// corrupting the slot array.
    #[cfg(debug_assertions)]
    spsc_claim: std::sync::atomic::AtomicBool,
    /// Next position a producer may claim. Padded: producers hammer
    /// `tail` while the consumer hammers `head`; sharing a line would
    /// make every claim and every drain invalidate the other side.
    tail: CachePadded<AtomicU64>,
    /// Next position the consumer will read.
    head: CachePadded<AtomicU64>,
}

// SAFETY: slots are plain storage; cross-thread transfer of T is
// gated on the Release/Acquire protocol documented above, so sharing
// the ring between threads is safe exactly when T itself is Send.
unsafe impl<T: Send> Send for RingInner<T> {}
unsafe impl<T: Send> Sync for RingInner<T> {}

impl<T> Drop for RingInner<T> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): drop every published,
        // unconsumed value. Claimed-but-unpublished slots (producer
        // panic mid-batch) are leaked, never double-dropped.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for pos in head..tail {
            let slot = &self.slots[(pos & self.mask) as usize];
            if slot.seq.load(Ordering::Relaxed) == pos + 1 {
                // SAFETY: seq == pos + 1 means the value was fully
                // written and never read (head never passed it).
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

/// Debug-build guard asserting SPSC claims never overlap. Entering
/// while another claim is in flight panics — turning a silent data
/// race into a loud test failure.
#[cfg(debug_assertions)]
struct SpscClaimGuard<'a> {
    flag: &'a std::sync::atomic::AtomicBool,
}

#[cfg(debug_assertions)]
impl<'a> SpscClaimGuard<'a> {
    fn enter(flag: &'a std::sync::atomic::AtomicBool) -> Self {
        assert!(
            !flag.swap(true, Ordering::Acquire),
            "two producers claimed concurrently on an SPSC ring — \
             the single-producer contract was violated"
        );
        Self { flag }
    }
}

#[cfg(debug_assertions)]
impl Drop for SpscClaimGuard<'_> {
    fn drop(&mut self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// Creates a bounded **MPSC** ring with room for at least `capacity`
/// values (rounded up to the next power of two), returning the
/// shareable producer side and the unique consumer side.
///
/// # Panics
///
/// Panics if `capacity` is zero.
#[must_use]
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    ring_with(capacity, Mode::Mpsc)
}

/// Creates a bounded ring in an explicit [`Mode`]. `Mode::Spsc` rings
/// start life under the single-producer contract: the caller must
/// guarantee at most one thread pushes at a time, with a
/// happens-before edge between successive producing threads (a
/// thread join or message handoff). [`Producer`] is still `Clone` —
/// the contract is *at most one pushing at a time*, not *one handle*.
///
/// # Panics
///
/// Panics if `capacity` is zero.
#[must_use]
pub fn ring_with<T>(capacity: usize, mode: Mode) -> (Producer<T>, Consumer<T>) {
    assert!(capacity >= 1, "ring capacity must be at least 1");
    let cap = capacity.next_power_of_two();
    let slots = (0..cap)
        .map(|_| Slot { seq: AtomicU64::new(0), value: UnsafeCell::new(MaybeUninit::uninit()) })
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let mode = match mode {
        Mode::Mpsc => MODE_MPSC,
        Mode::Spsc => MODE_SPSC,
    };
    let inner = Arc::new(RingInner {
        slots,
        mask: cap as u64 - 1,
        mode: AtomicU8::new(mode),
        #[cfg(debug_assertions)]
        spsc_claim: std::sync::atomic::AtomicBool::new(false),
        tail: CachePadded::new(AtomicU64::new(0)),
        head: CachePadded::new(AtomicU64::new(0)),
    });
    (Producer { inner: Arc::clone(&inner) }, Consumer { inner, head: 0 })
}

/// Shareable enqueue side of a [`ring`]. Cloning is cheap; any number
/// of threads may push concurrently in MPSC mode, at most one at a
/// time in SPSC mode.
pub struct Producer<T> {
    inner: Arc<RingInner<T>>,
}

impl<T> Clone for Producer<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Producer<T> {
    /// Usable capacity of the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Values currently claimed but not yet consumed (approximate
    /// under concurrency; exact when the ring is quiescent).
    #[must_use]
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Relaxed);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring currently holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The claim discipline currently in force.
    #[must_use]
    pub fn mode(&self) -> Mode {
        // Relaxed is enough: a producer that reads a stale `Mpsc`
        // takes the CAS path, which is correct in either mode.
        if self.inner.mode.load(Ordering::Relaxed) == MODE_SPSC {
            Mode::Spsc
        } else {
            Mode::Mpsc
        }
    }

    /// Demotes the ring to SPSC mode: the claim CAS becomes a plain
    /// store. Irreversible.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that, from some point that
    /// happens-before every push after this call, **at most one
    /// thread pushes at a time**, with a happens-before edge between
    /// successive producing threads. The engine's seal protocol
    /// (`shard.rs`) establishes this by demoting inside a critical
    /// section that every submission path synchronizes with before
    /// its first push. Violating the contract is a data race on the
    /// slot array (undefined behaviour); debug builds panic via the
    /// overlap detector instead.
    pub unsafe fn demote_to_spsc(&self) {
        // Release so the mode flip (and anything before it) is
        // visible to producers that synchronize with the caller's
        // seal protocol; the flag itself tolerates stale reads.
        self.inner.mode.store(MODE_SPSC, Ordering::Release);
    }

    /// Enqueues one value, returning it if the ring is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when no slot is free.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        if self.mode() == Mode::Spsc {
            return self.try_push_spsc(value);
        }
        let inner = &*self.inner;
        let cap = inner.slots.len() as u64;
        let mut tail = inner.tail.load(Ordering::Relaxed);
        loop {
            // Reuse edge: Acquire on head makes the consumer's last
            // read of the slot we are about to claim visible.
            let head = inner.head.load(Ordering::Acquire);
            if head > tail {
                // Stale snapshot: another producer advanced tail and
                // the consumer moved head past our copy. Refresh and
                // retry (the CAS below would have failed anyway).
                tail = inner.tail.load(Ordering::Relaxed);
                continue;
            }
            // `tail <= real tail` at the moment head was read, so
            // `tail - head` is a lower bound of the real occupancy —
            // a `full` verdict here is never spurious.
            if tail - head >= cap {
                return Err(value); // full
            }
            match inner.tail.compare_exchange_weak(
                tail,
                tail + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(current) => tail = current,
            }
        }
        let slot = &inner.slots[(tail & inner.mask) as usize];
        // SAFETY: the CAS gave this thread exclusive ownership of
        // position `tail`, and `tail < head + cap` proved the
        // consumer is done with this slot (reuse edge above).
        unsafe { (*slot.value.get()).write(value) };
        // Publish edge: value write happens-before this store.
        slot.seq.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Single-producer enqueue: no CAS. Sound only under the
    /// [`Producer::demote_to_spsc`] contract — this thread is the
    /// only producer, so its `tail` snapshot is exact and a plain
    /// store claims the slot.
    fn try_push_spsc(&self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        #[cfg(debug_assertions)]
        let _guard = SpscClaimGuard::enter(&inner.spsc_claim);
        let cap = inner.slots.len() as u64;
        let tail = inner.tail.load(Ordering::Relaxed);
        // Reuse edge: identical to the MPSC path. `head > tail` is
        // impossible here — only this producer advances tail.
        let head = inner.head.load(Ordering::Acquire);
        if tail - head >= cap {
            return Err(value); // full
        }
        let slot = &inner.slots[(tail & inner.mask) as usize];
        // SAFETY: single-producer contract — no other thread can
        // claim `tail` — and `tail < head + cap` proved the consumer
        // is done with this slot (reuse edge above).
        unsafe { (*slot.value.get()).write(value) };
        // Publish edge: value write happens-before this store.
        slot.seq.store(tail + 1, Ordering::Release);
        // Claim advance: a plain store, the whole point of the mode.
        // Relaxed is enough — the consumer keys off `seq`, and only
        // this producer reads `tail`.
        inner.tail.store(tail + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Enqueues a run of values with **one** claim operation,
    /// draining the accepted prefix out of `values`. Returns how many
    /// were accepted (0 when the ring is full; fewer than
    /// `values.len()` when it is nearly full).
    pub fn try_push_batch(&self, values: &mut Vec<T>) -> usize {
        self.try_push_batch_map(values, |value| value)
    }

    /// Like [`Producer::try_push_batch`], but wraps each accepted
    /// value through `wrap` on its way into the ring — so callers
    /// holding a `Vec<U>` can enqueue `T`-typed messages without an
    /// intermediate allocation.
    pub fn try_push_batch_map<U>(
        &self,
        values: &mut Vec<U>,
        mut wrap: impl FnMut(U) -> T,
    ) -> usize {
        let want = values.len() as u64;
        if want == 0 {
            return 0;
        }
        if self.mode() == Mode::Spsc {
            return self.try_push_batch_map_spsc(values, wrap);
        }
        let inner = &*self.inner;
        let cap = inner.slots.len() as u64;
        let mut tail = inner.tail.load(Ordering::Relaxed);
        let claimed = loop {
            let head = inner.head.load(Ordering::Acquire);
            if head > tail {
                // Stale snapshot (see `try_push`): refresh and retry.
                tail = inner.tail.load(Ordering::Relaxed);
                continue;
            }
            let free = cap - (tail - head);
            let n = want.min(free);
            if n == 0 {
                return 0;
            }
            match inner.tail.compare_exchange_weak(
                tail,
                tail + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break n,
                Err(current) => tail = current,
            }
        };
        for (i, value) in values.drain(..claimed as usize).enumerate() {
            let pos = tail + i as u64;
            let slot = &inner.slots[(pos & inner.mask) as usize];
            // SAFETY: the batch CAS claimed `[tail, tail+claimed)`
            // exclusively, and every claimed position is below
            // `head + cap` (reuse edge), so each slot is writable.
            unsafe { (*slot.value.get()).write(wrap(value)) };
            slot.seq.store(pos + 1, Ordering::Release);
        }
        claimed as usize
    }

    /// Test-only: holds the SPSC overlap-detector flag as if a claim
    /// were in flight, so tests can provoke the detector
    /// deterministically instead of racing threads.
    #[cfg(all(test, debug_assertions))]
    fn hold_spsc_claim(&self) -> SpscClaimGuard<'_> {
        SpscClaimGuard::enter(&self.inner.spsc_claim)
    }

    /// Single-producer batch claim: the batch CAS becomes a plain
    /// store after the slots are published.
    fn try_push_batch_map_spsc<U>(
        &self,
        values: &mut Vec<U>,
        mut wrap: impl FnMut(U) -> T,
    ) -> usize {
        let inner = &*self.inner;
        #[cfg(debug_assertions)]
        let _guard = SpscClaimGuard::enter(&inner.spsc_claim);
        let want = values.len() as u64;
        let cap = inner.slots.len() as u64;
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        let free = cap - (tail - head);
        let claimed = want.min(free);
        if claimed == 0 {
            return 0;
        }
        for (i, value) in values.drain(..claimed as usize).enumerate() {
            let pos = tail + i as u64;
            let slot = &inner.slots[(pos & inner.mask) as usize];
            // SAFETY: single-producer contract — positions
            // `[tail, tail+claimed)` cannot be claimed by anyone
            // else — and every position is below `head + cap`
            // (reuse edge), so each slot is writable.
            unsafe { (*slot.value.get()).write(wrap(value)) };
            slot.seq.store(pos + 1, Ordering::Release);
        }
        inner.tail.store(tail + claimed, Ordering::Relaxed);
        claimed as usize
    }
}

/// Unique dequeue side of a [`ring`]. Not `Clone`; all methods take
/// `&mut self`, so single-consumer discipline is enforced by the type
/// system rather than by convention.
pub struct Consumer<T> {
    inner: Arc<RingInner<T>>,
    /// Consumer-private copy of head (the atomic is only for
    /// producers' capacity checks).
    head: u64,
}

impl<T> Consumer<T> {
    /// Whether a published value is ready to pop.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        let slot = &self.inner.slots[(self.head & self.inner.mask) as usize];
        slot.seq.load(Ordering::Acquire) == self.head + 1
    }

    /// Pops the next value, if one is published.
    pub fn pop(&mut self) -> Option<T> {
        let pos = self.head;
        let slot = &self.inner.slots[(pos & self.inner.mask) as usize];
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None;
        }
        // SAFETY: publish edge — seq == pos + 1 (Acquire) pairs with
        // the producer's Release store, so the value is fully written
        // and exclusively ours (only this consumer reads, and
        // producers cannot reclaim the slot until head advances).
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        self.head = pos + 1;
        // Reuse edge: the value read above happens-before this store.
        self.inner.head.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Drains up to `max` published values into `out` with a single
    /// head update — the consumer-side half of batch amortization.
    /// Returns how many values were appended.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0u64;
        while (taken as usize) < max {
            let pos = self.head + taken;
            let slot = &self.inner.slots[(pos & self.inner.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                break;
            }
            // SAFETY: same publish-edge argument as `pop`, per slot.
            out.push(unsafe { (*slot.value.get()).assume_init_read() });
            taken += 1;
        }
        if taken > 0 {
            self.head += taken;
            // One Release store frees all `taken` slots at once.
            self.inner.head.store(self.head, Ordering::Release);
        }
        taken as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::VecDeque;

    #[test]
    fn fifo_and_capacity_bound() {
        for mode in [Mode::Mpsc, Mode::Spsc] {
            let (tx, mut rx) = ring_with::<u32>(4, mode);
            assert_eq!(tx.capacity(), 4);
            assert_eq!(tx.mode(), mode);
            for v in 0..4 {
                tx.try_push(v).unwrap();
            }
            assert_eq!(tx.try_push(99), Err(99), "fifth push must bounce");
            assert_eq!(tx.len(), 4);
            for v in 0..4 {
                assert_eq!(rx.pop(), Some(v));
            }
            assert_eq!(rx.pop(), None);
            assert!(tx.is_empty());
        }
    }

    #[test]
    fn batch_push_claims_at_most_the_free_space() {
        for mode in [Mode::Mpsc, Mode::Spsc] {
            let (tx, mut rx) = ring_with::<u32>(4, mode);
            tx.try_push(0).unwrap();
            let mut batch = vec![1, 2, 3, 4, 5];
            assert_eq!(tx.try_push_batch(&mut batch), 3, "only 3 slots were free");
            assert_eq!(batch, vec![4, 5], "accepted prefix drained");
            let mut out = Vec::new();
            assert_eq!(rx.pop_batch(&mut out, 16), 4);
            assert_eq!(out, vec![0, 1, 2, 3]);
            assert!(!rx.has_pending());
        }
    }

    #[test]
    fn wraparound_reuses_slots_correctly() {
        for mode in [Mode::Mpsc, Mode::Spsc] {
            let (tx, mut rx) = ring_with::<u64>(2, mode);
            for lap in 0..1_000u64 {
                tx.try_push(lap).unwrap();
                assert_eq!(rx.pop(), Some(lap));
            }
            assert_eq!(rx.pop(), None);
        }
    }

    #[test]
    fn drop_releases_unconsumed_values() {
        // Arc strong counts observe that queued values are dropped
        // with the ring, not leaked.
        for mode in [Mode::Mpsc, Mode::Spsc] {
            let marker = Arc::new(());
            {
                let (tx, rx) = ring_with::<Arc<()>>(8, mode);
                for _ in 0..5 {
                    tx.try_push(Arc::clone(&marker)).unwrap();
                }
                drop(tx);
                drop(rx);
            }
            assert_eq!(Arc::strong_count(&marker), 1);
        }
    }

    #[test]
    fn demotion_switches_the_claim_path() {
        let (tx, mut rx) = ring::<u32>(8);
        assert_eq!(tx.mode(), Mode::Mpsc);
        tx.try_push(1).unwrap();
        // SAFETY: this thread is the only producer, quiescent here.
        unsafe { tx.demote_to_spsc() };
        assert_eq!(tx.mode(), Mode::Spsc);
        tx.try_push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
    }

    /// Drives one ring with a scripted operation sequence, checking
    /// it against a `VecDeque` model at every step.
    fn run_against_model(
        mode: Mode,
        seed: u64,
        cap: usize,
    ) -> Result<(), proptest::test_runner::TestCaseError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let (tx, mut rx) = ring_with::<u64>(cap, mode);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for _ in 0..400 {
            match rng.gen_range(0u32..4) {
                0 => {
                    let accepted = tx.try_push(next).is_ok();
                    prop_assert_eq!(accepted, model.len() < tx.capacity());
                    if accepted {
                        model.push_back(next);
                    }
                    next += 1;
                }
                1 => {
                    let n = rng.gen_range(0usize..8);
                    let mut batch: Vec<u64> = (next..next + n as u64).collect();
                    let accepted = tx.try_push_batch(&mut batch);
                    let free = tx.capacity() - model.len();
                    prop_assert_eq!(accepted, n.min(free));
                    for v in next..next + accepted as u64 {
                        model.push_back(v);
                    }
                    next += n as u64;
                }
                2 => {
                    prop_assert_eq!(rx.pop(), model.pop_front());
                }
                _ => {
                    let max = rng.gen_range(0usize..8);
                    let mut out = Vec::new();
                    let taken = rx.pop_batch(&mut out, max);
                    prop_assert_eq!(taken, max.min(model.len()));
                    for v in out {
                        prop_assert_eq!(Some(v), model.pop_front());
                    }
                }
            }
            prop_assert_eq!(tx.len(), model.len());
        }
        Ok(())
    }

    proptest! {
        /// Random interleavings of single/batch push and pop match a
        /// VecDeque executing the same accepted operations — in both
        /// claim modes. Each mode tracking the model implies the two
        /// modes are observationally identical, and the run below
        /// checks that directly as well.
        #[test]
        fn matches_a_vecdeque_model(seed in 0u64..500, cap in 1usize..40) {
            run_against_model(Mode::Mpsc, seed, cap)?;
            run_against_model(Mode::Spsc, seed, cap)?;
        }

        /// SPSC demotion is observationally invisible: an MPSC ring
        /// and an SPSC ring fed the identical operation sequence
        /// return bit-identical results — same accept/reject
        /// verdicts, same popped values, same lengths, at every step.
        #[test]
        fn spsc_is_bit_identical_to_mpsc(seed in 0u64..500, cap in 1usize..40) {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mtx, mut mrx) = ring_with::<u64>(cap, Mode::Mpsc);
            let (stx, mut srx) = ring_with::<u64>(cap, Mode::Spsc);
            let mut next = 0u64;
            for _ in 0..400 {
                match rng.gen_range(0u32..4) {
                    0 => {
                        prop_assert_eq!(mtx.try_push(next).is_ok(), stx.try_push(next).is_ok());
                        next += 1;
                    }
                    1 => {
                        let n = rng.gen_range(0usize..8);
                        let mut a: Vec<u64> = (next..next + n as u64).collect();
                        let mut b = a.clone();
                        prop_assert_eq!(mtx.try_push_batch(&mut a), stx.try_push_batch(&mut b));
                        prop_assert_eq!(a, b);
                        next += n as u64;
                    }
                    2 => {
                        prop_assert_eq!(mrx.pop(), srx.pop());
                    }
                    _ => {
                        let max = rng.gen_range(0usize..8);
                        let (mut a, mut b) = (Vec::new(), Vec::new());
                        prop_assert_eq!(mrx.pop_batch(&mut a, max), srx.pop_batch(&mut b, max));
                        prop_assert_eq!(a, b);
                    }
                }
                prop_assert_eq!(mtx.len(), stx.len());
            }
        }
    }

    #[test]
    fn concurrent_producers_lose_nothing_and_keep_per_producer_order() {
        const PRODUCERS: u64 = 3;
        const PER_PRODUCER: u64 = 20_000;
        let (tx, mut rx) = ring::<u64>(64);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                let mut batch = Vec::new();
                let mut sent = 0u64;
                while sent < PER_PRODUCER {
                    // Alternate single pushes and batches of 7.
                    if sent % 2 == 0 {
                        let v = p * PER_PRODUCER + sent;
                        while tx.try_push(v).is_err() {
                            std::thread::yield_now();
                        }
                        sent += 1;
                    } else {
                        let n = 7.min(PER_PRODUCER - sent);
                        batch.clear();
                        batch.extend((sent..sent + n).map(|i| p * PER_PRODUCER + i));
                        while !batch.is_empty() {
                            if tx.try_push_batch(&mut batch) == 0 {
                                std::thread::yield_now();
                            }
                        }
                        sent += n;
                    }
                }
            }));
        }
        let mut last_seen = [None::<u64>; PRODUCERS as usize];
        let mut received = 0u64;
        let mut out = Vec::new();
        while received < PRODUCERS * PER_PRODUCER {
            out.clear();
            if rx.pop_batch(&mut out, 32) == 0 {
                std::thread::yield_now();
                continue;
            }
            for &v in &out {
                let producer = (v / PER_PRODUCER) as usize;
                // FIFO per producer: values arrive in send order.
                assert!(last_seen[producer].is_none_or(|prev| prev < v), "reordered {v}");
                last_seen[producer] = Some(v);
                received += 1;
            }
        }
        for handle in handles {
            handle.join().unwrap();
        }
        for (p, last) in last_seen.iter().enumerate() {
            assert_eq!(*last, Some((p as u64 + 1) * PER_PRODUCER - 1));
        }
    }

    #[test]
    fn spsc_cross_thread_handoff_with_happens_before_is_sound() {
        // Producers take turns across threads: thread A pushes, is
        // joined (happens-before edge), then thread B pushes. This
        // is exactly the temporal single-producer contract SPSC
        // permits — the consumer drains concurrently throughout.
        const TURNS: u64 = 8;
        const PER_TURN: u64 = 5_000;
        let (tx, mut rx) = ring_with::<u64>(64, Mode::Spsc);
        let drainer = std::thread::spawn(move || {
            let mut out = Vec::new();
            let mut received = Vec::new();
            while received.len() < (TURNS * PER_TURN) as usize {
                out.clear();
                if rx.pop_batch(&mut out, 32) == 0 {
                    std::thread::yield_now();
                    continue;
                }
                received.extend_from_slice(&out);
            }
            received
        });
        for turn in 0..TURNS {
            let tx = tx.clone();
            // join() gives the next turn's thread a happens-before
            // edge over this one's pushes.
            std::thread::spawn(move || {
                let mut batch = Vec::new();
                let mut sent = 0u64;
                while sent < PER_TURN {
                    let n = 9.min(PER_TURN - sent);
                    batch.clear();
                    batch.extend((sent..sent + n).map(|i| turn * PER_TURN + i));
                    while !batch.is_empty() {
                        if tx.try_push_batch(&mut batch) == 0 {
                            std::thread::yield_now();
                        }
                    }
                    sent += n;
                }
            })
            .join()
            .unwrap();
        }
        let received = drainer.join().unwrap();
        // Strict FIFO overall: with one producer at a time, global
        // order equals send order.
        let expected: Vec<u64> = (0..TURNS * PER_TURN).collect();
        assert_eq!(received, expected);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn overlap_detector_catches_a_second_spsc_producer() {
        // Simulate the overlap the contract forbids: while one claim
        // is (deterministically) in flight, a second producer's push
        // must panic at claim entry rather than corrupt the slots.
        let (tx, _rx) = ring_with::<u64>(4, Mode::Spsc);
        let guard = tx.hold_spsc_claim();
        let second = tx.clone();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = second.try_push(1);
        }))
        .is_err();
        assert!(panicked, "overlapping SPSC claim went undetected");
        drop(guard);
        // With the first claim retired, pushing works again.
        tx.try_push(2).unwrap();
    }
}
