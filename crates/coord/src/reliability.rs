//! Coordination under message loss.
//!
//! The paper's `W(x)` prices a loss-free round. Real control planes
//! retransmit: with per-message loss probability `p` and
//! acknowledgement-triggered retransmission, each message costs
//! `1/(1−p)` transmissions in expectation, and the round's convergence
//! bound stretches by the expected number of retransmission rounds for
//! the *slowest* message (a maximum over geometric random variables).
//! This module quantifies both — analytically and by seeded Monte
//! Carlo — so the loss-free `W(x)` can be read as a lower bound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::CoordError;

/// Retransmission attempts allowed per message before the simulated
/// round is declared failed. Without a cap the geometric sampling loop
/// is effectively unbounded as `p → 1⁻` (the expected maximum over a
/// round's messages grows like `log_{1/p}(m)`, which diverges), so the
/// Monte-Carlo side fails loudly instead of spinning.
pub const MAX_ATTEMPTS_PER_MESSAGE: u64 = 1_000;

/// Cost inflation of one provisioning round under message loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossReport {
    /// Per-message loss probability.
    pub loss_probability: f64,
    /// Expected transmissions per message, `1/(1−p)`.
    pub expected_transmissions: f64,
    /// Analytic estimate of the expected number of attempts needed by
    /// the slowest of `messages` parallel messages (the round's
    /// convergence multiplier): the classic extreme-value asymptotic
    /// `E[max of m geometrics] ≈ log_{1/p}(m) + γ/ln(1/p) + 1/2`.
    pub expected_rounds: f64,
    /// Monte-Carlo measurement of the same maximum (seeded).
    pub simulated_rounds: f64,
    /// Total transmissions measured across the simulated round.
    pub simulated_transmissions: u64,
}

/// Quantifies retransmission inflation for a round of `messages`
/// parallel messages under i.i.d. loss probability `p`, using `trials`
/// Monte-Carlo repetitions with the given seed.
///
/// # Errors
///
/// Returns [`CoordError::Protocol`] for `p ∉ [0, 1)`, zero messages,
/// zero trials, or when any simulated message exceeds
/// [`MAX_ATTEMPTS_PER_MESSAGE`] transmission attempts (loss rates
/// close to 1 make a bounded-retry round unwinnable; callers should
/// treat this as "abort the round", not retry harder).
pub fn loss_inflation(
    messages: u64,
    p: f64,
    trials: u32,
    seed: u64,
) -> Result<LossReport, CoordError> {
    if !(0.0..1.0).contains(&p) {
        return Err(CoordError::Protocol {
            reason: format!("loss probability {p} outside [0, 1)"),
        });
    }
    if messages == 0 || trials == 0 {
        return Err(CoordError::Protocol {
            reason: "need at least one message and one trial".into(),
        });
    }
    let expected_transmissions = 1.0 / (1.0 - p);
    let expected_rounds = if p == 0.0 {
        1.0
    } else {
        // Extreme-value asymptotic for the max of m iid geometrics.
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        let ln_inv_p = (1.0 / p).ln();
        ((messages as f64).ln() + EULER_GAMMA) / ln_inv_p + 0.5
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut total_rounds = 0u64;
    let mut total_tx = 0u64;
    for _ in 0..trials {
        let mut worst = 0u64;
        for _ in 0..messages {
            // Attempts until first success, bounded so p → 1⁻ cannot
            // spin the loop unboundedly.
            let mut attempts = 1u64;
            while rng.gen::<f64>() < p {
                attempts += 1;
                if attempts > MAX_ATTEMPTS_PER_MESSAGE {
                    return Err(CoordError::Protocol {
                        reason: format!(
                            "a message exceeded {MAX_ATTEMPTS_PER_MESSAGE} transmission \
                             attempts at p = {p}; the round cannot converge within the \
                             retry budget"
                        ),
                    });
                }
            }
            total_tx += attempts;
            worst = worst.max(attempts);
        }
        total_rounds += worst;
    }
    Ok(LossReport {
        loss_probability: p,
        expected_transmissions,
        expected_rounds,
        simulated_rounds: total_rounds as f64 / f64::from(trials),
        simulated_transmissions: total_tx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_round_is_free() {
        let r = loss_inflation(100, 0.0, 10, 1).unwrap();
        assert_eq!(r.expected_transmissions, 1.0);
        assert_eq!(r.expected_rounds, 1.0);
        assert_eq!(r.simulated_rounds, 1.0);
        assert_eq!(r.simulated_transmissions, 1_000);
    }

    #[test]
    fn analytic_and_simulated_agree() {
        let r = loss_inflation(200, 0.1, 400, 7).unwrap();
        // Per-message inflation: 1/(1-0.1) = 1.111...
        let measured_per_msg = r.simulated_transmissions as f64 / (200.0 * 400.0);
        assert!(
            (measured_per_msg - r.expected_transmissions).abs() < 0.02,
            "per-message {measured_per_msg} vs {}",
            r.expected_transmissions
        );
        // Convergence multiplier: analytic approx within 15% of MC.
        assert!(
            (r.expected_rounds - r.simulated_rounds).abs() / r.simulated_rounds < 0.15,
            "rounds {} vs {}",
            r.expected_rounds,
            r.simulated_rounds
        );
    }

    #[test]
    fn more_loss_means_more_rounds() {
        let low = loss_inflation(100, 0.05, 100, 3).unwrap();
        let high = loss_inflation(100, 0.3, 100, 3).unwrap();
        assert!(high.expected_rounds > low.expected_rounds);
        assert!(high.simulated_rounds > low.simulated_rounds);
        assert!(high.expected_transmissions > low.expected_transmissions);
    }

    #[test]
    fn more_messages_stretch_the_tail() {
        // The slowest of many messages takes longer than of few.
        let few = loss_inflation(10, 0.2, 200, 4).unwrap();
        let many = loss_inflation(10_000, 0.2, 200, 4).unwrap();
        assert!(many.simulated_rounds > few.simulated_rounds);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(loss_inflation(10, 1.0, 10, 1).is_err());
        assert!(loss_inflation(10, -0.1, 10, 1).is_err());
        assert!(loss_inflation(0, 0.1, 10, 1).is_err());
        assert!(loss_inflation(10, 0.1, 0, 1).is_err());
    }

    #[test]
    fn near_certain_loss_hits_the_attempt_cap() {
        // Regression: before the cap, p = 0.999 made the geometric
        // loop effectively unbounded. Each message now has probability
        // 0.999^1000 ≈ 0.37 of exceeding the cap, so a round of 100
        // messages fails (deterministically under the fixed seed)
        // with a typed protocol error instead of spinning.
        let r = loss_inflation(100, 0.999, 10, 1);
        assert!(
            matches!(r, Err(CoordError::Protocol { .. })),
            "expected a protocol error at p = 0.999, got {r:?}"
        );
        // Moderate loss rates stay well under the cap.
        assert!(loss_inflation(100, 0.3, 100, 1).is_ok());
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let a = loss_inflation(50, 0.15, 50, 9).unwrap();
        let b = loss_inflation(50, 0.15, 50, 9).unwrap();
        assert_eq!(a, b);
    }
}
