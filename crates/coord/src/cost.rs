//! Cost accounting: tallies protocol traffic and checks it against the
//! model's `W(x) = w·n·x + ŵ`.

use crate::Message;

/// Tally of the traffic and time one provisioning round consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostAccounting {
    /// Total messages exchanged.
    pub messages: u64,
    /// Placement entries among them (the `n·x` term of Eq. 3).
    pub placement_entries: u64,
    /// Total bytes on the wire.
    pub bytes: u64,
    /// Wall-clock convergence time in ms: the protocol phases are
    /// parallel across routers, so each phase costs the *maximum*
    /// router RTT — the paper's rationale for `w = max_{i,j} d_ij`.
    pub convergence_ms: f64,
}

impl CostAccounting {
    /// Records one message.
    pub fn record(&mut self, message: &Message) {
        self.messages += 1;
        self.bytes += message.size_bytes();
        if matches!(message, Message::PlacementEntry { .. }) {
            self.placement_entries += 1;
        }
    }

    /// The communication cost in the model's units: placement entries
    /// weighted by the unit coordination cost `w`, plus the fixed
    /// cost `ŵ` — directly comparable with
    /// `ccn_model::CacheModel::coordination_cost`.
    #[must_use]
    pub fn model_cost(&self, unit_cost: f64, fixed_cost: f64) -> f64 {
        unit_cost * self.placement_entries as f64 + fixed_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_messages_and_bytes() {
        let mut acc = CostAccounting::default();
        acc.record(&Message::StatsReport { router: 0, samples: 2 });
        acc.record(&Message::PlacementEntry { router: 0, rank: 5 });
        acc.record(&Message::PlacementEntry { router: 1, rank: 6 });
        acc.record(&Message::Ack { router: 0 });
        assert_eq!(acc.messages, 4);
        assert_eq!(acc.placement_entries, 2);
        assert!(acc.bytes > 0);
    }

    #[test]
    fn model_cost_is_linear_in_entries() {
        let mut acc = CostAccounting::default();
        for rank in 0..10 {
            acc.record(&Message::PlacementEntry { router: 0, rank });
        }
        assert!((acc.model_cost(0.5, 3.0) - (0.5 * 10.0 + 3.0)).abs() < 1e-12);
    }
}
