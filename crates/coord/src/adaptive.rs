//! Online self-adaptive coordination (the paper's §VII future work).
//!
//! The static analysis assumes the Zipf exponent `s` is known. In a
//! running network it drifts; the adaptive coordinator closes the
//! loop:
//!
//! 1. observe a window of client requests (ranks);
//! 2. re-estimate `s` by maximum likelihood (`ccn-zipf::fit`);
//! 3. re-solve the optimal coordination level under the new estimate;
//! 4. re-provision **only** when the optimum moved by more than a
//!    hysteresis threshold — every re-provisioning costs a full
//!    `W(x)` round, so flapping is worse than slight staleness.

use ccn_model::ModelParams;
use ccn_zipf::fit_mle;

use crate::{
    rebalance_slices, CoordError, Coordinator, CoordinatorConfig, LayoutDelta, ProvisioningRound,
    RouterAssignment,
};

/// Configuration of the adaptive loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Minimum observed requests before an estimate is trusted.
    pub min_samples: usize,
    /// Re-provision only when `|ℓ_new − ℓ_current|` exceeds this.
    pub hysteresis: f64,
    /// Underlying round coordinator configuration.
    pub coordinator: CoordinatorConfig,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self { min_samples: 1_000, hysteresis: 0.05, coordinator: CoordinatorConfig::default() }
    }
}

/// What one adaptation step decided.
#[derive(Debug, Clone, PartialEq)]
pub enum Adaptation {
    /// Not enough observations yet; nothing changed.
    InsufficientData {
        /// Observations seen so far.
        observed: usize,
    },
    /// The optimum moved less than the hysteresis; nothing changed.
    WithinHysteresis {
        /// Freshly estimated exponent.
        estimated_s: f64,
        /// The optimum under the new estimate.
        candidate_ell: f64,
    },
    /// Re-provisioned: a full coordination round was executed. The
    /// round's assignments are rebalanced against the previous layout
    /// so routers keep slices they already hold where possible.
    Reprovisioned {
        /// Freshly estimated exponent.
        estimated_s: f64,
        /// The executed round (assignments already rebalanced).
        round: ProvisioningRound,
        /// Slots routers must actually fetch for this transition —
        /// never more than a from-scratch recompute would move.
        moved_slots: u64,
    },
}

/// The adaptive coordinator: owns the current provisioning state and a
/// sliding observation window.
#[derive(Debug)]
pub struct AdaptiveCoordinator {
    config: AdaptiveConfig,
    params: ModelParams,
    coordinator: Coordinator,
    window: Vec<u64>,
    current_ell: f64,
    assignments: Vec<RouterAssignment>,
    rounds_executed: u64,
}

impl AdaptiveCoordinator {
    /// Creates the loop around initial parameters; the initial
    /// coordination level is solved immediately (without counting as a
    /// re-provisioning round).
    ///
    /// # Errors
    ///
    /// Propagates model errors from the initial solve.
    pub fn new(params: ModelParams, config: AdaptiveConfig) -> Result<Self, CoordError> {
        let coordinator = Coordinator::new(config.coordinator);
        let initial = coordinator.provision(params)?;
        Ok(Self {
            config,
            params,
            coordinator,
            window: Vec::new(),
            current_ell: initial.strategy.ell_star,
            assignments: initial.assignments,
            rounds_executed: 0,
        })
    }

    /// The currently enacted coordination level.
    #[must_use]
    pub fn current_ell(&self) -> f64 {
        self.current_ell
    }

    /// Number of re-provisioning rounds executed by [`Self::adapt`].
    #[must_use]
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// The currently enacted slice layout (rebalanced across rounds).
    #[must_use]
    pub fn assignments(&self) -> &[RouterAssignment] {
        &self.assignments
    }

    /// Feeds observed request ranks into the sliding window.
    pub fn observe(&mut self, ranks: impl IntoIterator<Item = u64>) {
        self.window.extend(ranks);
    }

    /// Runs one adaptation step over the current window; on success
    /// the window is cleared.
    ///
    /// # Errors
    ///
    /// Propagates estimation failures ([`CoordError::Fit`]) and model
    /// failures from re-solving.
    pub fn adapt(&mut self) -> Result<Adaptation, CoordError> {
        if self.window.len() < self.config.min_samples {
            return Ok(Adaptation::InsufficientData { observed: self.window.len() });
        }
        let fit = fit_mle(&self.window, self.params.catalogue() as u64)?;
        self.window.clear();
        let candidate_params = self.params.with_zipf_exponent(fit.exponent)?;
        let model = ccn_model::CacheModel::new(candidate_params)?;
        let candidate = model.optimal_exact()?;
        if (candidate.ell_star - self.current_ell).abs() <= self.config.hysteresis {
            return Ok(Adaptation::WithinHysteresis {
                estimated_s: fit.exponent,
                candidate_ell: candidate.ell_star,
            });
        }
        let mut round = self.coordinator.provision(candidate_params)?;
        // Re-slice against the layout routers already hold instead of
        // recomputing from scratch: the geometry (prefix, x) comes
        // from the fresh solve, but slice-to-router matching reuses
        // the previous assignment so warm slices move only when they
        // must.
        if let Some(first) = round.assignments.first() {
            let prefix = first.local_prefix;
            let start = round.assignments.iter().map(|a| a.slice.start).min().unwrap_or(prefix + 1);
            let x = first.slice_len();
            round.assignments =
                rebalance_slices(prefix, start, x, round.assignments.len(), &self.assignments);
        }
        let moved_slots = LayoutDelta::between(&self.assignments, &round.assignments).moved_slots();
        self.assignments = round.assignments.clone();
        self.params = candidate_params;
        self.current_ell = round.strategy.ell_star;
        self.rounds_executed += 1;
        Ok(Adaptation::Reprovisioned { estimated_s: fit.exponent, round, moved_slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccn_zipf::ZipfSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(s: f64) -> ModelParams {
        ModelParams::builder()
            .zipf_exponent(s)
            .catalogue(10_000.0)
            .capacity(100.0)
            .alpha(0.9)
            .build()
            .unwrap()
    }

    fn draw(s: f64, count: usize, seed: u64) -> Vec<u64> {
        let sampler = ZipfSampler::new(s, 10_000).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        sampler.sample_many(&mut rng, count)
    }

    #[test]
    fn needs_enough_samples() {
        let mut a = AdaptiveCoordinator::new(params(0.8), AdaptiveConfig::default()).unwrap();
        a.observe(draw(0.8, 10, 1));
        assert!(matches!(a.adapt().unwrap(), Adaptation::InsufficientData { observed: 10 }));
        assert_eq!(a.rounds_executed(), 0);
    }

    #[test]
    fn stable_popularity_stays_within_hysteresis() {
        let mut a = AdaptiveCoordinator::new(params(0.8), AdaptiveConfig::default()).unwrap();
        a.observe(draw(0.8, 20_000, 2));
        match a.adapt().unwrap() {
            Adaptation::WithinHysteresis { estimated_s, .. } => {
                assert!((estimated_s - 0.8).abs() < 0.05, "estimated {estimated_s}");
            }
            other => panic!("expected hysteresis hold, got {other:?}"),
        }
        assert_eq!(a.rounds_executed(), 0);
    }

    #[test]
    fn popularity_shift_triggers_reprovisioning() {
        let mut a = AdaptiveCoordinator::new(params(0.4), AdaptiveConfig::default()).unwrap();
        let before = a.current_ell();
        // The workload turns much more concentrated.
        a.observe(draw(1.6, 30_000, 3));
        match a.adapt().unwrap() {
            Adaptation::Reprovisioned { estimated_s, round, moved_slots } => {
                assert!((estimated_s - 1.6).abs() < 0.1, "estimated {estimated_s}");
                assert!(round.cost.messages > 0);
                assert!(moved_slots > 0, "a real shift moves slices");
            }
            other => panic!("expected reprovisioning, got {other:?}"),
        }
        assert_eq!(a.rounds_executed(), 1);
        assert!((a.current_ell() - before).abs() > 0.05, "level actually moved");
    }

    #[test]
    fn reprovisioning_reuses_the_previous_layout_as_baseline() {
        let mut a = AdaptiveCoordinator::new(params(0.4), AdaptiveConfig::default()).unwrap();
        let before = a.assignments().to_vec();
        a.observe(draw(1.6, 30_000, 5));
        let moved = match a.adapt().unwrap() {
            Adaptation::Reprovisioned { moved_slots, .. } => moved_slots,
            other => panic!("expected reprovisioning, got {other:?}"),
        };
        // The enacted delta must not exceed what a from-scratch
        // recompute of the same geometry would have moved.
        let after = a.assignments();
        let first = &after[0];
        let start = after.iter().map(|x| x.slice.start).min().unwrap();
        let naive =
            crate::contiguous_slices(first.local_prefix, start, first.slice_len(), after.len());
        let naive_moved = crate::LayoutDelta::between(&before, &naive).moved_slots();
        assert!(moved <= naive_moved, "rebalanced {moved} > naive {naive_moved}");
        // The coordinator's tracked layout matches what it reported.
        assert_eq!(crate::LayoutDelta::between(&before, after).moved_slots(), moved);
    }

    #[test]
    fn window_clears_after_adaptation() {
        let mut a = AdaptiveCoordinator::new(params(0.8), AdaptiveConfig::default()).unwrap();
        a.observe(draw(0.8, 5_000, 4));
        let _ = a.adapt().unwrap();
        // Window cleared: next adapt sees no data.
        assert!(matches!(a.adapt().unwrap(), Adaptation::InsufficientData { observed: 0 }));
    }
}
