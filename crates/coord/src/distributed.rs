//! Distributed realizations of the conceptually centralized
//! coordinator.
//!
//! §III-A notes the coordinator "is conceptually centralized; in
//! practice, it can be implemented in a fully distributed manner".
//! This module makes that concrete by costing one provisioning round
//! (collect statistics → disseminate directives and `x` placement
//! entries per router → acknowledge) under three realizations over a
//! real topology:
//!
//! - [`Dissemination::Centralized`]: unicast between a coordinator
//!   router and every other router along shortest paths;
//! - [`Dissemination::SpanningTree`]: reports and acks are
//!   *aggregated* along a BFS tree (one message per tree edge per
//!   phase), per-router payloads still travel their tree path;
//! - [`Dissemination::Flooding`]: every payload is flooded once over
//!   every link — maximal redundancy, no coordinator, convergence
//!   bounded by the network eccentricity.
//!
//! Costs are measured in *link crossings* (each hop of each message),
//! which is what actually loads the network, unlike the abstract
//! end-to-end count of [`crate::Coordinator`].

use ccn_topology::shortest_path::{all_pairs, AllPairs};
use ccn_topology::{Graph, NodeId};

use crate::CoordError;

/// How the coordination round is realized on the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dissemination {
    /// A single coordinator router unicasts to/from everyone.
    Centralized {
        /// The coordinator's node id.
        coordinator: NodeId,
    },
    /// Aggregation and dissemination along a BFS spanning tree.
    SpanningTree {
        /// The tree root's node id.
        root: NodeId,
    },
    /// Flood every payload over every link.
    Flooding,
}

/// Link-level cost of one provisioning round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DisseminationCost {
    /// Total link crossings over the whole round.
    pub link_crossings: u64,
    /// Link crossings carrying placement entries only (the `w·n·x`
    /// term's physical realization).
    pub entry_crossings: u64,
    /// Wall-clock convergence bound in ms (latency of the slowest
    /// path, summed over the round's three phases).
    pub convergence_ms: f64,
}

/// Rejects partitioned topologies: every cost formula below assumes
/// all-pairs reachability, and an unreachable pair would otherwise
/// poison the figures with `u32::MAX` hops / infinite latency (or,
/// worse, silently undercount a flood that can never reach everyone).
fn check_connected(graph: &Graph, routes: &AllPairs) -> Result<(), CoordError> {
    let unreachable: Vec<NodeId> =
        (1..graph.node_count()).filter(|&v| routes.hops(0, v) == u32::MAX).collect();
    if unreachable.is_empty() {
        Ok(())
    } else {
        Err(CoordError::Partition { unreachable })
    }
}

fn check_node(graph: &Graph, node: NodeId) -> Result<(), CoordError> {
    if node >= graph.node_count() {
        return Err(CoordError::Protocol {
            reason: format!("node {node} outside topology of {} routers", graph.node_count()),
        });
    }
    Ok(())
}

/// Costs one provisioning round that pushes `entries_per_router`
/// placement entries to each router (plus one report, one directive
/// and one ack per router) under the chosen realization.
///
/// # Errors
///
/// Returns [`CoordError::Protocol`] for an unknown coordinator/root
/// node or a topology with fewer than two routers, and
/// [`CoordError::Partition`] when the topology is disconnected (no
/// realization can span a partition, and the cost figures would be
/// bogus).
pub fn dissemination_cost(
    graph: &Graph,
    strategy: Dissemination,
    entries_per_router: u64,
) -> Result<DisseminationCost, CoordError> {
    let n = graph.node_count();
    if n < 2 {
        return Err(CoordError::Protocol {
            reason: format!("coordination needs at least 2 routers, got {n}"),
        });
    }
    let routes = all_pairs(graph);
    check_connected(graph, &routes)?;
    match strategy {
        Dissemination::Centralized { coordinator } => {
            check_node(graph, coordinator)?;
            let mut crossings = 0u64;
            let mut entry_crossings = 0u64;
            let mut max_lat: f64 = 0.0;
            for v in 0..n {
                if v == coordinator {
                    continue;
                }
                let hops = u64::from(routes.routed_hops(coordinator, v));
                // Report up, directive + entries down, ack up.
                crossings += hops * (1 + 1 + entries_per_router + 1);
                entry_crossings += hops * entries_per_router;
                max_lat = max_lat.max(routes.latency_ms(coordinator, v));
            }
            Ok(DisseminationCost {
                link_crossings: crossings,
                entry_crossings,
                convergence_ms: 3.0 * max_lat,
            })
        }
        Dissemination::SpanningTree { root } => {
            check_node(graph, root)?;
            // BFS tree: depth(v) in hops; tree edges = n - 1.
            let mut crossings = 0u64;
            let mut entry_crossings = 0u64;
            let mut max_lat: f64 = 0.0;
            // Reports aggregate upward: one message per tree edge.
            crossings += (n as u64) - 1;
            // Directives + entries travel the root→v tree path (BFS
            // tree paths have hop length = hop distance from root).
            for v in 0..n {
                if v == root {
                    continue;
                }
                let hops = u64::from(routes.hops(root, v));
                crossings += hops * (1 + entries_per_router);
                entry_crossings += hops * entries_per_router;
                max_lat = max_lat.max(routes.latency_ms(root, v));
            }
            // Acks aggregate upward again.
            crossings += (n as u64) - 1;
            Ok(DisseminationCost {
                link_crossings: crossings,
                entry_crossings,
                convergence_ms: 3.0 * max_lat,
            })
        }
        Dissemination::Flooding => {
            let links = graph.undirected_edge_count() as u64;
            // Every router floods one report; every router's directive
            // and entries are flooded; acks are flooded. Each flood
            // crosses every link once.
            let payloads = (n as u64) * (1 + 1 + entries_per_router + 1);
            let entry_payloads = (n as u64) * entries_per_router;
            // Convergence: a flood reaches everyone within the largest
            // pairwise latency; three phases.
            Ok(DisseminationCost {
                link_crossings: payloads * links,
                entry_crossings: entry_payloads * links,
                convergence_ms: 3.0 * routes.max_latency_ms(),
            })
        }
    }
}

/// Picks the coordinator placement minimizing the centralized round's
/// convergence bound (the latency 1-center of the topology).
///
/// # Errors
///
/// Returns [`CoordError::Protocol`] for a topology with fewer than two
/// routers and [`CoordError::Partition`] when it is disconnected (a
/// 1-center over infinite eccentricities is meaningless).
pub fn best_coordinator(graph: &Graph) -> Result<NodeId, CoordError> {
    let n = graph.node_count();
    if n < 2 {
        return Err(CoordError::Protocol {
            reason: format!("coordination needs at least 2 routers, got {n}"),
        });
    }
    let routes = all_pairs(graph);
    check_connected(graph, &routes)?;
    let ecc = |v: NodeId| {
        (0..n).filter(|&u| u != v).map(|u| routes.latency_ms(v, u)).fold(0.0f64, f64::max)
    };
    Ok((0..n).min_by(|&a, &b| ecc(a).total_cmp(&ecc(b))).expect("non-empty topology"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccn_topology::{datasets, generators};

    #[test]
    fn star_topology_costs_are_exact() {
        // Star with hub 0 and 4 leaves, unit latency. Centralized at
        // the hub: every leaf is 1 hop; 4 messages per leaf (report,
        // directive, x entries, ack) with x = 2 -> 5 crossings each.
        let g = generators::star(5, 1.0).unwrap();
        let c = dissemination_cost(&g, Dissemination::Centralized { coordinator: 0 }, 2).unwrap();
        assert_eq!(c.link_crossings, 4 * (1 + 1 + 2 + 1));
        assert_eq!(c.entry_crossings, 4 * 2);
        assert!((c.convergence_ms - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tree_aggregation_beats_centralized_on_reports() {
        // On a line, reports to an end-coordinator cost sum of depths;
        // the tree aggregates them to n-1 crossings.
        let g = generators::line(6, 1.0).unwrap();
        let central =
            dissemination_cost(&g, Dissemination::Centralized { coordinator: 0 }, 0).unwrap();
        let tree = dissemination_cost(&g, Dissemination::SpanningTree { root: 0 }, 0).unwrap();
        assert!(
            tree.link_crossings < central.link_crossings,
            "tree {} vs central {}",
            tree.link_crossings,
            central.link_crossings
        );
    }

    #[test]
    fn flooding_pays_in_messages_not_latency() {
        let g = datasets::abilene();
        let x = 10;
        let best = best_coordinator(&g).unwrap();
        let central =
            dissemination_cost(&g, Dissemination::Centralized { coordinator: best }, x).unwrap();
        let flood = dissemination_cost(&g, Dissemination::Flooding, x).unwrap();
        assert!(flood.link_crossings > central.link_crossings);
        // Flooding converges within the max pairwise latency, never
        // faster than the best centralized placement's bound.
        assert!(flood.convergence_ms >= central.convergence_ms - 1e-9);
    }

    #[test]
    fn best_coordinator_is_latency_center() {
        // On a line the center node minimizes eccentricity.
        let g = generators::line(7, 1.0).unwrap();
        assert_eq!(best_coordinator(&g).unwrap(), 3);
    }

    #[test]
    fn entry_crossings_scale_linearly_with_x() {
        let g = datasets::us_a();
        let at = |x| {
            dissemination_cost(&g, Dissemination::Centralized { coordinator: 0 }, x)
                .unwrap()
                .entry_crossings
        };
        assert_eq!(at(20), 2 * at(10));
        assert_eq!(at(0), 0);
    }

    #[test]
    fn disconnected_topology_is_a_typed_partition_error() {
        // Triangle {0,1,2} plus an isolated pair {3,4}: every
        // realization and the 1-center must refuse with a Partition
        // error naming the cut-off routers, not return bogus costs.
        let mut g = Graph::new("split");
        for i in 0..5 {
            g.add_node(&format!("r{i}"), 0.0, 0.0);
        }
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 0, 1.0).unwrap();
        g.add_edge(3, 4, 1.0).unwrap();
        for strategy in [
            Dissemination::Centralized { coordinator: 0 },
            Dissemination::SpanningTree { root: 0 },
            Dissemination::Flooding,
        ] {
            let r = dissemination_cost(&g, strategy, 2);
            assert!(
                matches!(r, Err(CoordError::Partition { .. })),
                "{strategy:?} must reject a partition, got {r:?}"
            );
        }
        match best_coordinator(&g) {
            Err(CoordError::Partition { unreachable }) => assert_eq!(unreachable, vec![3, 4]),
            other => panic!("expected partition error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::ring(4, 1.0).unwrap();
        assert!(dissemination_cost(&g, Dissemination::Centralized { coordinator: 9 }, 1).is_err());
        assert!(dissemination_cost(&g, Dissemination::SpanningTree { root: 9 }, 1).is_err());
        let mut solo = Graph::new("solo");
        solo.add_node("only", 0.0, 0.0);
        assert!(dissemination_cost(&solo, Dissemination::Flooding, 1).is_err());
        assert!(best_coordinator(&solo).is_err());
    }
}
