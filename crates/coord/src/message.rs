//! Protocol messages and their wire-size accounting.

/// A coordination-protocol message. Sizes are deliberately simple,
/// deterministic functions of the payload so that cost accounting is
/// reproducible.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Message {
    /// Router → coordinator: local request statistics.
    StatsReport {
        /// Reporting router.
        router: usize,
        /// Number of (rank, count) samples included.
        samples: usize,
    },
    /// Coordinator → router: provisioning directive (coordination
    /// level and slice boundaries).
    Directive {
        /// Target router.
        router: usize,
    },
    /// Coordinator → router: one placement entry for one coordinated
    /// content — the per-content term of Eq. 3.
    PlacementEntry {
        /// Target router.
        router: usize,
        /// Coordinated content rank.
        rank: u64,
    },
    /// Router → coordinator: acknowledgement.
    Ack {
        /// Acknowledging router.
        router: usize,
    },
}

/// Fixed per-message header size in bytes.
pub const HEADER_BYTES: u64 = 16;

/// Bytes per (rank, count) statistics sample.
pub const SAMPLE_BYTES: u64 = 12;

/// Bytes per placement entry payload.
pub const ENTRY_BYTES: u64 = 8;

impl Message {
    /// Wire size of this message in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        match self {
            Message::StatsReport { samples, .. } => HEADER_BYTES + SAMPLE_BYTES * (*samples as u64),
            Message::Directive { .. } => HEADER_BYTES + 24,
            Message::PlacementEntry { .. } => HEADER_BYTES + ENTRY_BYTES,
            Message::Ack { .. } => HEADER_BYTES,
        }
    }

    /// The router this message is addressed to or from.
    #[must_use]
    pub fn router(&self) -> usize {
        match self {
            Message::StatsReport { router, .. }
            | Message::Directive { router }
            | Message::PlacementEntry { router, .. }
            | Message::Ack { router } => *router,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_positive_and_payload_sensitive() {
        let small = Message::StatsReport { router: 0, samples: 1 };
        let large = Message::StatsReport { router: 0, samples: 100 };
        assert!(large.size_bytes() > small.size_bytes());
        assert_eq!(Message::Ack { router: 1 }.size_bytes(), HEADER_BYTES);
        assert_eq!(
            Message::PlacementEntry { router: 1, rank: 42 }.size_bytes(),
            HEADER_BYTES + ENTRY_BYTES
        );
    }

    #[test]
    fn router_accessor_covers_all_variants() {
        let msgs = [
            Message::StatsReport { router: 3, samples: 0 },
            Message::Directive { router: 3 },
            Message::PlacementEntry { router: 3, rank: 1 },
            Message::Ack { router: 3 },
        ];
        assert!(msgs.iter().all(|m| m.router() == 3));
    }
}
