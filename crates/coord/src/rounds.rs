//! Failure-resilient provisioning rounds.
//!
//! [`Coordinator::provision`] prices a *loss-free* round. This module
//! hardens it into a retrying state machine: each phase of the round
//! (collect → disseminate → acknowledge) is simulated under i.i.d.
//! message loss with a bounded per-message retransmission budget — the
//! phase's timeout expressed in attempts. A phase that exhausts the
//! budget fails the whole attempt; the round then backs off
//! exponentially (with deterministic jitter) and retries, up to the
//! policy's attempt limit.
//!
//! A round that cannot converge **aborts cleanly**: the previously
//! enacted placement (the last known good) stays in force, and slice
//! assignments are never left half-updated — the candidate placement
//! is only swapped in after the acknowledge phase completes.
//!
//! [`failover_coordinator`] re-elects the coordination hub on the
//! surviving subgraph after a coordinator outage, mapping the result
//! back to the original router numbering. Survivor partitions surface
//! as [`CoordError::Partition`] rather than a bogus election.
//!
//! The analytic side of the same story lives in
//! [`crate::reliability`]; each [`RoundReport`] carries the
//! corresponding [`LossReport`] so the measured retry cost can be read
//! against the extreme-value prediction.

use ccn_model::ModelParams;
use ccn_obs::{Registry, Tracer};
use ccn_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributed::best_coordinator;
use crate::reliability::{loss_inflation, LossReport};
use crate::{CoordError, Coordinator, CoordinatorConfig, ProvisioningRound};

/// Seed perturbation separating the analytic annotation's RNG stream
/// from the round simulation's stream.
const ANALYTIC_STREAM: u64 = 0xA11A_0C0D_E5EE_D001;

/// Retry behaviour of a resilient provisioning round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Full round attempts before aborting to the last known good.
    pub max_round_attempts: u32,
    /// Backoff before the second attempt, in ms; doubles per attempt.
    pub base_backoff_ms: f64,
    /// Ceiling on the exponential backoff, in ms.
    pub max_backoff_ms: f64,
    /// Retransmission attempts a phase grants each message before the
    /// phase times out (the per-phase timeout expressed in attempts).
    pub max_attempts_per_message: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_round_attempts: 5,
            base_backoff_ms: 50.0,
            max_backoff_ms: 1_600.0,
            max_attempts_per_message: 25,
        }
    }
}

impl RetryPolicy {
    fn validate(&self) -> Result<(), CoordError> {
        if self.max_round_attempts == 0 || self.max_attempts_per_message == 0 {
            return Err(CoordError::Protocol {
                reason: "retry policy needs at least one round attempt and one message attempt"
                    .into(),
            });
        }
        let bad_base = self.base_backoff_ms.is_nan() || self.base_backoff_ms < 0.0;
        let bad_max =
            !self.max_backoff_ms.is_finite() || self.max_backoff_ms < self.base_backoff_ms;
        if bad_base || bad_max {
            return Err(CoordError::Protocol {
                reason: format!(
                    "retry policy backoffs must satisfy 0 <= base ({}) <= max ({}) < inf",
                    self.base_backoff_ms, self.max_backoff_ms
                ),
            });
        }
        Ok(())
    }
}

/// One phase of the provisioning round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Gather one statistics report per router.
    Collect,
    /// Push directives and placement entries to every router.
    Disseminate,
    /// Collect acknowledgements.
    Acknowledge,
}

impl Phase {
    /// Stable index into per-phase arrays
    /// (`Collect`/`Disseminate`/`Acknowledge` → `0`/`1`/`2`).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Phase::Collect => 0,
            Phase::Disseminate => 1,
            Phase::Acknowledge => 2,
        }
    }

    /// Lower-case phase name used in span and metric keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Collect => "collect",
            Phase::Disseminate => "disseminate",
            Phase::Acknowledge => "acknowledge",
        }
    }

    /// Trace span name for the phase (`coord.collect`, ...).
    #[must_use]
    pub fn span_name(self) -> &'static str {
        match self {
            Phase::Collect => "coord.collect",
            Phase::Disseminate => "coord.disseminate",
            Phase::Acknowledge => "coord.acknowledge",
        }
    }

    /// All phases in round order.
    pub const ALL: [Phase; 3] = [Phase::Collect, Phase::Disseminate, Phase::Acknowledge];
}

/// What happened during one attempt of the round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundAttempt {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The phase whose retransmission budget ran out, or `None` when
    /// the attempt carried the round to convergence.
    pub failed_phase: Option<Phase>,
    /// Transmissions spent during this attempt (including the ones
    /// wasted on the failing message).
    pub transmissions: u64,
    /// Transmissions split by phase (indexed by [`Phase::index`]);
    /// sums to [`RoundAttempt::transmissions`]. Phases after the
    /// failing one show zero — they never ran.
    pub phase_transmissions: [u64; 3],
    /// Jittered backoff slept after this attempt (0 when the attempt
    /// succeeded or was the last one).
    pub backoff_ms: f64,
}

/// Terminal state of a resilient round.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundOutcome {
    /// The round converged; this placement is now enacted.
    Converged(ProvisioningRound),
    /// The retry budget ran out. Nothing was enacted: the placement
    /// that was in force before the round (if any) remains in force.
    Aborted {
        /// The placement still in force, if one was ever enacted.
        last_known_good: Option<ProvisioningRound>,
    },
}

/// Full account of a resilient provisioning round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundReport {
    /// Whether the round converged or aborted.
    pub outcome: RoundOutcome,
    /// Per-attempt log, in order.
    pub attempts: Vec<RoundAttempt>,
    /// Transmissions across all attempts.
    pub total_transmissions: u64,
    /// Backoff time spent between attempts, in ms.
    pub total_backoff_ms: f64,
    /// Analytic retransmission inflation for one attempt of this round
    /// ([`loss_inflation`] over the round's message count), for
    /// reading the measured cost against the prediction. `None` when
    /// the loss rate is too extreme for even the analytic reference to
    /// converge within its own attempt cap.
    pub analytic: Option<LossReport>,
}

impl RoundReport {
    /// Whether the round converged.
    #[must_use]
    pub fn converged(&self) -> bool {
        matches!(self.outcome, RoundOutcome::Converged(_))
    }
}

/// A [`Coordinator`] wrapped in the retrying state machine, holding
/// the last successfully enacted placement.
#[derive(Debug, Clone, Default)]
pub struct ResilientCoordinator {
    inner: Coordinator,
    policy: RetryPolicy,
    last_known_good: Option<ProvisioningRound>,
    tracer: Tracer,
    registry: Registry,
}

/// Runs one phase of `messages` messages under loss `p`, each message
/// allowed at most `cap` transmissions. Returns the transmissions
/// spent and whether every message got through.
fn run_phase(rng: &mut StdRng, messages: u64, p: f64, cap: u32) -> (u64, bool) {
    let mut tx = 0u64;
    for _ in 0..messages {
        let mut attempts = 1u64;
        while rng.gen::<f64>() < p {
            attempts += 1;
            if attempts > u64::from(cap) {
                return (tx + attempts, false);
            }
        }
        tx += attempts;
    }
    (tx, true)
}

impl ResilientCoordinator {
    /// Creates a resilient coordinator with no enacted placement.
    #[must_use]
    pub fn new(config: CoordinatorConfig, policy: RetryPolicy) -> Self {
        Self {
            inner: Coordinator::new(config),
            policy,
            last_known_good: None,
            tracer: Tracer::off(),
            registry: Registry::new(),
        }
    }

    /// Attaches an observability tracer; rounds then record
    /// `coord.solve` and per-phase (`coord.collect`, ...) spans.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The coordinator's metrics registry: per-phase transmission
    /// counters (`coord.<phase>.transmissions`) and round outcome
    /// counters (`coord.rounds.converged` / `coord.rounds.aborted`),
    /// accumulated across every round this coordinator ran.
    #[must_use]
    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// The placement currently in force, if any round ever converged.
    #[must_use]
    pub fn last_known_good(&self) -> Option<&ProvisioningRound> {
        self.last_known_good.as_ref()
    }

    /// Runs one provisioning round under per-message loss probability
    /// `loss_probability`, retrying per the policy. On convergence the
    /// new placement replaces the last known good **atomically**; on
    /// abort the stored placement is untouched.
    ///
    /// The simulation is deterministic for a given `seed`.
    ///
    /// # Errors
    ///
    /// Solver and precondition failures ([`CoordError::Model`] /
    /// [`CoordError::Protocol`]) are hard errors — retrying cannot fix
    /// them. Message loss never surfaces as an `Err`: it is the normal
    /// regime and resolves to [`RoundOutcome::Aborted`] at worst.
    pub fn provision(
        &mut self,
        params: ModelParams,
        loss_probability: f64,
        seed: u64,
    ) -> Result<RoundReport, CoordError> {
        if !(0.0..1.0).contains(&loss_probability) {
            return Err(CoordError::Protocol {
                reason: format!("loss probability {loss_probability} outside [0, 1)"),
            });
        }
        self.policy.validate()?;
        // Solve once; only the network phases are retried.
        let solve_span = self.tracer.span("coord.solve");
        let candidate = self.inner.provision(params)?;
        drop(solve_span);
        let n = params.routers().round() as u64;
        let x = candidate.strategy.x_star.round() as u64;
        let phases =
            [(Phase::Collect, n), (Phase::Disseminate, n + n * x), (Phase::Acknowledge, n)];
        let round_messages: u64 = phases.iter().map(|&(_, m)| m).sum();
        let analytic =
            loss_inflation(round_messages, loss_probability, 32, seed ^ ANALYTIC_STREAM).ok();

        let mut rng = StdRng::seed_from_u64(seed);
        let mut attempts = Vec::new();
        let mut total_transmissions = 0u64;
        let mut total_backoff_ms = 0.0f64;
        for attempt in 1..=self.policy.max_round_attempts {
            let mut failed_phase = None;
            let mut attempt_tx = 0u64;
            let mut phase_tx = [0u64; 3];
            for &(phase, messages) in &phases {
                let span = self.tracer.span(phase.span_name());
                let (tx, delivered) = run_phase(
                    &mut rng,
                    messages,
                    loss_probability,
                    self.policy.max_attempts_per_message,
                );
                drop(span);
                attempt_tx += tx;
                phase_tx[phase.index()] = tx;
                self.registry.counter(&format!("coord.{}.transmissions", phase.name())).add(tx);
                if !delivered {
                    failed_phase = Some(phase);
                    break;
                }
            }
            total_transmissions += attempt_tx;
            let backoff_ms = if failed_phase.is_some() && attempt < self.policy.max_round_attempts {
                let exp = self.policy.base_backoff_ms * 2f64.powi(attempt as i32 - 1);
                let capped = exp.min(self.policy.max_backoff_ms);
                // Equal jitter: half deterministic, half uniform.
                let jittered = capped / 2.0 + rng.gen::<f64>() * (capped / 2.0);
                total_backoff_ms += jittered;
                jittered
            } else {
                0.0
            };
            attempts.push(RoundAttempt {
                attempt,
                failed_phase,
                transmissions: attempt_tx,
                phase_transmissions: phase_tx,
                backoff_ms,
            });
            if failed_phase.is_none() {
                // Atomic swap: the candidate becomes the enacted
                // placement only here, after every ack arrived.
                self.last_known_good = Some(candidate.clone());
                self.registry.counter("coord.rounds.converged").inc();
                return Ok(RoundReport {
                    outcome: RoundOutcome::Converged(candidate),
                    attempts,
                    total_transmissions,
                    total_backoff_ms,
                    analytic,
                });
            }
        }
        self.registry.counter("coord.rounds.aborted").inc();
        Ok(RoundReport {
            outcome: RoundOutcome::Aborted { last_known_good: self.last_known_good.clone() },
            attempts,
            total_transmissions,
            total_backoff_ms,
            analytic,
        })
    }
}

/// Re-elects the coordination hub after failures: computes the latency
/// 1-center of the subgraph induced by the surviving routers
/// (`alive[i]` marks router `i` as up) and returns it in the
/// **original** router numbering.
///
/// # Errors
///
/// Returns [`CoordError::Protocol`] when the mask length does not
/// match the topology or fewer than two routers survive, and
/// [`CoordError::Partition`] when the survivors are disconnected (the
/// ids reported are subgraph-relative survivors' positions mapped from
/// the election; a split control plane must be handled by the caller,
/// e.g. by coordinating each side independently).
pub fn failover_coordinator(graph: &Graph, alive: &[bool]) -> Result<NodeId, CoordError> {
    let (surviving, back) = graph
        .induced_subgraph(alive, &[])
        .map_err(|e| CoordError::Protocol { reason: format!("failover mask rejected: {e}") })?;
    let hub = best_coordinator(&surviving)?;
    Ok(back[hub])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::builder().alpha(0.8).build().unwrap()
    }

    fn coordinator(policy: RetryPolicy) -> ResilientCoordinator {
        ResilientCoordinator::new(CoordinatorConfig::default(), policy)
    }

    #[test]
    fn lossless_round_converges_on_the_first_attempt() {
        let mut rc = coordinator(RetryPolicy::default());
        let report = rc.provision(params(), 0.0, 1).unwrap();
        assert!(report.converged());
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.attempts[0].failed_phase, None);
        assert_eq!(report.attempts[0].backoff_ms, 0.0);
        // Lossless: exactly one transmission per message.
        let lkg = rc.last_known_good().expect("converged round is enacted");
        let n = 20;
        let x = lkg.strategy.x_star.round() as u64;
        assert_eq!(report.total_transmissions, n + (n + n * x) + n);
    }

    #[test]
    fn reports_are_deterministic_under_a_fixed_seed() {
        let mut a = coordinator(RetryPolicy::default());
        let mut b = coordinator(RetryPolicy::default());
        let ra = a.provision(params(), 0.2, 42).unwrap();
        let rb = b.provision(params(), 0.2, 42).unwrap();
        assert_eq!(ra, rb);
        let rc = a.provision(params(), 0.2, 43).unwrap();
        assert!(rc.total_transmissions != ra.total_transmissions || rc.attempts != ra.attempts);
    }

    #[test]
    fn hopeless_loss_aborts_cleanly_to_last_known_good() {
        let tight = RetryPolicy {
            max_round_attempts: 3,
            base_backoff_ms: 10.0,
            max_backoff_ms: 40.0,
            max_attempts_per_message: 2,
        };
        let mut rc = coordinator(tight);
        // No placement was ever enacted: abort with nothing in force.
        let r1 = rc.provision(params(), 0.9, 7).unwrap();
        assert!(
            matches!(r1.outcome, RoundOutcome::Aborted { last_known_good: None }),
            "got {:?}",
            r1.outcome
        );
        assert_eq!(r1.attempts.len(), 3, "abort only after the full retry budget");
        assert!(r1.attempts.iter().all(|a| a.failed_phase.is_some()));
        assert!(rc.last_known_good().is_none());

        // Enact a placement over a healthy network...
        let ok = rc.provision(params(), 0.0, 7).unwrap();
        assert!(ok.converged());
        let enacted = rc.last_known_good().cloned().expect("enacted");

        // ...then fail again: the enacted placement stays in force,
        // untouched — never half-updated.
        let r2 = rc.provision(params(), 0.9, 8).unwrap();
        match &r2.outcome {
            RoundOutcome::Aborted { last_known_good: Some(kept) } => assert_eq!(*kept, enacted),
            other => panic!("expected abort keeping the placement, got {other:?}"),
        }
        assert_eq!(rc.last_known_good(), Some(&enacted));
    }

    #[test]
    fn backoff_doubles_with_jitter_and_respects_the_ceiling() {
        let policy = RetryPolicy {
            max_round_attempts: 4,
            base_backoff_ms: 100.0,
            max_backoff_ms: 250.0,
            max_attempts_per_message: 1,
        };
        let mut rc = coordinator(policy);
        let report = rc.provision(params(), 0.9, 3).unwrap();
        assert!(!report.converged());
        let backoffs: Vec<f64> = report.attempts.iter().map(|a| a.backoff_ms).collect();
        assert_eq!(backoffs.len(), 4);
        assert_eq!(*backoffs.last().unwrap(), 0.0, "no backoff after the final attempt");
        for (i, &b) in backoffs[..3].iter().enumerate() {
            // Exponential schedule 100, 200, 400 capped at 250, with
            // equal jitter in [cap/2, cap].
            let cap = (100.0 * 2f64.powi(i as i32)).min(250.0);
            assert!(
                b >= cap / 2.0 && b <= cap,
                "attempt {i}: backoff {b} outside [{}, {cap}]",
                cap / 2.0
            );
        }
        assert!((report.total_backoff_ms - backoffs[..3].iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn analytic_annotation_tracks_the_measured_cost() {
        let mut rc = coordinator(RetryPolicy::default());
        let report = rc.provision(params(), 0.1, 11).unwrap();
        assert!(report.converged());
        let analytic = report.analytic.expect("moderate loss has an analytic reference");
        // Expected inflation at p = 0.1 is 1/(1−p) ≈ 1.11 per message;
        // the round is one sample, so accept a loose band around it.
        let x = rc.last_known_good().unwrap().strategy.x_star.round() as u64;
        let messages = 20 + (20 + 20 * x) + 20;
        let per_msg =
            report.total_transmissions as f64 / (report.attempts.len() as u64 * messages) as f64;
        assert!((1.0..1.4).contains(&per_msg), "per-message inflation {per_msg}");
        assert!((analytic.expected_transmissions - 1.0 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn phase_breakdown_metrics_and_spans_track_the_round() {
        let (tracer, sink) = Tracer::collecting();
        let mut rc = coordinator(RetryPolicy::default()).with_tracer(tracer);
        let report = rc.provision(params(), 0.0, 1).unwrap();
        assert!(report.converged());
        let attempt = &report.attempts[0];
        // The per-phase split sums to the attempt total and matches
        // the lossless message counts (n, n + n·x, n).
        assert_eq!(attempt.phase_transmissions.iter().sum::<u64>(), attempt.transmissions);
        let x = rc.last_known_good().unwrap().strategy.x_star.round() as u64;
        assert_eq!(attempt.phase_transmissions, [20, 20 + 20 * x, 20]);
        // The registry accumulated the same numbers.
        for (phase, expected) in Phase::ALL.iter().zip(attempt.phase_transmissions) {
            match rc.metrics().get(&format!("coord.{}.transmissions", phase.name())) {
                Some(ccn_obs::Metric::Counter(c)) => assert_eq!(c.get(), expected),
                other => panic!("missing phase counter: {other:?}"),
            }
        }
        match rc.metrics().get("coord.rounds.converged") {
            Some(ccn_obs::Metric::Counter(c)) => assert_eq!(c.get(), 1),
            other => panic!("missing outcome counter: {other:?}"),
        }
        // Phase-level spans were recorded — unless tracing is compiled
        // off (`is_enabled` is then false), in which case the sink
        // must stay empty.
        if rc.tracer.is_enabled() {
            assert_eq!(sink.count("coord.solve"), 1);
            for phase in Phase::ALL {
                assert_eq!(sink.count(phase.span_name()), 1);
            }
        } else {
            assert!(sink.snapshot().is_empty());
        }
    }

    #[test]
    fn rejects_invalid_policies_and_loss() {
        let mut rc = coordinator(RetryPolicy { max_round_attempts: 0, ..RetryPolicy::default() });
        assert!(rc.provision(params(), 0.1, 1).is_err());
        let mut rc = coordinator(RetryPolicy { max_backoff_ms: 1.0, ..RetryPolicy::default() });
        assert!(rc.provision(params(), 0.1, 1).is_err());
        let mut rc = coordinator(RetryPolicy::default());
        assert!(rc.provision(params(), 1.0, 1).is_err());
        assert!(rc.provision(params(), -0.5, 1).is_err());
    }

    #[test]
    fn failover_reelects_on_the_surviving_subgraph() {
        let g = ccn_topology::generators::line(5, 1.0).unwrap();
        // The healthy 1-center of a 5-line is the middle router.
        assert_eq!(best_coordinator(&g).unwrap(), 2);
        // Killing an endpoint shifts the center of the surviving line
        // 1–2–3–4 to router 2 (ties break toward the lower id).
        let mut alive = vec![true; 5];
        alive[0] = false;
        assert_eq!(failover_coordinator(&g, &alive).unwrap(), 2);
        // Killing the center partitions the survivors: typed error.
        let mut alive = vec![true; 5];
        alive[2] = false;
        assert!(matches!(failover_coordinator(&g, &alive), Err(CoordError::Partition { .. })));
        // A mask of the wrong length is a protocol error.
        assert!(matches!(
            failover_coordinator(&g, &[true, true]),
            Err(CoordError::Protocol { .. })
        ));
        // Fewer than two survivors cannot elect.
        assert!(failover_coordinator(&g, &[false, false, false, false, true]).is_err());
    }
}
