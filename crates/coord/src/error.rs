use std::error::Error;
use std::fmt;

use ccn_model::ModelError;
use ccn_zipf::ZipfError;

/// Errors produced by the coordination layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoordError {
    /// The underlying optimization model failed.
    Model(ModelError),
    /// Online exponent estimation failed.
    Fit(ZipfError),
    /// A protocol precondition was violated.
    Protocol {
        /// Explanation of the violated precondition.
        reason: String,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Model(e) => write!(f, "model error: {e}"),
            CoordError::Fit(e) => write!(f, "estimation error: {e}"),
            CoordError::Protocol { reason } => write!(f, "protocol error: {reason}"),
        }
    }
}

impl Error for CoordError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoordError::Model(e) => Some(e),
            CoordError::Fit(e) => Some(e),
            CoordError::Protocol { .. } => None,
        }
    }
}

impl From<ModelError> for CoordError {
    fn from(e: ModelError) -> Self {
        CoordError::Model(e)
    }
}

impl From<ZipfError> for CoordError {
    fn from(e: ZipfError) -> Self {
        CoordError::Fit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoordError::Protocol { reason: "no routers".into() };
        assert!(e.to_string().contains("no routers"));
        assert!(Error::source(&e).is_none());
        let e = CoordError::from(ZipfError::DegenerateSample { reason: "empty" });
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoordError>();
    }
}
