use std::error::Error;
use std::fmt;

use ccn_model::ModelError;
use ccn_zipf::ZipfError;

/// Errors produced by the coordination layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoordError {
    /// The underlying optimization model failed.
    Model(ModelError),
    /// Online exponent estimation failed.
    Fit(ZipfError),
    /// A protocol precondition was violated.
    Protocol {
        /// Explanation of the violated precondition.
        reason: String,
    },
    /// The topology is partitioned: some routers cannot be reached, so
    /// no coordination round can span them. Costing such a round would
    /// silently produce bogus (infinite-latency, `u32::MAX`-hop)
    /// figures.
    Partition {
        /// Routers cut off from router 0's component, ascending.
        unreachable: Vec<usize>,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Model(e) => write!(f, "model error: {e}"),
            CoordError::Fit(e) => write!(f, "estimation error: {e}"),
            CoordError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            CoordError::Partition { unreachable } => {
                write!(
                    f,
                    "partitioned topology: {} router(s) unreachable: {unreachable:?}",
                    unreachable.len()
                )
            }
        }
    }
}

impl Error for CoordError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoordError::Model(e) => Some(e),
            CoordError::Fit(e) => Some(e),
            CoordError::Protocol { .. } | CoordError::Partition { .. } => None,
        }
    }
}

impl From<ModelError> for CoordError {
    fn from(e: ModelError) -> Self {
        CoordError::Model(e)
    }
}

impl From<ZipfError> for CoordError {
    fn from(e: ZipfError) -> Self {
        CoordError::Fit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoordError::Protocol { reason: "no routers".into() };
        assert!(e.to_string().contains("no routers"));
        assert!(Error::source(&e).is_none());
        let e = CoordError::from(ZipfError::DegenerateSample { reason: "empty" });
        assert!(Error::source(&e).is_some());
        let e = CoordError::Partition { unreachable: vec![3, 4] };
        assert!(e.to_string().contains("2 router(s)"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoordError>();
    }
}
