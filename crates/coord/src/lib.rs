//! Coordination protocol for provisioned in-network caching.
//!
//! The paper models the coordination cost as `W(x) = w·n·x + ŵ`
//! (Eq. 3): a communication term linear in the number of coordinated
//! contents per router and a fixed computation/enforcement term. This
//! crate *realizes* that cost model as an executable protocol:
//!
//! 1. **Collect** — the (conceptually centralized) coordinator gathers
//!    one statistics report from each of the `n` routers;
//! 2. **Solve** — it fits the popularity exponent, solves the
//!    `ccn-model` optimum `ℓ*`, and partitions the coordinated rank
//!    range into per-router slices;
//! 3. **Disseminate** — it pushes each router its assignment: one
//!    directive plus one placement entry per coordinated content
//!    (the `w·n·x` term), then collects acknowledgements.
//!
//! [`CostAccounting`] tallies actual messages/bytes so tests can
//! verify the realized cost matches Eq. 3, and the convergence time is
//! bounded by the maximum router RTT — the paper's rationale for
//! estimating `w = max_{i,j} d_ij`.
//!
//! [`reliability`] prices the round under message loss
//! (retransmission inflation of both traffic and convergence time);
//! [`rounds`] hardens the round into a retrying state machine with
//! bounded backoff, abort-to-last-known-good semantics, and
//! coordinator failover on the surviving subgraph;
//! [`distributed`] costs the round under concrete realizations
//! (centralized unicast, spanning-tree aggregation, flooding) in
//! link crossings over a real topology, and [`adaptive`] closes the loop (the paper's "online self-adaptive
//! algorithms" future work): it re-estimates the Zipf exponent from
//! observed requests and re-provisions when the optimum drifts.
//!
//! # Example
//!
//! ```
//! use ccn_coord::{Coordinator, CoordinatorConfig};
//! use ccn_model::ModelParams;
//!
//! # fn main() -> Result<(), ccn_coord::CoordError> {
//! let params = ModelParams::builder().alpha(0.9).build()?;
//! let coordinator = Coordinator::new(CoordinatorConfig::default());
//! let round = coordinator.provision(params)?;
//! assert_eq!(round.assignments.len(), 20);          // one per router
//! assert!(round.cost.messages >= 2 * 20);            // collect + disseminate
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adaptive;
pub mod distributed;
pub mod reliability;
pub mod rounds;

mod assignment;
mod coordinator;
mod cost;
mod delta;
mod error;
mod message;

pub use assignment::{centrality_ordered_slices, contiguous_slices, slice_order, RouterAssignment};
pub use coordinator::{Coordinator, CoordinatorConfig, ProvisioningRound};
pub use cost::CostAccounting;
pub use delta::{rebalance_slices, LayoutDelta, RouterMove};
pub use error::CoordError;
pub use message::Message;
pub use rounds::{
    failover_coordinator, Phase, ResilientCoordinator, RetryPolicy, RoundAttempt, RoundOutcome,
    RoundReport,
};
