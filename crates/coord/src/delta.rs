//! Layout deltas between provisioning rounds.
//!
//! A re-provisioning round emits a fresh slice layout; what the
//! network actually pays for is not the layout itself but the *delta*
//! against what routers already hold — every coordinated slot a router
//! gains must be fetched and warmed. [`LayoutDelta`] measures that
//! cost, and [`rebalance_slices`] produces a new layout that keeps the
//! measured movement no larger than a from-scratch recompute by
//! permuting which router takes which slice to maximize overlap with
//! the previous round.

use std::collections::HashMap;
use std::ops::Range;

use crate::assignment::RouterAssignment;

/// Slots a single router gains in a layout transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterMove {
    /// The router in question.
    pub router: usize,
    /// Coordinated slots in the new slice that the old slice did not
    /// cover (each must be fetched).
    pub gained_slice: u64,
    /// Growth of the shared local prefix visible at this router.
    pub gained_prefix: u64,
}

impl RouterMove {
    /// Total slots this router must fetch for the transition.
    #[must_use]
    pub fn gained(&self) -> u64 {
        self.gained_slice + self.gained_prefix
    }
}

/// The movement cost of replacing one slice layout with another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutDelta {
    /// Per-router movement, for every router present in the new
    /// layout (routers that vanish cost nothing — eviction is free).
    pub moves: Vec<RouterMove>,
}

fn overlap(a: &Range<u64>, b: &Range<u64>) -> u64 {
    let lo = a.start.max(b.start);
    let hi = a.end.min(b.end);
    hi.saturating_sub(lo)
}

impl LayoutDelta {
    /// Measures the transition `old → new`. Routers are matched by id;
    /// a router appearing only in `new` pays for its whole assignment.
    #[must_use]
    pub fn between(old: &[RouterAssignment], new: &[RouterAssignment]) -> Self {
        let previous: HashMap<usize, &RouterAssignment> =
            old.iter().map(|a| (a.router, a)).collect();
        let moves = new
            .iter()
            .map(|a| match previous.get(&a.router) {
                Some(prev) => RouterMove {
                    router: a.router,
                    gained_slice: a.slice_len() - overlap(&a.slice, &prev.slice),
                    gained_prefix: a.local_prefix.saturating_sub(prev.local_prefix),
                },
                None => RouterMove {
                    router: a.router,
                    gained_slice: a.slice_len(),
                    gained_prefix: a.local_prefix,
                },
            })
            .collect();
        Self { moves }
    }

    /// Total slots fetched across all routers.
    #[must_use]
    pub fn moved_slots(&self) -> u64 {
        self.moves.iter().map(RouterMove::gained).sum()
    }
}

/// Splits the coordinated range `[start, start + n·x)` into `n`
/// contiguous slices like [`crate::contiguous_slices`], but chooses
/// which router takes which slice so the movement against `old` is
/// minimized: a greedy maximum-overlap matching is compared with the
/// plain rank-order assignment and whichever moves fewer slots wins.
/// With an empty `old` this degenerates to `contiguous_slices`.
#[must_use]
pub fn rebalance_slices(
    prefix: u64,
    start: u64,
    x: u64,
    routers: usize,
    old: &[RouterAssignment],
) -> Vec<RouterAssignment> {
    let identity = crate::contiguous_slices(prefix, start, x, routers);
    if old.is_empty() || x == 0 {
        return identity;
    }
    let previous: HashMap<usize, &RouterAssignment> = old.iter().map(|a| (a.router, a)).collect();

    // Greedy maximum-overlap matching between the n fresh slices and
    // the n routers: consider (slice, router) pairs in decreasing
    // overlap with the router's previous slice, claim greedily.
    let slices: Vec<Range<u64>> =
        (0..routers as u64).map(|i| (start + i * x)..(start + (i + 1) * x)).collect();
    let mut pairs: Vec<(u64, usize, usize)> = Vec::with_capacity(routers * routers);
    for (si, slice) in slices.iter().enumerate() {
        for router in 0..routers {
            let shared = previous.get(&router).map_or(0, |prev| overlap(slice, &prev.slice));
            pairs.push((shared, si, router));
        }
    }
    pairs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut slice_taken = vec![false; routers];
    let mut router_taken = vec![false; routers];
    let mut choice: Vec<usize> = vec![0; routers]; // slice index -> router
    let mut assigned = 0;
    for (_, si, router) in pairs {
        if slice_taken[si] || router_taken[router] {
            continue;
        }
        slice_taken[si] = true;
        router_taken[router] = true;
        choice[si] = router;
        assigned += 1;
        if assigned == routers {
            break;
        }
    }
    let greedy: Vec<RouterAssignment> = slices
        .into_iter()
        .enumerate()
        .map(|(si, slice)| RouterAssignment { router: choice[si], local_prefix: prefix, slice })
        .collect();

    let greedy_cost = LayoutDelta::between(old, &greedy).moved_slots();
    let identity_cost = LayoutDelta::between(old, &identity).moved_slots();
    if greedy_cost <= identity_cost {
        greedy
    } else {
        identity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contiguous_slices;
    use proptest::prelude::*;

    #[test]
    fn identical_layouts_move_nothing() {
        let layout = contiguous_slices(100, 101, 50, 4);
        let delta = LayoutDelta::between(&layout, &layout);
        assert_eq!(delta.moved_slots(), 0);
    }

    #[test]
    fn disjoint_layouts_pay_the_full_new_demand() {
        let old = contiguous_slices(0, 1, 10, 2); // slices at 1..21
        let new = contiguous_slices(0, 100, 10, 2); // slices at 100..120
        assert_eq!(LayoutDelta::between(&old, &new).moved_slots(), 20);
    }

    #[test]
    fn prefix_growth_is_charged_shrink_is_free() {
        let old = contiguous_slices(50, 51, 10, 3);
        let grown = contiguous_slices(60, 51, 10, 3);
        // Every router fetches the 10 new prefix slots; slices overlap
        // fully.
        assert_eq!(LayoutDelta::between(&old, &grown).moved_slots(), 30);
        assert_eq!(LayoutDelta::between(&grown, &old).moved_slots(), 0);
    }

    #[test]
    fn rebalance_recovers_a_permuted_baseline() {
        // The old layout assigns slices in reverse router order (e.g.
        // from a centrality ordering). A naive recompute would hand
        // router 0 the first slice and move everything; rebalancing
        // keeps the permutation and moves nothing.
        let mut old = contiguous_slices(10, 11, 20, 4);
        old.reverse();
        for (i, a) in old.iter_mut().enumerate() {
            a.router = i;
        }
        let rebalanced = rebalance_slices(10, 11, 20, 4, &old);
        assert_eq!(LayoutDelta::between(&old, &rebalanced).moved_slots(), 0);
        let naive = contiguous_slices(10, 11, 20, 4);
        assert!(LayoutDelta::between(&old, &naive).moved_slots() > 0);
    }

    #[test]
    fn rebalance_without_history_is_the_plain_tiling() {
        assert_eq!(rebalance_slices(5, 6, 7, 3, &[]), contiguous_slices(5, 6, 7, 3));
    }

    #[test]
    fn rebalanced_layout_is_still_a_disjoint_cover() {
        let old = contiguous_slices(90, 91, 30, 5);
        let new = rebalance_slices(80, 81, 40, 5, &old);
        let mut covered: Vec<u64> = new.iter().flat_map(|a| a.slice.clone()).collect();
        covered.sort_unstable();
        assert_eq!(covered, (81..81 + 200).collect::<Vec<_>>());
        let mut routers: Vec<usize> = new.iter().map(|a| a.router).collect();
        routers.sort_unstable();
        assert_eq!(routers, (0..5).collect::<Vec<_>>());
    }

    proptest! {
        /// The satellite contract: rebalancing against the previous
        /// layout never moves more slots than the from-scratch
        /// recompute (`contiguous_slices`), across arbitrary old
        /// geometries including permuted router orders.
        #[test]
        fn rebalance_never_beats_worse_than_recompute(
            old_prefix in 0u64..200,
            old_x in 0u64..100,
            new_prefix in 0u64..200,
            new_x in 0u64..100,
            routers in 1usize..8,
            rotate in 0usize..8,
        ) {
            let mut old = contiguous_slices(old_prefix, old_prefix + 1, old_x, routers);
            // Permute router ids to simulate a previously rebalanced
            // or centrality-ordered layout.
            for (i, a) in old.iter_mut().enumerate() {
                a.router = (i + rotate) % routers;
            }
            let rebalanced =
                rebalance_slices(new_prefix, new_prefix + 1, new_x, routers, &old);
            let recompute = contiguous_slices(new_prefix, new_prefix + 1, new_x, routers);
            let moved = LayoutDelta::between(&old, &rebalanced).moved_slots();
            let naive = LayoutDelta::between(&old, &recompute).moved_slots();
            prop_assert!(
                moved <= naive,
                "rebalance moved {moved} > recompute {naive}"
            );
            // And it is still a valid one-slice-per-router cover.
            let mut ids: Vec<usize> = rebalanced.iter().map(|a| a.router).collect();
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..routers).collect::<Vec<_>>());
        }
    }
}
