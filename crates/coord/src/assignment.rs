//! Per-router slice assignments of the coordinated rank range.

use ccn_topology::{metrics, Graph};

use std::ops::Range;

/// One router's share of the coordinated content range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterAssignment {
    /// The router this slice belongs to.
    pub router: usize,
    /// Local (non-coordinated) popularity prefix: ranks `1..=prefix`.
    pub local_prefix: u64,
    /// Half-open coordinated rank range this router must hold.
    pub slice: Range<u64>,
}

impl RouterAssignment {
    /// Number of coordinated contents assigned.
    #[must_use]
    pub fn slice_len(&self) -> u64 {
        self.slice.end - self.slice.start
    }

    /// Total storage demand of this assignment in contents.
    #[must_use]
    pub fn storage_demand(&self) -> u64 {
        self.local_prefix + self.slice_len()
    }
}

/// Splits the coordinated range `[start, start + n·x)` into `n`
/// contiguous slices of `x` contents each, one per router, with every
/// router also pinning the shared local prefix `1..=prefix`.
#[must_use]
pub fn contiguous_slices(prefix: u64, start: u64, x: u64, routers: usize) -> Vec<RouterAssignment> {
    (0..routers)
        .map(|i| RouterAssignment {
            router: i,
            local_prefix: prefix,
            slice: (start + i as u64 * x)..(start + (i as u64 + 1) * x),
        })
        .collect()
}

/// Like [`contiguous_slices`], but slice order follows closeness
/// centrality: the *hottest* coordinated slice (lowest ranks, highest
/// request mass) goes to the *most central* router, minimizing the
/// popularity-weighted peer distance. Returns assignments in the
/// centrality order — feed the same order to
/// `ccn_sim::Placement::range` to deploy it.
///
/// Falls back to node order for degenerate graphs (no latency
/// information).
#[must_use]
pub fn centrality_ordered_slices(
    graph: &Graph,
    prefix: u64,
    start: u64,
    x: u64,
) -> Vec<RouterAssignment> {
    let centrality = metrics::closeness_centrality(graph);
    let mut order: Vec<usize> = (0..graph.node_count()).collect();
    order.sort_by(|&a, &b| centrality[b].total_cmp(&centrality[a]).then(a.cmp(&b)));
    order
        .into_iter()
        .enumerate()
        .map(|(i, router)| RouterAssignment {
            router,
            local_prefix: prefix,
            slice: (start + i as u64 * x)..(start + (i as u64 + 1) * x),
        })
        .collect()
}

/// The router order implied by a slice assignment (slice-start order),
/// for constructing a matching `Placement`.
#[must_use]
pub fn slice_order(assignments: &[RouterAssignment]) -> Vec<usize> {
    let mut sorted: Vec<&RouterAssignment> = assignments.iter().collect();
    sorted.sort_by_key(|a| a.slice.start);
    sorted.iter().map(|a| a.router).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_are_disjoint_and_cover_the_range() {
        let assignments = contiguous_slices(900, 901, 100, 20);
        assert_eq!(assignments.len(), 20);
        let mut covered = Vec::new();
        for a in &assignments {
            assert_eq!(a.slice_len(), 100);
            assert_eq!(a.storage_demand(), 1000);
            covered.extend(a.slice.clone());
        }
        covered.sort_unstable();
        let expected: Vec<u64> = (901..901 + 2000).collect();
        assert_eq!(covered, expected, "disjoint cover of the coordinated range");
    }

    #[test]
    fn centrality_order_puts_hot_slices_at_the_center() {
        use ccn_topology::generators;
        // On a 7-line the middle router (3) is most central, so it
        // must receive the hottest (first) slice.
        let g = generators::line(7, 1.0).unwrap();
        let assignments = centrality_ordered_slices(&g, 90, 91, 10);
        assert_eq!(assignments.len(), 7);
        let hottest = assignments.iter().min_by_key(|a| a.slice.start).unwrap();
        assert_eq!(hottest.router, 3, "center of the line takes the hot slice");
        // Ends of the line get the coldest slices.
        let coldest = assignments.iter().max_by_key(|a| a.slice.start).unwrap();
        assert!(coldest.router == 0 || coldest.router == 6);
        // Every router appears exactly once.
        let mut routers: Vec<usize> = assignments.iter().map(|a| a.router).collect();
        routers.sort_unstable();
        assert_eq!(routers, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn slice_order_reconstructs_the_deployment_order() {
        use ccn_topology::generators;
        let g = generators::line(5, 1.0).unwrap();
        let assignments = centrality_ordered_slices(&g, 0, 1, 4);
        let order = slice_order(&assignments);
        assert_eq!(order[0], 2, "line center holds the first slice");
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn zero_x_means_empty_slices() {
        let assignments = contiguous_slices(1000, 1001, 0, 5);
        assert!(assignments.iter().all(|a| a.slice_len() == 0));
        assert!(assignments.iter().all(|a| a.storage_demand() == 1000));
    }
}
