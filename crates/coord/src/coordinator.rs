//! The round-based provisioning coordinator.

use ccn_model::{CacheModel, ModelParams, OptimalStrategy};
use ccn_topology::Graph;

use crate::assignment::contiguous_slices;
use crate::distributed::{dissemination_cost, Dissemination, DisseminationCost};
use crate::{CoordError, CostAccounting, Message, RouterAssignment};

/// Coordinator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinatorConfig {
    /// Number of (rank, count) samples each router includes in its
    /// statistics report.
    pub stats_samples: usize,
    /// Maximum router RTT in ms, used for the convergence-time bound
    /// (the paper's `w = max d_ij`; one-way latency is half the RTT).
    pub max_rtt_ms: f64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self { stats_samples: 64, max_rtt_ms: 2.0 * 26.7 }
    }
}

/// The outcome of one provisioning round.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisioningRound {
    /// The optimal strategy the round enacted.
    pub strategy: OptimalStrategy,
    /// Per-router slice assignments.
    pub assignments: Vec<RouterAssignment>,
    /// Traffic and convergence-time accounting.
    pub cost: CostAccounting,
}

/// Splits the per-router capacity `c` into the non-coordinated prefix
/// `c − x` for a solver strategy coordinating `x` contents per router.
///
/// # Errors
///
/// Returns [`CoordError::Protocol`] when `x > c`: a feasible strategy
/// never coordinates more contents per router than a router can store,
/// and silently clamping (the old behaviour) would enact a placement
/// inconsistent with the strategy it claims to realize.
fn coordinated_prefix(c: u64, x: u64) -> Result<u64, CoordError> {
    c.checked_sub(x).ok_or_else(|| CoordError::Protocol {
        reason: format!(
            "strategy coordinates x* = {x} contents per router, exceeding capacity c = {c}"
        ),
    })
}

/// The conceptually centralized coordinator of §III-A. It can be
/// implemented distributedly in practice; this simulation keeps it
/// centralized but accounts for the messages a distributed realization
/// would exchange.
#[derive(Debug, Clone, Default)]
pub struct Coordinator {
    config: CoordinatorConfig,
}

impl Coordinator {
    /// Creates a coordinator.
    #[must_use]
    pub fn new(config: CoordinatorConfig) -> Self {
        Self { config }
    }

    /// Runs one full provisioning round for the given model
    /// parameters: collect → solve → disseminate → acknowledge.
    ///
    /// # Errors
    ///
    /// Propagates model/solver failures as [`CoordError::Model`], and
    /// returns [`CoordError::Protocol`] when the solved strategy is
    /// infeasible (`x* > c`).
    pub fn provision(&self, params: ModelParams) -> Result<ProvisioningRound, CoordError> {
        let n = params.routers().round() as usize;
        if n < 2 {
            return Err(CoordError::Protocol {
                reason: format!("coordination needs at least 2 routers, got {n}"),
            });
        }
        let model = CacheModel::new(params)?;
        let strategy = model.optimal_exact()?;
        let c = params.capacity().round() as u64;
        let x = strategy.x_star.round() as u64;
        let prefix = coordinated_prefix(c, x)?;
        let assignments = contiguous_slices(prefix, prefix + 1, x, n);

        let mut cost = CostAccounting::default();
        // Phase 1: collect statistics (parallel; one report each).
        for router in 0..n {
            cost.record(&Message::StatsReport { router, samples: self.config.stats_samples });
        }
        // Phase 2: disseminate directives and per-content placement
        // entries (the w·n·x communication term of Eq. 3).
        for a in &assignments {
            cost.record(&Message::Directive { router: a.router });
            for rank in a.slice.clone() {
                cost.record(&Message::PlacementEntry { router: a.router, rank });
            }
        }
        // Phase 3: acknowledgements.
        for router in 0..n {
            cost.record(&Message::Ack { router });
        }
        // Each phase completes within the slowest router's one-way
        // latency; collect+disseminate+ack is three traversals.
        cost.convergence_ms = 1.5 * self.config.max_rtt_ms;
        Ok(ProvisioningRound { strategy, assignments, cost })
    }

    /// Like [`Coordinator::provision`], but additionally costs the
    /// round's physical realization on a concrete topology under the
    /// chosen dissemination strategy (link crossings + convergence
    /// bound from actual pairwise latencies).
    ///
    /// The topology's router count must match the model's `n`.
    ///
    /// # Errors
    ///
    /// Returns [`CoordError::Protocol`] on a router-count mismatch and
    /// propagates model/dissemination failures.
    pub fn provision_over(
        &self,
        graph: &Graph,
        params: ModelParams,
        strategy: Dissemination,
    ) -> Result<(ProvisioningRound, DisseminationCost), CoordError> {
        let n_model = params.routers().round() as usize;
        if graph.node_count() != n_model {
            return Err(CoordError::Protocol {
                reason: format!(
                    "topology has {} routers but the model was solved for {n_model}",
                    graph.node_count()
                ),
            });
        }
        let round = self.provision(params)?;
        let entries = round.strategy.x_star.round() as u64;
        let physical = dissemination_cost(graph, strategy, entries)?;
        Ok((round, physical))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccn_model::ModelParams;

    fn params(alpha: f64) -> ModelParams {
        ModelParams::builder().alpha(alpha).build().unwrap()
    }

    #[test]
    fn prefix_split_rejects_infeasible_strategies() {
        assert_eq!(coordinated_prefix(1000, 250).unwrap(), 750);
        assert_eq!(coordinated_prefix(5, 5).unwrap(), 0, "fully coordinated cache is feasible");
        let r = coordinated_prefix(5, 6);
        assert!(
            matches!(r, Err(CoordError::Protocol { .. })),
            "x > c must be a typed error, not a silent clamp; got {r:?}"
        );
    }

    #[test]
    fn round_produces_assignments_for_every_router() {
        let round = Coordinator::default().provision(params(0.9)).unwrap();
        assert_eq!(round.assignments.len(), 20);
        let x = round.strategy.x_star.round() as u64;
        assert!(round.assignments.iter().all(|a| a.slice_len() == x));
        assert!(round.assignments.iter().all(|a| a.storage_demand() <= 1000));
    }

    #[test]
    fn accounted_entries_match_n_times_x() {
        let round = Coordinator::default().provision(params(0.9)).unwrap();
        let x = round.strategy.x_star.round() as u64;
        assert_eq!(round.cost.placement_entries, 20 * x);
        // Collect + directives + acks on top of entries.
        assert_eq!(round.cost.messages, 20 + 20 + 20 * x + 20);
    }

    #[test]
    fn realized_cost_matches_model_w() {
        let p = params(0.9);
        let round = Coordinator::default().provision(p).unwrap();
        let model = CacheModel::new(p).unwrap();
        let x = round.strategy.x_star.round();
        let realized = round.cost.model_cost(p.unit_cost(), p.fixed_cost());
        let predicted = model.coordination_cost(x);
        assert!(
            (realized - predicted).abs() < 1e-9,
            "realized {realized} vs predicted {predicted}"
        );
    }

    #[test]
    fn alpha_zero_round_is_nearly_free() {
        let round = Coordinator::default().provision(params(0.0)).unwrap();
        assert_eq!(round.cost.placement_entries, 0, "no coordination when alpha = 0");
        // Still pays the fixed collect/ack traffic.
        assert_eq!(round.cost.messages, 60);
    }

    #[test]
    fn provision_over_costs_the_physical_round() {
        use crate::distributed::{best_coordinator, Dissemination};
        let graph = ccn_topology::datasets::us_a();
        let params =
            ModelParams::builder().routers(graph.node_count() as u32).alpha(0.9).build().unwrap();
        let hub = best_coordinator(&graph).unwrap();
        let (round, physical) = Coordinator::default()
            .provision_over(&graph, params, Dissemination::Centralized { coordinator: hub })
            .unwrap();
        // Physical link crossings dominate the abstract end-to-end
        // message count (multi-hop paths).
        assert!(physical.link_crossings >= round.cost.messages);
        assert!(physical.convergence_ms > 0.0);
        // Entry crossings carry exactly x* entries per router path.
        assert!(physical.entry_crossings > 0);
    }

    #[test]
    fn provision_over_rejects_mismatched_topology() {
        let graph = ccn_topology::datasets::abilene(); // 11 routers
        let params = ModelParams::builder().routers(20).build().unwrap();
        let r = Coordinator::default().provision_over(
            &graph,
            params,
            crate::distributed::Dissemination::Flooding,
        );
        assert!(matches!(r, Err(CoordError::Protocol { .. })));
    }

    #[test]
    fn convergence_is_gated_by_max_rtt() {
        let slow = Coordinator::new(CoordinatorConfig { stats_samples: 8, max_rtt_ms: 100.0 });
        let fast = Coordinator::new(CoordinatorConfig { stats_samples: 8, max_rtt_ms: 10.0 });
        let a = slow.provision(params(0.8)).unwrap();
        let b = fast.provision(params(0.8)).unwrap();
        assert!(a.cost.convergence_ms > b.cost.convergence_ms);
    }
}
