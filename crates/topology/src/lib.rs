//! Network topology substrate for the CCN coordinated-caching model.
//!
//! The paper evaluates its provisioning model on four real backbone
//! topologies (Table II): Abilene/Internet2, CERNET, GEANT, and an
//! anonymized North-American tier-1 carrier ("US-A"). From each
//! topology it extracts three aggregates (Table III) that parameterize
//! the model:
//!
//! - `n` — the number of routers,
//! - `w` — the unit coordination cost, estimated as the *maximum*
//!   pairwise shortest-path latency (coordination messages are
//!   exchanged in parallel, so the slowest pair gates convergence),
//! - `d1 − d0` — the average routing performance between routers,
//!   measured both in milliseconds (mean pairwise shortest-path
//!   latency) and in hops (mean pairwise hop count, normalized by
//!   `|V|²` as in the paper).
//!
//! This crate provides:
//!
//! - [`Graph`]: an undirected latency-weighted graph with geographic
//!   node metadata;
//! - [`shortest_path`]: Dijkstra (latency) and BFS (hop count)
//!   all-pairs matrices;
//! - [`datasets`]: the four embedded evaluation topologies. Latencies
//!   are derived from great-circle distance at fibre propagation speed
//!   (see [`geo`]); DESIGN.md documents why this substitution preserves
//!   the paper's aggregates;
//! - [`params`]: [`params::TopologyParams`] extraction (Table III);
//! - [`generators`]: synthetic topologies (ring, star, line, grid,
//!   Erdős–Rényi, Barabási–Albert, Waxman) for scaling studies;
//! - [`export`]: Graphviz DOT and ASCII rendering (Figure 3);
//! - [`metrics`]: structural fingerprints (degree stats, clustering,
//!   closeness centrality) for comparing real vs synthetic networks;
//! - [`io`]: plain-text edge-list import/export so users can evaluate
//!   their own topologies.
//!
//! # Example
//!
//! ```
//! use ccn_topology::datasets;
//!
//! let abilene = datasets::abilene();
//! assert_eq!(abilene.node_count(), 11);
//! assert_eq!(abilene.directed_edge_count(), 28); // Table II
//! let params = ccn_topology::params::extract(&abilene);
//! assert!(params.mean_hops > 2.0 && params.mean_hops < 3.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod datasets;
pub mod export;
pub mod generators;
pub mod geo;
pub mod io;
pub mod metrics;
pub mod params;
pub mod shortest_path;

mod error;
mod graph;

pub use error::TopologyError;
pub use graph::{Graph, NodeId};
