//! Geographic helpers: great-circle distances and fibre latencies.
//!
//! The embedded datasets carry router coordinates; link latencies are
//! derived from great-circle distance at the propagation speed of
//! light in fibre (~200 km/ms, i.e. 2/3 of c), inflated by a routing
//! factor because fibre paths are never geodesics, plus a fixed
//! per-link processing overhead. The constants are calibrated so that
//! the extracted Table-III aggregates land in the paper's reported
//! ranges (see `DESIGN.md` §3).

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Propagation speed of light in optical fibre, km per millisecond.
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// Multiplier accounting for fibre routes exceeding geodesic length.
pub const ROUTE_INFLATION: f64 = 1.3;

/// Fixed per-link processing/serialization overhead in milliseconds.
pub const PER_LINK_OVERHEAD_MS: f64 = 0.3;

/// Great-circle distance between two `(lat, lon)` points in degrees,
/// in kilometres (haversine formula).
///
/// # Example
///
/// ```
/// // New York ⇄ Los Angeles is roughly 3940 km.
/// let d = ccn_topology::geo::great_circle_km((40.71, -74.01), (34.05, -118.24));
/// assert!((d - 3940.0).abs() < 50.0);
/// ```
#[must_use]
pub fn great_circle_km(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (lat1, lon1) = (a.0.to_radians(), a.1.to_radians());
    let (lat2, lon2) = (b.0.to_radians(), b.1.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// One-way link latency in milliseconds for a link spanning the two
/// coordinates: inflated propagation delay plus fixed overhead.
#[must_use]
pub fn link_latency_ms(a: (f64, f64), b: (f64, f64)) -> f64 {
    great_circle_km(a, b) * ROUTE_INFLATION / FIBRE_KM_PER_MS + PER_LINK_OVERHEAD_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_for_identical_points() {
        assert_eq!(great_circle_km((10.0, 20.0), (10.0, 20.0)), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = (47.61, -122.33);
        let b = (33.75, -84.39);
        assert!((great_circle_km(a, b) - great_circle_km(b, a)).abs() < 1e-9);
    }

    #[test]
    fn known_city_pairs() {
        // Seattle ⇄ Sunnyvale ~1090 km.
        let d = great_circle_km((47.61, -122.33), (37.37, -122.04));
        assert!((d - 1140.0).abs() < 60.0, "got {d}");
        // London ⇄ Paris ~344 km.
        let d = great_circle_km((51.51, -0.13), (48.86, 2.35));
        assert!((d - 344.0).abs() < 20.0, "got {d}");
    }

    #[test]
    fn latency_monotone_in_distance() {
        let seattle = (47.61, -122.33);
        let near = link_latency_ms(seattle, (45.52, -122.68)); // Portland
        let far = link_latency_ms(seattle, (25.76, -80.19)); // Miami
        assert!(near < far);
        assert!(near > PER_LINK_OVERHEAD_MS);
    }

    #[test]
    fn coast_to_coast_latency_is_realistic() {
        // NY ⇄ LA one-way fibre latency lands in the 20–35 ms window.
        let ms = link_latency_ms((40.71, -74.01), (34.05, -118.24));
        assert!((20.0..35.0).contains(&ms), "got {ms}");
    }
}
