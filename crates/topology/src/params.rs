//! Extraction of the model parameters of the paper's Table III from a
//! topology.
//!
//! The paper estimates:
//!
//! - the **unit coordination cost** `w = max_{i,j∈V} d_ij` — the
//!   maximum pairwise shortest-path latency, because coordination
//!   messages are exchanged in parallel and the slowest pair gates
//!   convergence to the optimal strategy;
//! - the **routing performance** `d1 − d0 = (1/|V|²) Σ_{i,j} h_ij`
//!   (hop metric) or the analogous mean over pairwise latencies `d_ij`
//!   (millisecond metric). Both normalize by `|V|²`, i.e. include the
//!   zero diagonal, exactly as in the paper.

use crate::shortest_path::all_pairs;
use crate::Graph;

/// Aggregate model parameters extracted from a topology (Table III).
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyParams {
    /// Topology display name.
    pub name: String,
    /// Number of routers `n = |V|`.
    pub n: usize,
    /// Unit coordination cost `w` in milliseconds (max pairwise
    /// shortest-path latency).
    pub w_ms: f64,
    /// Mean pairwise shortest-path latency in milliseconds,
    /// `|V|²`-normalized (the paper's `d1 − d0` in ms).
    pub mean_latency_ms: f64,
    /// Mean pairwise hop count, `|V|²`-normalized (the paper's
    /// `d1 − d0` in hops).
    pub mean_hops: f64,
    /// Mean hop count along minimum-latency (IGP-routed) paths,
    /// `|V|²`-normalized; slightly above `mean_hops` whenever latency
    /// routing takes detours.
    pub mean_routed_hops: f64,
    /// Network diameter in hops (not in Table III; useful context).
    pub diameter_hops: u32,
}

/// Extracts [`TopologyParams`] from a connected topology.
///
/// Unreachable pairs (in disconnected graphs) are skipped by the
/// underlying aggregates rather than poisoning the result; callers that
/// require connectivity should check [`Graph::ensure_connected`] first.
#[must_use]
pub fn extract(graph: &Graph) -> TopologyParams {
    let ap = all_pairs(graph);
    TopologyParams {
        name: graph.name().to_owned(),
        n: graph.node_count(),
        w_ms: ap.max_latency_ms(),
        mean_latency_ms: ap.mean_latency_ms(),
        mean_hops: ap.mean_hops(),
        mean_routed_hops: ap.mean_routed_hops(),
        diameter_hops: ap.diameter_hops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn table3_shapes_hold_for_all_datasets() {
        // The paper's Table III reports w ∈ [22, 34] ms, mean latency
        // ∈ [14, 17] ms, and mean hops ∈ [2.2, 2.9]. Our geo-derived
        // latencies must land in generous windows around those values
        // so the figures driven by them keep their shape.
        for graph in datasets::all() {
            let p = extract(&graph);
            assert!(
                (12.0..60.0).contains(&p.w_ms),
                "{}: w = {} ms out of plausible window",
                p.name,
                p.w_ms
            );
            assert!(
                (6.0..30.0).contains(&p.mean_latency_ms),
                "{}: mean latency = {} ms",
                p.name,
                p.mean_latency_ms
            );
            assert!((1.5..4.0).contains(&p.mean_hops), "{}: mean hops = {}", p.name, p.mean_hops);
            assert!(p.w_ms > p.mean_latency_ms, "{}: max must exceed mean", p.name);
        }
    }

    #[test]
    fn router_counts_match_table3() {
        let ns: Vec<usize> = datasets::all().iter().map(|g| extract(g).n).collect();
        assert_eq!(ns, vec![11, 36, 23, 20]);
    }

    #[test]
    fn abilene_mean_hops_close_to_paper() {
        // Paper: 2.4182 for Abilene. Hop counts depend only on the
        // (real) link structure, not on our latency substitution, so
        // this must match tightly.
        let p = extract(&datasets::abilene());
        let best = if (p.mean_routed_hops - 2.4182).abs() < (p.mean_hops - 2.4182).abs() {
            p.mean_routed_hops
        } else {
            p.mean_hops
        };
        assert!(
            (best - 2.4182).abs() < 0.35,
            "Abilene mean hops {} / routed {} vs paper 2.4182",
            p.mean_hops,
            p.mean_routed_hops
        );
    }

    #[test]
    fn single_node_graph_has_zero_aggregates() {
        let mut g = Graph::new("solo");
        g.add_node("only", 0.0, 0.0);
        let p = extract(&g);
        assert_eq!(p.n, 1);
        assert_eq!(p.w_ms, 0.0);
        assert_eq!(p.mean_hops, 0.0);
        assert_eq!(p.mean_routed_hops, 0.0);
        assert_eq!(p.diameter_hops, 0);
    }
}
