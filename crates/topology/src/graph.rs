use crate::TopologyError;

/// Index of a node within a [`Graph`].
pub type NodeId = usize;

/// Metadata attached to each router node.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Node {
    pub name: String,
    /// Latitude in degrees (0 for synthetic topologies without geography).
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

/// An undirected edge with a latency weight in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Edge {
    pub a: NodeId,
    pub b: NodeId,
    pub latency_ms: f64,
}

/// An undirected, latency-weighted router-level topology.
///
/// Nodes carry a name and optional geographic coordinates; edges carry
/// a positive latency in milliseconds. Self loops and parallel edges
/// are rejected, matching the backbone topologies of the paper's
/// evaluation (Table II).
///
/// # Example
///
/// ```
/// use ccn_topology::Graph;
///
/// # fn main() -> Result<(), ccn_topology::TopologyError> {
/// let mut g = Graph::new("toy");
/// let a = g.add_node("R0", 0.0, 0.0);
/// let b = g.add_node("R1", 0.0, 1.0);
/// g.add_edge(a, b, 5.0)?;
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.undirected_edge_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// adjacency[v] = list of (neighbour, latency)
    adjacency: Vec<Vec<(NodeId, f64)>>,
}

impl Graph {
    /// Creates an empty topology with a display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), nodes: Vec::new(), edges: Vec::new(), adjacency: Vec::new() }
    }

    /// The topology's display name (e.g. `"Abilene"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a router node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, lat: f64, lon: f64) -> NodeId {
        self.nodes.push(Node { name: name.into(), lat, lon });
        self.adjacency.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Adds an undirected edge with latency `latency_ms` milliseconds.
    ///
    /// # Errors
    ///
    /// Rejects unknown endpoints, self loops, duplicate edges, and
    /// non-positive or non-finite weights.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, latency_ms: f64) -> Result<(), TopologyError> {
        let n = self.nodes.len();
        for &v in &[a, b] {
            if v >= n {
                return Err(TopologyError::UnknownNode { node: v, node_count: n });
            }
        }
        if a == b {
            return Err(TopologyError::SelfLoop { node: a });
        }
        if !latency_ms.is_finite() || latency_ms <= 0.0 {
            return Err(TopologyError::InvalidWeight { weight: latency_ms });
        }
        if self.adjacency[a].iter().any(|&(v, _)| v == b) {
            return Err(TopologyError::DuplicateEdge { a, b });
        }
        self.edges.push(Edge { a, b, latency_ms });
        self.adjacency[a].push((b, latency_ms));
        self.adjacency[b].push((a, latency_ms));
        Ok(())
    }

    /// Number of routers `|V|`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    #[must_use]
    pub fn undirected_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of directed links `|E|` as reported in the paper's
    /// Table II (each undirected link counted twice).
    #[must_use]
    pub fn directed_edge_count(&self) -> usize {
        self.edges.len() * 2
    }

    /// The display name of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn node_name(&self, v: NodeId) -> &str {
        &self.nodes[v].name
    }

    /// Geographic position `(lat, lon)` of node `v` in degrees.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn node_position(&self, v: NodeId) -> (f64, f64) {
        (self.nodes[v].lat, self.nodes[v].lon)
    }

    /// Neighbours of `v` with link latencies, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, f64)] {
        &self.adjacency[v]
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v].len()
    }

    /// Iterates over undirected edges as `(a, b, latency_ms)` with
    /// `a < b` not guaranteed (insertion order preserved).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.edges.iter().map(|e| (e.a, e.b, e.latency_ms))
    }

    /// Checks that every node is reachable from node 0.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Disconnected`] naming an unreachable
    /// node; an empty graph is trivially connected.
    pub fn ensure_connected(&self) -> Result<(), TopologyError> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &(u, _) in &self.adjacency[v] {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        match seen.iter().position(|&s| !s) {
            None => Ok(()),
            Some(unreachable) => Err(TopologyError::Disconnected { unreachable }),
        }
    }

    /// Total latency of all undirected links, in milliseconds.
    #[must_use]
    pub fn total_link_latency(&self) -> f64 {
        self.edges.iter().map(|e| e.latency_ms).sum()
    }

    /// The subgraph induced by the nodes where `keep_node` is true,
    /// additionally dropping every edge listed in `drop_edges`
    /// (unordered endpoint pairs; unknown or duplicate entries are
    /// ignored). Returns the new graph plus the mapping from new node
    /// ids to ids in `self`, in ascending original-id order.
    ///
    /// This is the substrate for failure analysis: masking crashed
    /// routers and downed links yields the surviving topology on which
    /// routing and coordinator election are recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] when `keep_node` is not
    /// exactly one flag per node.
    pub fn induced_subgraph(
        &self,
        keep_node: &[bool],
        drop_edges: &[(NodeId, NodeId)],
    ) -> Result<(Graph, Vec<NodeId>), TopologyError> {
        if keep_node.len() != self.nodes.len() {
            return Err(TopologyError::UnknownNode {
                node: keep_node.len(),
                node_count: self.nodes.len(),
            });
        }
        let mut sub = Graph::new(format!("{}/induced", self.name));
        let mut new_id = vec![usize::MAX; self.nodes.len()];
        let mut back = Vec::new();
        for (old, node) in self.nodes.iter().enumerate() {
            if keep_node[old] {
                new_id[old] = sub.add_node(node.name.clone(), node.lat, node.lon);
                back.push(old);
            }
        }
        let dropped = |a: NodeId, b: NodeId| {
            drop_edges.iter().any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
        };
        for e in &self.edges {
            if keep_node[e.a] && keep_node[e.b] && !dropped(e.a, e.b) {
                sub.add_edge(new_id[e.a], new_id[e.b], e.latency_ms)
                    .expect("edges valid in the parent graph stay valid");
            }
        }
        Ok((sub, back))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new("tri");
        let a = g.add_node("a", 0.0, 0.0);
        let b = g.add_node("b", 0.0, 1.0);
        let c = g.add_node("c", 1.0, 0.0);
        g.add_edge(a, b, 1.0).unwrap();
        g.add_edge(b, c, 2.0).unwrap();
        g.add_edge(c, a, 3.0).unwrap();
        g
    }

    #[test]
    fn counts_and_metadata() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.undirected_edge_count(), 3);
        assert_eq!(g.directed_edge_count(), 6);
        assert_eq!(g.node_name(1), "b");
        assert_eq!(g.node_position(2), (1.0, 0.0));
        assert_eq!(g.degree(0), 2);
        assert!((g.total_link_latency() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = triangle();
        for (a, b, w) in g.edges() {
            assert!(g.neighbors(a).iter().any(|&(v, lw)| v == b && lw == w));
            assert!(g.neighbors(b).iter().any(|&(v, lw)| v == a && lw == w));
        }
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = triangle();
        assert!(matches!(g.add_edge(0, 0, 1.0), Err(TopologyError::SelfLoop { .. })));
        assert!(matches!(g.add_edge(0, 9, 1.0), Err(TopologyError::UnknownNode { .. })));
        assert!(matches!(g.add_edge(0, 1, 1.0), Err(TopologyError::DuplicateEdge { .. })));
        assert!(matches!(g.add_edge(1, 0, 1.0), Err(TopologyError::DuplicateEdge { .. })));
        let d = g.add_node("d", 0.0, 0.0);
        assert!(matches!(g.add_edge(0, d, 0.0), Err(TopologyError::InvalidWeight { .. })));
        assert!(matches!(g.add_edge(0, d, -2.0), Err(TopologyError::InvalidWeight { .. })));
        assert!(matches!(g.add_edge(0, d, f64::NAN), Err(TopologyError::InvalidWeight { .. })));
    }

    #[test]
    fn connectivity_check() {
        let mut g = triangle();
        assert!(g.ensure_connected().is_ok());
        let lonely = g.add_node("lonely", 0.0, 0.0);
        let err = g.ensure_connected().unwrap_err();
        assert_eq!(err, TopologyError::Disconnected { unreachable: lonely });
        assert!(Graph::new("empty").ensure_connected().is_ok());
    }

    #[test]
    fn induced_subgraph_masks_nodes_and_edges() {
        let g = triangle();
        // Drop node 1: nodes {0, 2} survive, only edge (0, 2) remains.
        let (sub, back) = g.induced_subgraph(&[true, false, true], &[]).unwrap();
        assert_eq!(sub.node_count(), 2);
        assert_eq!(back, vec![0, 2]);
        assert_eq!(sub.undirected_edge_count(), 1);
        assert_eq!(sub.node_name(0), g.node_name(0));
        assert_eq!(sub.node_name(1), g.node_name(2));
        // Drop a link instead (either endpoint order).
        let (sub, back) = g.induced_subgraph(&[true; 3], &[(1, 0)]).unwrap();
        assert_eq!(back, vec![0, 1, 2]);
        assert_eq!(sub.undirected_edge_count(), 2);
        assert!(!sub.neighbors(0).iter().any(|&(v, _)| v == 1));
        // Masking everything yields an empty (trivially connected) graph.
        let (sub, back) = g.induced_subgraph(&[false; 3], &[]).unwrap();
        assert_eq!(sub.node_count(), 0);
        assert!(back.is_empty());
        // Wrong mask length is a typed error.
        assert!(matches!(
            g.induced_subgraph(&[true, true], &[]),
            Err(TopologyError::UnknownNode { node: 2, node_count: 3 })
        ));
    }
}
