use std::error::Error;
use std::fmt;

/// Errors produced when constructing or querying topologies.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A node index was out of range for this graph.
    UnknownNode {
        /// The rejected node index.
        node: usize,
        /// Current number of nodes.
        node_count: usize,
    },
    /// An edge referenced the same node at both ends.
    SelfLoop {
        /// The offending node index.
        node: usize,
    },
    /// An edge between the two nodes already exists.
    DuplicateEdge {
        /// First endpoint.
        a: usize,
        /// Second endpoint.
        b: usize,
    },
    /// An edge weight was zero, negative, or non-finite.
    InvalidWeight {
        /// The rejected weight.
        weight: f64,
    },
    /// The operation requires a connected graph but the graph is not.
    Disconnected {
        /// A node unreachable from node 0.
        unreachable: usize,
    },
    /// A generator was asked for an impossible configuration.
    InvalidGeneratorConfig {
        /// Explanation of the rejected configuration.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode { node, node_count } => {
                write!(f, "unknown node {node} (graph has {node_count} nodes)")
            }
            TopologyError::SelfLoop { node } => {
                write!(f, "self loop at node {node} is not allowed")
            }
            TopologyError::DuplicateEdge { a, b } => {
                write!(f, "edge between {a} and {b} already exists")
            }
            TopologyError::InvalidWeight { weight } => {
                write!(f, "invalid edge weight {weight}: must be finite and positive")
            }
            TopologyError::Disconnected { unreachable } => {
                write!(f, "graph is disconnected: node {unreachable} unreachable from node 0")
            }
            TopologyError::InvalidGeneratorConfig { reason } => {
                write!(f, "invalid generator configuration: {reason}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_operands() {
        let e = TopologyError::UnknownNode { node: 7, node_count: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }
}
