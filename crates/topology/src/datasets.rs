//! The four evaluation topologies of the paper (Table II).
//!
//! | Topology | \|V\| | \|E\| (directed) | Region        | Type        |
//! |----------|------|------------------|---------------|-------------|
//! | Abilene  | 11   | 28               | North America | Educational |
//! | CERNET   | 36   | 112              | East Asia     | Educational |
//! | GEANT    | 23   | 74               | Europe        | Educational |
//! | US-A     | 20   | 80               | North America | Commercial  |
//!
//! Node/link structure follows the published maps (Abilene 2004 map,
//! GEANT October-2004 map, CERNET backbone); US-A is an anonymized
//! commercial carrier in the paper and is substituted here by a
//! deterministic tier-1-like 20-PoP mesh (see `DESIGN.md` §3). Link
//! latencies are derived from router coordinates via
//! [`crate::geo::link_latency_ms`].

use crate::geo::link_latency_ms;
use crate::Graph;

/// City description: `(name, lat, lon)`.
type City = (&'static str, f64, f64);

fn build(name: &str, cities: &[City], links: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new(name);
    for &(city, lat, lon) in cities {
        g.add_node(city, lat, lon);
    }
    for &(a, b) in links {
        let ms = link_latency_ms(g.node_position(a), g.node_position(b));
        g.add_edge(a, b, ms).expect("embedded dataset links are valid by construction");
    }
    debug_assert!(g.ensure_connected().is_ok(), "{name} must be connected");
    g
}

/// The Abilene (Internet2) backbone: 11 PoPs, 14 bidirectional
/// OC192/OC48 trunks (28 directed edges in the paper's Table II).
#[must_use]
pub fn abilene() -> Graph {
    const CITIES: [City; 11] = [
        ("Seattle", 47.61, -122.33),
        ("Sunnyvale", 37.37, -122.04),
        ("Los Angeles", 34.05, -118.24),
        ("Denver", 39.74, -104.99),
        ("Kansas City", 39.10, -94.58),
        ("Houston", 29.76, -95.37),
        ("Chicago", 41.88, -87.63),
        ("Indianapolis", 39.77, -86.16),
        ("Atlanta", 33.75, -84.39),
        ("Washington DC", 38.91, -77.04),
        ("New York", 40.71, -74.01),
    ];
    const LINKS: [(usize, usize); 14] = [
        (0, 1),  // Seattle - Sunnyvale
        (0, 3),  // Seattle - Denver
        (1, 2),  // Sunnyvale - Los Angeles
        (1, 3),  // Sunnyvale - Denver
        (2, 5),  // Los Angeles - Houston
        (3, 4),  // Denver - Kansas City
        (4, 5),  // Kansas City - Houston
        (4, 7),  // Kansas City - Indianapolis
        (5, 8),  // Houston - Atlanta
        (7, 8),  // Indianapolis - Atlanta
        (7, 6),  // Indianapolis - Chicago
        (6, 10), // Chicago - New York
        (8, 9),  // Atlanta - Washington DC
        (9, 10), // Washington DC - New York
    ];
    build("Abilene", &CITIES, &LINKS)
}

/// The GEANT pan-European research backbone (October 2004 map):
/// 23 PoPs, 37 bidirectional links (74 directed edges).
#[must_use]
pub fn geant() -> Graph {
    const CITIES: [City; 23] = [
        ("Vienna", 48.21, 16.37),     // 0  AT
        ("Brussels", 50.85, 4.35),    // 1  BE
        ("Zagreb", 45.81, 15.98),     // 2  HR
        ("Prague", 50.08, 14.44),     // 3  CZ
        ("Copenhagen", 55.68, 12.57), // 4  DK
        ("Paris", 48.86, 2.35),       // 5  FR
        ("Frankfurt", 50.11, 8.68),   // 6  DE
        ("Athens", 37.98, 23.73),     // 7  GR
        ("Budapest", 47.50, 19.04),   // 8  HU
        ("Dublin", 53.35, -6.26),     // 9  IE
        ("Bucharest", 44.43, 26.10),  // 10 RO
        ("Milan", 45.46, 9.19),       // 11 IT
        ("Luxembourg", 49.61, 6.13),  // 12 LU
        ("Amsterdam", 52.37, 4.90),   // 13 NL
        ("Poznan", 52.41, 16.93),     // 14 PL
        ("Lisbon", 38.72, -9.14),     // 15 PT
        ("Bratislava", 48.15, 17.11), // 16 SK
        ("Ljubljana", 46.06, 14.51),  // 17 SI
        ("Madrid", 40.42, -3.70),     // 18 ES
        ("Stockholm", 59.33, 18.07),  // 19 SE
        ("Geneva", 46.20, 6.14),      // 20 CH
        ("London", 51.51, -0.13),     // 21 UK
        ("Tallinn", 59.44, 24.75),    // 22 EE
    ];
    const LINKS: [(usize, usize); 37] = [
        (21, 5),  // London - Paris
        (21, 13), // London - Amsterdam
        (21, 9),  // London - Dublin
        (19, 22), // Stockholm - Tallinn
        (21, 15), // London - Lisbon
        (5, 18),  // Paris - Madrid
        (5, 20),  // Paris - Geneva
        (5, 1),   // Paris - Brussels
        (5, 12),  // Paris - Luxembourg
        (1, 13),  // Brussels - Amsterdam
        (13, 6),  // Amsterdam - Frankfurt
        (13, 4),  // Amsterdam - Copenhagen
        (6, 20),  // Frankfurt - Geneva
        (6, 0),   // Frankfurt - Vienna
        (6, 4),   // Frankfurt - Copenhagen
        (6, 14),  // Frankfurt - Poznan
        (6, 12),  // Frankfurt - Luxembourg
        (6, 3),   // Frankfurt - Prague
        (14, 22), // Poznan - Tallinn
        (20, 11), // Geneva - Milan
        (20, 18), // Geneva - Madrid
        (11, 0),  // Milan - Vienna
        (11, 7),  // Milan - Athens
        (8, 10),  // Budapest - Bucharest
        (0, 8),   // Vienna - Budapest
        (0, 17),  // Vienna - Ljubljana
        (0, 3),   // Vienna - Prague
        (0, 16),  // Vienna - Bratislava
        (8, 2),   // Budapest - Zagreb
        (8, 16),  // Budapest - Bratislava
        (17, 2),  // Ljubljana - Zagreb
        (3, 14),  // Prague - Poznan
        (4, 19),  // Copenhagen - Stockholm
        (19, 14), // Stockholm - Poznan
        (18, 15), // Madrid - Lisbon
        (7, 10),  // Athens - Bucharest
        (9, 13),  // Dublin - Amsterdam
    ];
    build("GEANT", &CITIES, &LINKS)
}

/// The CERNET Chinese education/research backbone: 36 PoPs, 56
/// bidirectional links (112 directed edges). Eight core hubs form a
/// national mesh; 28 regional PoPs attach to one or two hubs.
#[must_use]
pub fn cernet() -> Graph {
    const CITIES: [City; 36] = [
        // Core hubs (0-7).
        ("Beijing", 39.90, 116.41),
        ("Shanghai", 31.23, 121.47),
        ("Guangzhou", 23.13, 113.26),
        ("Wuhan", 30.59, 114.31),
        ("Nanjing", 32.06, 118.80),
        ("Xi'an", 34.34, 108.94),
        ("Chengdu", 30.57, 104.07),
        ("Shenyang", 41.81, 123.43),
        // Regional PoPs (8-35).
        ("Tianjin", 39.34, 117.36),
        ("Harbin", 45.80, 126.53),
        ("Changchun", 43.82, 125.32),
        ("Dalian", 38.91, 121.60),
        ("Jinan", 36.65, 117.00),
        ("Qingdao", 36.07, 120.38),
        ("Shijiazhuang", 38.04, 114.51),
        ("Taiyuan", 37.87, 112.55),
        ("Hohhot", 40.84, 111.75),
        ("Zhengzhou", 34.75, 113.62),
        ("Hefei", 31.82, 117.23),
        ("Hangzhou", 30.27, 120.15),
        ("Suzhou", 31.30, 120.62),
        ("Wenzhou", 28.00, 120.70),
        ("Fuzhou", 26.07, 119.30),
        ("Xiamen", 24.48, 118.09),
        ("Nanchang", 28.68, 115.86),
        ("Changsha", 28.23, 112.94),
        ("Guiyang", 26.65, 106.63),
        ("Kunming", 25.04, 102.71),
        ("Nanning", 22.82, 108.37),
        ("Haikou", 20.04, 110.20),
        ("Chongqing", 29.56, 106.55),
        ("Lanzhou", 36.06, 103.83),
        ("Xining", 36.62, 101.78),
        ("Yinchuan", 38.49, 106.23),
        ("Urumqi", 43.83, 87.62),
        ("Shenzhen", 22.54, 114.06),
    ];
    const LINKS: [(usize, usize); 56] = [
        // Core mesh (14 links).
        (0, 1),
        (0, 3),
        (0, 5),
        (0, 7),
        (0, 4),
        (0, 2),
        (1, 4),
        (1, 3),
        (1, 2),
        (2, 3),
        (2, 6),
        (3, 5),
        (3, 6),
        (5, 6),
        // Dual-homed regional PoPs (14 × 2 = 28 links).
        (8, 0),
        (8, 7), // Tianjin: Beijing + Shenyang
        (9, 7),
        (9, 0), // Harbin: Shenyang + Beijing
        (11, 7),
        (11, 0), // Dalian
        (12, 0),
        (12, 1), // Jinan
        (17, 0),
        (17, 3), // Zhengzhou
        (18, 4),
        (18, 3), // Hefei
        (19, 1),
        (19, 4), // Hangzhou
        (25, 3),
        (25, 2), // Changsha
        (24, 3),
        (24, 1), // Nanchang
        (31, 6),
        (31, 2), // Chongqing
        (26, 6),
        (26, 2), // Guiyang
        (32, 5),
        (32, 6), // Lanzhou
        (35, 2),
        (35, 1), // Shenzhen
        (22, 1),
        (22, 2), // Fuzhou
        // Single-homed regional PoPs (14 links).
        (10, 7),  // Changchun
        (13, 12), // Qingdao - Jinan
        (14, 0),  // Shijiazhuang
        (15, 0),  // Taiyuan
        (16, 0),  // Hohhot
        (20, 1),  // Suzhou
        (21, 19), // Wenzhou - Hangzhou
        (23, 22), // Xiamen - Fuzhou
        (27, 6),  // Kunming
        (28, 2),  // Nanning
        (29, 2),  // Haikou
        (30, 32), // Xining - Lanzhou
        (33, 32), // Yinchuan - Lanzhou
        (34, 32), // Urumqi - Lanzhou
    ];
    build("CERNET", &CITIES, &LINKS)
}

/// "US-A": a deterministic stand-in for the paper's anonymized
/// North-American tier-1 commercial carrier — 20 PoPs, 40 bidirectional
/// links (80 directed edges) matching Table II's aggregates.
#[must_use]
pub fn us_a() -> Graph {
    const CITIES: [City; 20] = [
        ("New York", 40.71, -74.01),
        ("Chicago", 41.88, -87.63),
        ("Los Angeles", 34.05, -118.24),
        ("Dallas", 32.78, -96.80),
        ("Atlanta", 33.75, -84.39),
        ("Washington DC", 38.91, -77.04),
        ("San Francisco", 37.77, -122.42),
        ("Seattle", 47.61, -122.33),
        ("Denver", 39.74, -104.99),
        ("Miami", 25.76, -80.19),
        ("Boston", 42.36, -71.06),
        ("Houston", 29.76, -95.37),
        ("Phoenix", 33.45, -112.07),
        ("Minneapolis", 44.98, -93.27),
        ("Detroit", 42.33, -83.05),
        ("Philadelphia", 39.95, -75.17),
        ("St. Louis", 38.63, -90.20),
        ("Kansas City", 39.10, -94.58),
        ("Salt Lake City", 40.76, -111.89),
        ("Portland", 45.52, -122.68),
    ];
    const LINKS: [(usize, usize); 40] = [
        (0, 10),  // NY - Boston
        (0, 15),  // NY - Philadelphia
        (0, 5),   // NY - Washington
        (0, 1),   // NY - Chicago
        (0, 4),   // NY - Atlanta
        (15, 5),  // Philadelphia - Washington
        (15, 1),  // Philadelphia - Chicago
        (10, 1),  // Boston - Chicago
        (5, 4),   // Washington - Atlanta
        (5, 1),   // Washington - Chicago
        (4, 9),   // Atlanta - Miami
        (4, 3),   // Atlanta - Dallas
        (4, 11),  // Atlanta - Houston
        (4, 16),  // Atlanta - St. Louis
        (9, 11),  // Miami - Houston
        (9, 3),   // Miami - Dallas
        (1, 14),  // Chicago - Detroit
        (1, 13),  // Chicago - Minneapolis
        (1, 16),  // Chicago - St. Louis
        (1, 17),  // Chicago - Kansas City
        (1, 8),   // Chicago - Denver
        (14, 10), // Detroit - Boston
        (13, 7),  // Minneapolis - Seattle
        (13, 8),  // Minneapolis - Denver
        (16, 17), // St. Louis - Kansas City
        (16, 3),  // St. Louis - Dallas
        (17, 8),  // Kansas City - Denver
        (17, 3),  // Kansas City - Dallas
        (3, 11),  // Dallas - Houston
        (3, 12),  // Dallas - Phoenix
        (11, 2),  // Houston - Los Angeles
        (8, 18),  // Denver - Salt Lake City
        (8, 12),  // Denver - Phoenix
        (18, 7),  // Salt Lake City - Seattle
        (18, 6),  // Salt Lake City - San Francisco
        (12, 2),  // Phoenix - Los Angeles
        (2, 6),   // Los Angeles - San Francisco
        (6, 7),   // San Francisco - Seattle
        (6, 19),  // San Francisco - Portland
        (19, 7),  // Portland - Seattle
    ];
    build("US-A", &CITIES, &LINKS)
}

/// All four evaluation topologies in the paper's Table II order.
#[must_use]
pub fn all() -> Vec<Graph> {
    vec![abilene(), cernet(), geant(), us_a()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_node_and_edge_counts() {
        // (name, |V|, |E| directed) exactly as the paper's Table II.
        let expected =
            [("Abilene", 11, 28), ("CERNET", 36, 112), ("GEANT", 23, 74), ("US-A", 20, 80)];
        for (graph, (name, v, e)) in all().iter().zip(expected) {
            assert_eq!(graph.name(), name);
            assert_eq!(graph.node_count(), v, "{name} node count");
            assert_eq!(graph.directed_edge_count(), e, "{name} directed edge count");
        }
    }

    #[test]
    fn all_datasets_connected() {
        for graph in all() {
            graph.ensure_connected().unwrap_or_else(|e| panic!("{}: {e}", graph.name()));
        }
    }

    #[test]
    fn all_link_latencies_positive_and_bounded() {
        for graph in all() {
            for (a, b, ms) in graph.edges() {
                assert!(
                    ms > 0.0 && ms < 50.0,
                    "{}: link {}-{} latency {ms} out of range",
                    graph.name(),
                    graph.node_name(a),
                    graph.node_name(b)
                );
            }
        }
    }

    #[test]
    fn no_isolated_nodes() {
        for graph in all() {
            for v in 0..graph.node_count() {
                assert!(graph.degree(v) >= 1, "{}: {} isolated", graph.name(), graph.node_name(v));
            }
        }
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = abilene();
        let b = abilene();
        assert_eq!(a, b);
    }

    #[test]
    fn abilene_structure_spot_checks() {
        let g = abilene();
        // Chicago connects to Indianapolis and New York only.
        let chicago = 6;
        assert_eq!(g.node_name(chicago), "Chicago");
        let mut names: Vec<&str> =
            g.neighbors(chicago).iter().map(|&(v, _)| g.node_name(v)).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["Indianapolis", "New York"]);
    }
}
