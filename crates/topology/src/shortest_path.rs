//! All-pairs shortest paths over latency weights (Dijkstra) and hop
//! counts (BFS), plus next-hop routing tables used by the simulator's
//! FIB construction.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{Graph, NodeId};

/// Dense all-pairs matrices produced by [`all_pairs`].
#[derive(Debug, Clone, PartialEq)]
pub struct AllPairs {
    n: usize,
    /// latency[i*n + j] = shortest-path latency i→j in ms.
    latency: Vec<f64>,
    /// hops[i*n + j] = minimum hop count i→j.
    hops: Vec<u32>,
    /// next[i*n + j] = first hop on a shortest-latency path i→j
    /// (usize::MAX when unreachable or i == j).
    next: Vec<usize>,
    /// routed_hops[i*n + j] = hop count along the min-latency path
    /// (u32::MAX when unreachable).
    routed_hops: Vec<u32>,
}

impl AllPairs {
    /// Shortest-path latency from `i` to `j` in milliseconds
    /// (`f64::INFINITY` if unreachable, 0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn latency_ms(&self, i: NodeId, j: NodeId) -> f64 {
        self.latency[i * self.n + j]
    }

    /// Minimum hop count from `i` to `j` (`u32::MAX` if unreachable).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn hops(&self, i: NodeId, j: NodeId) -> u32 {
        self.hops[i * self.n + j]
    }

    /// First hop on a shortest-latency path from `i` to `j`, or `None`
    /// when `i == j` or `j` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn next_hop(&self, i: NodeId, j: NodeId) -> Option<NodeId> {
        let v = self.next[i * self.n + j];
        (v != usize::MAX).then_some(v)
    }

    /// Full shortest-latency path `i → … → j` including both endpoints,
    /// or `None` if unreachable. `Some(vec![i])` when `i == j`.
    #[must_use]
    pub fn path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        if i == j {
            return Some(vec![i]);
        }
        if self.latency_ms(i, j).is_infinite() {
            return None;
        }
        let mut path = vec![i];
        let mut cur = i;
        while cur != j {
            cur = self.next_hop(cur, j)?;
            path.push(cur);
            if path.len() > self.n {
                return None; // defensive: routing loop
            }
        }
        Some(path)
    }

    /// Maximum finite pairwise latency (the paper's `w` estimate).
    /// Returns 0 for graphs with fewer than two nodes.
    #[must_use]
    pub fn max_latency_ms(&self) -> f64 {
        self.latency.iter().copied().filter(|l| l.is_finite()).fold(0.0, f64::max)
    }

    /// Mean pairwise latency normalized by `|V|²` — i.e. including the
    /// zero diagonal — matching the paper's `d1 − d0` definition.
    #[must_use]
    pub fn mean_latency_ms(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let sum: f64 = self.latency.iter().copied().filter(|l| l.is_finite()).sum();
        sum / (self.n * self.n) as f64
    }

    /// Hop count along the minimum-*latency* path from `i` to `j`
    /// (`u32::MAX` if unreachable). This is the hop metric an
    /// IGP-routed network actually experiences and can exceed
    /// [`AllPairs::hops`] when the latency-shortest route is not the
    /// hop-shortest one.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn routed_hops(&self, i: NodeId, j: NodeId) -> u32 {
        self.routed_hops[i * self.n + j]
    }

    /// Mean routed hop count (along min-latency paths), normalized by
    /// `|V|²` like [`AllPairs::mean_hops`].
    #[must_use]
    pub fn mean_routed_hops(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let sum: f64 =
            self.routed_hops.iter().copied().filter(|&h| h != u32::MAX).map(f64::from).sum();
        sum / (self.n * self.n) as f64
    }

    /// Mean pairwise hop count normalized by `|V|²` (paper Table III).
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let sum: f64 = self.hops.iter().copied().filter(|&h| h != u32::MAX).map(f64::from).sum();
        sum / (self.n * self.n) as f64
    }

    /// Network diameter in hops (max finite pairwise hop count).
    #[must_use]
    pub fn diameter_hops(&self) -> u32 {
        self.hops.iter().copied().filter(|&h| h != u32::MAX).max().unwrap_or(0)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance via reversed comparison; distances are
        // always finite when pushed.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("distances are finite")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Dijkstra from `src` over latency weights, returning
/// `(latency, predecessor)` arrays. Unreachable nodes have infinite
/// latency and `usize::MAX` predecessor.
#[must_use]
pub fn dijkstra(graph: &Graph, src: NodeId) -> (Vec<f64>, Vec<usize>) {
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut pred = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: src });
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for &(u, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[u] {
                dist[u] = nd;
                pred[u] = v;
                heap.push(HeapEntry { dist: nd, node: u });
            }
        }
    }
    (dist, pred)
}

/// Runs BFS from `src`, returning minimum hop counts (`u32::MAX` when
/// unreachable).
#[must_use]
pub fn bfs_hops(graph: &Graph, src: NodeId) -> Vec<u32> {
    let n = graph.node_count();
    let mut hops = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    hops[src] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &(u, _) in graph.neighbors(v) {
            if hops[u] == u32::MAX {
                hops[u] = hops[v] + 1;
                queue.push_back(u);
            }
        }
    }
    hops
}

/// Computes all-pairs shortest-path latency, hop-count, and next-hop
/// matrices for `graph`.
#[must_use]
pub fn all_pairs(graph: &Graph) -> AllPairs {
    let n = graph.node_count();
    let mut latency = Vec::with_capacity(n * n);
    let mut hops = Vec::with_capacity(n * n);
    let mut next = vec![usize::MAX; n * n];
    let mut routed_hops = vec![u32::MAX; n * n];
    for src in 0..n {
        let (dist, pred) = dijkstra(graph, src);
        latency.extend_from_slice(&dist);
        hops.extend(bfs_hops(graph, src));
        // Derive next hop and routed hop count from src toward each
        // destination by walking the predecessor chain backwards.
        for dst in 0..n {
            if dst == src {
                routed_hops[src * n + dst] = 0;
                continue;
            }
            if dist[dst].is_infinite() {
                continue;
            }
            let mut cur = dst;
            let mut count = 1;
            while pred[cur] != src {
                cur = pred[cur];
                count += 1;
            }
            next[src * n + dst] = cur;
            routed_hops[src * n + dst] = count;
        }
    }
    AllPairs { n, latency, hops, next, routed_hops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// A 4-node diamond where the direct a—d link is slower than the
    /// two-hop route through b.
    fn diamond() -> Graph {
        let mut g = Graph::new("diamond");
        let a = g.add_node("a", 0.0, 0.0);
        let b = g.add_node("b", 0.0, 0.0);
        let c = g.add_node("c", 0.0, 0.0);
        let d = g.add_node("d", 0.0, 0.0);
        g.add_edge(a, b, 1.0).unwrap();
        g.add_edge(b, d, 1.0).unwrap();
        g.add_edge(a, c, 4.0).unwrap();
        g.add_edge(c, d, 4.0).unwrap();
        g.add_edge(a, d, 10.0).unwrap();
        g
    }

    #[test]
    fn latency_prefers_multi_hop_route() {
        let ap = all_pairs(&diamond());
        assert!((ap.latency_ms(0, 3) - 2.0).abs() < 1e-12);
        // Hop count is topological: the direct link wins on hops.
        assert_eq!(ap.hops(0, 3), 1);
    }

    #[test]
    fn path_reconstruction_follows_latency() {
        let ap = all_pairs(&diamond());
        assert_eq!(ap.path(0, 3).unwrap(), vec![0, 1, 3]);
        assert_eq!(ap.path(2, 2).unwrap(), vec![2]);
        assert_eq!(ap.next_hop(0, 3), Some(1));
        assert_eq!(ap.next_hop(1, 1), None);
    }

    #[test]
    fn diagonal_is_zero() {
        let ap = all_pairs(&diamond());
        for v in 0..4 {
            assert_eq!(ap.latency_ms(v, v), 0.0);
            assert_eq!(ap.hops(v, v), 0);
        }
    }

    #[test]
    fn matrices_are_symmetric_for_undirected_graphs() {
        let ap = all_pairs(&diamond());
        for i in 0..4 {
            for j in 0..4 {
                assert!((ap.latency_ms(i, j) - ap.latency_ms(j, i)).abs() < 1e-12);
                assert_eq!(ap.hops(i, j), ap.hops(j, i));
            }
        }
    }

    #[test]
    fn disconnected_nodes_are_infinite() {
        let mut g = diamond();
        let lonely = g.add_node("lonely", 0.0, 0.0);
        let ap = all_pairs(&g);
        assert!(ap.latency_ms(0, lonely).is_infinite());
        assert_eq!(ap.hops(0, lonely), u32::MAX);
        assert_eq!(ap.path(0, lonely), None);
        // Aggregates must skip unreachable pairs rather than poison.
        assert!(ap.max_latency_ms().is_finite());
        assert!(ap.mean_latency_ms().is_finite());
    }

    #[test]
    fn aggregates_on_a_line_graph() {
        // 0 -1ms- 1 -1ms- 2: latencies 0,1,2 / 1,0,1 / 2,1,0.
        let mut g = Graph::new("line");
        let a = g.add_node("0", 0.0, 0.0);
        let b = g.add_node("1", 0.0, 0.0);
        let c = g.add_node("2", 0.0, 0.0);
        g.add_edge(a, b, 1.0).unwrap();
        g.add_edge(b, c, 1.0).unwrap();
        let ap = all_pairs(&g);
        assert!((ap.max_latency_ms() - 2.0).abs() < 1e-12);
        assert!((ap.mean_latency_ms() - 8.0 / 9.0).abs() < 1e-12);
        assert!((ap.mean_hops() - 8.0 / 9.0).abs() < 1e-12);
        assert_eq!(ap.diameter_hops(), 2);
    }

    #[test]
    fn triangle_inequality_holds() {
        let ap = all_pairs(&diamond());
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    assert!(
                        ap.latency_ms(i, j) <= ap.latency_ms(i, k) + ap.latency_ms(k, j) + 1e-12
                    );
                }
            }
        }
    }
}
