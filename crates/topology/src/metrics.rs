//! Structural topology metrics.
//!
//! Beyond the model parameters of Table III, comparing real and
//! synthetic topologies (Figure 6's scaling sweeps run on generated
//! networks) needs structural fingerprints: degree statistics,
//! clustering, and centrality. These are also what a carrier would
//! inspect when choosing where to place the coordinator.

use crate::shortest_path::all_pairs;
use crate::Graph;

/// Degree statistics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree (`2|E|/|V|`).
    pub mean: f64,
    /// Full degree sequence, descending.
    pub sequence: Vec<usize>,
}

/// Computes degree statistics. Returns zeros for an empty graph.
#[must_use]
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.node_count();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, sequence: Vec::new() };
    }
    let mut sequence: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    sequence.sort_unstable_by(|a, b| b.cmp(a));
    DegreeStats {
        min: *sequence.last().expect("non-empty"),
        max: sequence[0],
        mean: 2.0 * graph.undirected_edge_count() as f64 / n as f64,
        sequence,
    }
}

/// Global clustering coefficient: `3 × triangles / connected triples`.
/// Returns 0 for graphs without any connected triple.
#[must_use]
pub fn clustering_coefficient(graph: &Graph) -> f64 {
    let n = graph.node_count();
    let mut adjacency = vec![std::collections::HashSet::new(); n];
    for (a, b, _) in graph.edges() {
        adjacency[a].insert(b);
        adjacency[b].insert(a);
    }
    let mut triangles = 0u64;
    let mut triples = 0u64;
    for v in 0..n {
        let d = adjacency[v].len() as u64;
        triples += d * d.saturating_sub(1) / 2;
        let neighbours: Vec<usize> = adjacency[v].iter().copied().collect();
        for i in 0..neighbours.len() {
            for j in i + 1..neighbours.len() {
                if adjacency[neighbours[i]].contains(&neighbours[j]) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times.
        triangles as f64 / triples as f64
    }
}

/// Closeness centrality of every node: `(n−1) / Σ_j d(v, j)` over
/// latency distances (0 for unreachable-from-anywhere nodes).
#[must_use]
pub fn closeness_centrality(graph: &Graph) -> Vec<f64> {
    let n = graph.node_count();
    if n <= 1 {
        return vec![0.0; n];
    }
    let routes = all_pairs(graph);
    (0..n)
        .map(|v| {
            let total: f64 = (0..n)
                .filter(|&u| u != v)
                .map(|u| routes.latency_ms(v, u))
                .filter(|l| l.is_finite())
                .sum();
            if total > 0.0 {
                (n - 1) as f64 / total
            } else {
                0.0
            }
        })
        .collect()
}

/// The node with the highest closeness centrality — the natural
/// coordinator placement (equivalently, the latency 1-median).
#[must_use]
pub fn most_central_node(graph: &Graph) -> Option<usize> {
    let c = closeness_centrality(graph);
    c.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datasets, generators};

    #[test]
    fn degree_stats_of_a_star() {
        let g = generators::star(6, 1.0).unwrap();
        let d = degree_stats(&g);
        assert_eq!(d.max, 5);
        assert_eq!(d.min, 1);
        assert!((d.mean - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(d.sequence[0], 5);
        assert_eq!(d.sequence.len(), 6);
    }

    #[test]
    fn empty_graph_degenerates_gracefully() {
        let g = Graph::new("empty");
        let d = degree_stats(&g);
        assert_eq!(d.max, 0);
        assert_eq!(clustering_coefficient(&g), 0.0);
        assert!(closeness_centrality(&g).is_empty());
        assert_eq!(most_central_node(&g), None);
    }

    #[test]
    fn clustering_of_triangle_and_star() {
        // A triangle is perfectly clustered; a star has no triangles.
        let tri = generators::ring(3, 1.0).unwrap();
        assert!((clustering_coefficient(&tri) - 1.0).abs() < 1e-12);
        let star = generators::star(5, 1.0).unwrap();
        assert_eq!(clustering_coefficient(&star), 0.0);
    }

    #[test]
    fn line_centrality_peaks_in_the_middle() {
        let g = generators::line(7, 1.0).unwrap();
        assert_eq!(most_central_node(&g), Some(3));
        let c = closeness_centrality(&g);
        assert!(c[3] > c[0]);
        assert!((c[0] - c[6]).abs() < 1e-12, "symmetric ends");
    }

    #[test]
    fn datasets_have_plausible_structure() {
        for g in datasets::all() {
            let d = degree_stats(&g);
            assert!(d.min >= 1, "{}", g.name());
            assert!(d.mean >= 2.0, "{}: backbones are at least ring-dense", g.name());
            let cc = clustering_coefficient(&g);
            assert!((0.0..=1.0).contains(&cc), "{}: clustering {cc}", g.name());
            assert!(most_central_node(&g).is_some());
        }
    }

    #[test]
    fn barabasi_albert_is_more_skewed_than_erdos_renyi() {
        let ba = generators::barabasi_albert(200, 2, 1.0, 1).unwrap();
        let er = generators::erdos_renyi(200, 0.02, 1.0, 1).unwrap();
        let skew = |g: &Graph| {
            let d = degree_stats(g);
            d.max as f64 / d.mean
        };
        assert!(skew(&ba) > skew(&er), "preferential attachment grows hubs");
    }
}
