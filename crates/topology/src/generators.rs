//! Synthetic topology generators.
//!
//! The evaluation varies the network size `n` from 10 to 500 routers
//! (Figure 6/10), far beyond the four real datasets. These generators
//! produce connected synthetic backbones with controlled structure so
//! that scaling sweeps and the simulator have topologies at every `n`.
//! All random generators take an explicit seed and are deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, TopologyError};

/// Default link latency for abstract (non-geographic) topologies, ms.
pub const DEFAULT_LINK_MS: f64 = 5.0;

fn validated_n(n: usize, min: usize, what: &str) -> Result<(), TopologyError> {
    if n < min {
        return Err(TopologyError::InvalidGeneratorConfig {
            reason: format!("{what} needs at least {min} nodes, got {n}"),
        });
    }
    Ok(())
}

fn abstract_graph(name: &str, n: usize) -> Graph {
    let mut g = Graph::new(name);
    for i in 0..n {
        g.add_node(format!("R{i}"), 0.0, 0.0);
    }
    g
}

/// A ring of `n >= 3` routers with uniform link latency.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] for `n < 3`.
pub fn ring(n: usize, link_ms: f64) -> Result<Graph, TopologyError> {
    validated_n(n, 3, "ring")?;
    let mut g = abstract_graph("ring", n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n, link_ms)?;
    }
    Ok(g)
}

/// A line (path) of `n >= 2` routers.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] for `n < 2`.
pub fn line(n: usize, link_ms: f64) -> Result<Graph, TopologyError> {
    validated_n(n, 2, "line")?;
    let mut g = abstract_graph("line", n);
    for i in 0..n - 1 {
        g.add_edge(i, i + 1, link_ms)?;
    }
    Ok(g)
}

/// A star: router 0 is the hub, all others are leaves.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] for `n < 2`.
pub fn star(n: usize, link_ms: f64) -> Result<Graph, TopologyError> {
    validated_n(n, 2, "star")?;
    let mut g = abstract_graph("star", n);
    for i in 1..n {
        g.add_edge(0, i, link_ms)?;
    }
    Ok(g)
}

/// A `rows × cols` grid (each router linked to its right and down
/// neighbours).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] when either
/// dimension is zero or the grid has fewer than two nodes.
pub fn grid(rows: usize, cols: usize, link_ms: f64) -> Result<Graph, TopologyError> {
    if rows == 0 || cols == 0 || rows * cols < 2 {
        return Err(TopologyError::InvalidGeneratorConfig {
            reason: format!("grid needs at least 1x2 nodes, got {rows}x{cols}"),
        });
    }
    let mut g = abstract_graph("grid", rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1, link_ms)?;
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols, link_ms)?;
            }
        }
    }
    Ok(g)
}

/// Erdős–Rényi `G(n, p)` with a spanning-chain fix-up to guarantee
/// connectivity (the chain edges count toward the result).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] for `n < 2` or
/// `p` outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, link_ms: f64, seed: u64) -> Result<Graph, TopologyError> {
    validated_n(n, 2, "erdos-renyi")?;
    if !(0.0..=1.0).contains(&p) {
        return Err(TopologyError::InvalidGeneratorConfig {
            reason: format!("edge probability {p} outside [0, 1]"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = abstract_graph("erdos-renyi", n);
    for i in 1..n {
        g.add_edge(i - 1, i, link_ms)?; // spanning chain
    }
    for a in 0..n {
        for b in a + 2..n {
            if rng.gen::<f64>() < p {
                let _ = g.add_edge(a, b, link_ms); // duplicates impossible here
            }
        }
    }
    Ok(g)
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m` routers, each new router attaches to `m` distinct existing
/// routers with probability proportional to degree.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] for `m == 0` or
/// `n <= m`.
pub fn barabasi_albert(
    n: usize,
    m: usize,
    link_ms: f64,
    seed: u64,
) -> Result<Graph, TopologyError> {
    if m == 0 || n <= m {
        return Err(TopologyError::InvalidGeneratorConfig {
            reason: format!("barabasi-albert needs 0 < m < n, got m={m} n={n}"),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = abstract_graph("barabasi-albert", n);
    // Repeated-endpoint list implements preferential attachment.
    let mut endpoints: Vec<usize> = Vec::new();
    for a in 0..m {
        for b in a + 1..m {
            g.add_edge(a, b, link_ms)?;
            endpoints.push(a);
            endpoints.push(b);
        }
    }
    if m == 1 {
        endpoints.push(0); // a single seed node has no edges yet
    }
    for v in m..n {
        // BTreeSet keeps edge insertion order deterministic.
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 10_000 {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v {
                chosen.insert(t);
            }
        }
        for &t in &chosen {
            g.add_edge(v, t, link_ms)?;
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Ok(g)
}

/// Waxman random geometric graph on the unit square scaled to
/// `extent_km`: routers at uniform positions, link probability
/// `alpha · exp(−d / (beta · L))` with `L` the diagonal, plus a
/// spanning chain over the x-sorted order for connectivity. Latencies
/// derive from Euclidean distance at fibre speed.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] for `n < 2` or
/// non-positive `alpha`/`beta`/`extent_km`.
pub fn waxman(
    n: usize,
    alpha: f64,
    beta: f64,
    extent_km: f64,
    seed: u64,
) -> Result<Graph, TopologyError> {
    validated_n(n, 2, "waxman")?;
    if alpha <= 0.0 || beta <= 0.0 || extent_km <= 0.0 {
        return Err(TopologyError::InvalidGeneratorConfig {
            reason: format!(
                "waxman needs positive alpha/beta/extent, got {alpha}/{beta}/{extent_km}"
            ),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new("waxman");
    let mut pos: Vec<(f64, f64)> = Vec::with_capacity(n);
    for i in 0..n {
        let p = (rng.gen::<f64>() * extent_km, rng.gen::<f64>() * extent_km);
        pos.push(p);
        // Store plain kilometre coordinates in the lat/lon slots; the
        // generator computes distances itself.
        g.add_node(format!("R{i}"), p.0, p.1);
    }
    let diag = extent_km * std::f64::consts::SQRT_2;
    let latency = |a: (f64, f64), b: (f64, f64)| {
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        (d / crate::geo::FIBRE_KM_PER_MS).max(0.01) + crate::geo::PER_LINK_OVERHEAD_MS
    };
    // Connectivity chain over x-sorted nodes keeps chain links short.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| pos[a].0.partial_cmp(&pos[b].0).expect("positions are finite"));
    for w in order.windows(2) {
        g.add_edge(w[0], w[1], latency(pos[w[0]], pos[w[1]]))?;
    }
    for a in 0..n {
        for b in a + 1..n {
            let d = ((pos[a].0 - pos[b].0).powi(2) + (pos[a].1 - pos[b].1).powi(2)).sqrt();
            if rng.gen::<f64>() < alpha * (-d / (beta * diag)).exp() {
                let _ = g.add_edge(a, b, latency(pos[a], pos[b]));
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let g = ring(5, 2.0).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.undirected_edge_count(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.ensure_connected().is_ok());
    }

    #[test]
    fn line_and_star_structure() {
        let l = line(4, 1.0).unwrap();
        assert_eq!(l.undirected_edge_count(), 3);
        assert_eq!(l.degree(0), 1);
        assert_eq!(l.degree(1), 2);
        let s = star(6, 1.0).unwrap();
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.undirected_edge_count(), 5);
        for v in 1..6 {
            assert_eq!(s.degree(v), 1);
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4, 1.0).unwrap();
        assert_eq!(g.node_count(), 12);
        // Edges: 3 rows × 3 horizontal + 2 rows × 4 vertical = 9 + 8.
        assert_eq!(g.undirected_edge_count(), 17);
        assert!(g.ensure_connected().is_ok());
    }

    #[test]
    fn generators_reject_bad_configs() {
        assert!(ring(2, 1.0).is_err());
        assert!(line(1, 1.0).is_err());
        assert!(star(1, 1.0).is_err());
        assert!(grid(0, 5, 1.0).is_err());
        assert!(erdos_renyi(1, 0.5, 1.0, 0).is_err());
        assert!(erdos_renyi(5, 1.5, 1.0, 0).is_err());
        assert!(barabasi_albert(5, 0, 1.0, 0).is_err());
        assert!(barabasi_albert(3, 3, 1.0, 0).is_err());
        assert!(waxman(1, 0.5, 0.5, 100.0, 0).is_err());
        assert!(waxman(5, -0.5, 0.5, 100.0, 0).is_err());
    }

    #[test]
    fn random_generators_are_connected_and_deterministic() {
        for seed in [0, 1, 42] {
            let er = erdos_renyi(50, 0.05, 1.0, seed).unwrap();
            assert!(er.ensure_connected().is_ok());
            assert_eq!(er, erdos_renyi(50, 0.05, 1.0, seed).unwrap());

            let ba = barabasi_albert(50, 2, 1.0, seed).unwrap();
            assert!(ba.ensure_connected().is_ok());
            assert_eq!(ba, barabasi_albert(50, 2, 1.0, seed).unwrap());

            let wx = waxman(50, 0.4, 0.2, 4000.0, seed).unwrap();
            assert!(wx.ensure_connected().is_ok());
            assert_eq!(wx, waxman(50, 0.4, 0.2, 4000.0, seed).unwrap());
        }
    }

    #[test]
    fn barabasi_albert_hub_bias() {
        // Older nodes should accumulate higher degree on average.
        let g = barabasi_albert(200, 2, 1.0, 7).unwrap();
        let early: usize = (0..10).map(|v| g.degree(v)).sum();
        let late: usize = (190..200).map(|v| g.degree(v)).sum();
        assert!(early > late, "early {early} vs late {late}");
    }

    #[test]
    fn waxman_latencies_scale_with_extent() {
        let small = waxman(30, 0.5, 0.3, 100.0, 3).unwrap();
        let large = waxman(30, 0.5, 0.3, 5000.0, 3).unwrap();
        let mean = |g: &Graph| g.total_link_latency() / g.undirected_edge_count() as f64;
        assert!(mean(&large) > mean(&small));
    }
}

/// A two-tier ISP-like backbone: `cores` fully meshed core routers,
/// each aggregation router attached to its two nearest cores
/// (dual-homing), laid out on a circle of radius `radius_km` (cores
/// inner, aggregation outer). Latencies derive from chord distance at
/// fibre speed.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] for fewer than 2
/// cores, zero aggregation routers, or a non-positive radius.
pub fn two_tier(cores: usize, aggregation: usize, radius_km: f64) -> Result<Graph, TopologyError> {
    if cores < 2 || aggregation == 0 {
        return Err(TopologyError::InvalidGeneratorConfig {
            reason: format!(
                "two-tier needs >= 2 cores and >= 1 aggregation router, got {cores}/{aggregation}"
            ),
        });
    }
    if radius_km.is_nan() || radius_km <= 0.0 {
        return Err(TopologyError::InvalidGeneratorConfig {
            reason: format!("two-tier radius {radius_km} must be positive"),
        });
    }
    let mut g = Graph::new("two-tier");
    let tau = std::f64::consts::TAU;
    let mut pos: Vec<(f64, f64)> = Vec::with_capacity(cores + aggregation);
    for i in 0..cores {
        let angle = tau * i as f64 / cores as f64;
        let p = (0.5 * radius_km * angle.cos(), 0.5 * radius_km * angle.sin());
        pos.push(p);
        g.add_node(format!("core{i}"), p.0, p.1);
    }
    for i in 0..aggregation {
        let angle = tau * i as f64 / aggregation as f64;
        let p = (radius_km * angle.cos(), radius_km * angle.sin());
        pos.push(p);
        g.add_node(format!("agg{i}"), p.0, p.1);
    }
    let latency = |a: (f64, f64), b: (f64, f64)| {
        let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        (d / crate::geo::FIBRE_KM_PER_MS).max(0.01) + crate::geo::PER_LINK_OVERHEAD_MS
    };
    // Full core mesh.
    for a in 0..cores {
        for b in a + 1..cores {
            g.add_edge(a, b, latency(pos[a], pos[b]))?;
        }
    }
    // Each aggregation router dual-homes to its two nearest cores.
    for i in 0..aggregation {
        let v = cores + i;
        let mut by_distance: Vec<usize> = (0..cores).collect();
        by_distance.sort_by(|&a, &b| latency(pos[v], pos[a]).total_cmp(&latency(pos[v], pos[b])));
        g.add_edge(v, by_distance[0], latency(pos[v], pos[by_distance[0]]))?;
        if cores > 1 {
            g.add_edge(v, by_distance[1], latency(pos[v], pos[by_distance[1]]))?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod two_tier_tests {
    use super::*;

    #[test]
    fn structure_counts() {
        let g = two_tier(4, 12, 1000.0).unwrap();
        assert_eq!(g.node_count(), 16);
        // Core mesh 6 edges + 2 per aggregation router.
        assert_eq!(g.undirected_edge_count(), 6 + 24);
        assert!(g.ensure_connected().is_ok());
        // Cores are the hubs.
        for core in 0..4 {
            assert!(g.degree(core) >= 3, "core {core}");
        }
        for agg in 4..16 {
            assert_eq!(g.degree(agg), 2, "aggregation routers dual-home");
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(two_tier(1, 5, 100.0).is_err());
        assert!(two_tier(3, 0, 100.0).is_err());
        assert!(two_tier(3, 5, 0.0).is_err());
    }

    #[test]
    fn latencies_scale_with_radius() {
        let small = two_tier(3, 6, 100.0).unwrap();
        let large = two_tier(3, 6, 4000.0).unwrap();
        assert!(large.total_link_latency() > small.total_link_latency());
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(two_tier(4, 10, 1500.0).unwrap(), two_tier(4, 10, 1500.0).unwrap());
    }
}
