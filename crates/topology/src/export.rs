//! Topology rendering: Graphviz DOT and terminal ASCII (Figure 3).
//!
//! The paper's Figure 3 shows the Abilene backbone; `fig3` in
//! `ccn-bench` regenerates it through these exporters.

use std::fmt::Write as _;

use crate::Graph;

/// Renders the topology as a Graphviz DOT document with latency-labeled
/// edges and geographic positions as node attributes.
#[must_use]
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  layout=neato;");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=10];");
    for v in 0..graph.node_count() {
        let (lat, lon) = graph.node_position(v);
        // Longitude/latitude map directly onto x/y for layout.
        let _ = writeln!(
            out,
            "  n{v} [label=\"{}\", pos=\"{:.2},{:.2}!\"];",
            graph.node_name(v),
            lon / 10.0,
            lat / 10.0
        );
    }
    for (a, b, ms) in graph.edges() {
        let _ = writeln!(out, "  n{a} -- n{b} [label=\"{ms:.1}ms\"];");
    }
    out.push_str("}\n");
    out
}

/// Renders an adjacency listing of the topology for terminals:
/// one line per router with its neighbours and link latencies.
#[must_use]
pub fn to_ascii(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {} routers, {} links",
        graph.name(),
        graph.node_count(),
        graph.undirected_edge_count()
    );
    let width = (0..graph.node_count()).map(|v| graph.node_name(v).len()).max().unwrap_or(0);
    for v in 0..graph.node_count() {
        let mut neighbours: Vec<String> = graph
            .neighbors(v)
            .iter()
            .map(|&(u, ms)| format!("{} ({ms:.1}ms)", graph.node_name(u)))
            .collect();
        neighbours.sort();
        let _ = writeln!(out, "  {:width$} -- {}", graph.node_name(v), neighbours.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = datasets::abilene();
        let dot = to_dot(&g);
        assert!(dot.starts_with("graph \"Abilene\""));
        for v in 0..g.node_count() {
            assert!(dot.contains(g.node_name(v)), "missing node {}", g.node_name(v));
        }
        assert_eq!(dot.matches(" -- ").count(), g.undirected_edge_count());
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn ascii_lists_every_router() {
        let g = datasets::abilene();
        let text = to_ascii(&g);
        assert!(text.contains("11 routers"));
        assert!(text.contains("14 links"));
        // Chicago's neighbours appear on its line.
        let chicago_line = text.lines().find(|l| l.trim_start().starts_with("Chicago")).unwrap();
        assert!(chicago_line.contains("Indianapolis"));
        assert!(chicago_line.contains("New York"));
    }

    #[test]
    fn empty_graph_renders() {
        let g = Graph::new("empty");
        assert!(to_dot(&g).contains("graph \"empty\""));
        assert!(to_ascii(&g).contains("0 routers"));
    }
}
