//! Reading and writing topologies as plain-text edge lists.
//!
//! Lets users evaluate the model on their own networks without
//! touching code. The format:
//!
//! ```text
//! # ccn-topology v1
//! # name: MyNet
//! node Seattle 47.61 -122.33
//! node Denver 39.74 -104.99
//! edge Seattle Denver 8.5
//! ```
//!
//! `node <name> <lat> <lon>` declares a router (names must be unique,
//! whitespace-free); `edge <a> <b> <latency_ms>` links two declared
//! routers. `#` comments and blank lines are ignored.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use crate::{Graph, TopologyError};

/// Writes `graph` in the edge-list format.
///
/// Node names containing whitespace are rejected since the format is
/// whitespace-delimited.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] for unencodable
/// names and propagates I/O failures as the same variant.
pub fn write_edge_list(mut writer: impl Write, graph: &Graph) -> Result<(), TopologyError> {
    let io_err = |e: std::io::Error| TopologyError::InvalidGeneratorConfig {
        reason: format!("write failed: {e}"),
    };
    writeln!(writer, "# ccn-topology v1").map_err(io_err)?;
    writeln!(writer, "# name: {}", graph.name()).map_err(io_err)?;
    for v in 0..graph.node_count() {
        let name = graph.node_name(v);
        if name.split_whitespace().count() != 1 {
            return Err(TopologyError::InvalidGeneratorConfig {
                reason: format!("node name {name:?} is not whitespace-free"),
            });
        }
        let (lat, lon) = graph.node_position(v);
        writeln!(writer, "node {name} {lat} {lon}").map_err(io_err)?;
    }
    for (a, b, ms) in graph.edges() {
        writeln!(writer, "edge {} {} {ms}", graph.node_name(a), graph.node_name(b))
            .map_err(io_err)?;
    }
    Ok(())
}

/// Parses a topology from the edge-list format.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidGeneratorConfig`] describing the
/// offending line for malformed input, plus the usual graph-building
/// errors (duplicate edges, self loops, bad weights).
pub fn read_edge_list(reader: impl BufRead) -> Result<Graph, TopologyError> {
    let mut graph = Graph::new("imported");
    let mut ids: HashMap<String, usize> = HashMap::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| TopologyError::InvalidGeneratorConfig {
            reason: format!("read failed at line {}: {e}", lineno + 1),
        })?;
        let trimmed = line.trim();
        let bad = |what: &str| TopologyError::InvalidGeneratorConfig {
            reason: format!("line {}: {what}: {trimmed:?}", lineno + 1),
        };
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            if let Some(name) = comment.trim().strip_prefix("name:") {
                graph = rename(graph, name.trim());
            }
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        match fields.next() {
            Some("node") => {
                let name = fields.next().ok_or_else(|| bad("missing node name"))?;
                let lat: f64 = fields
                    .next()
                    .ok_or_else(|| bad("missing latitude"))?
                    .parse()
                    .map_err(|_| bad("bad latitude"))?;
                let lon: f64 = fields
                    .next()
                    .ok_or_else(|| bad("missing longitude"))?
                    .parse()
                    .map_err(|_| bad("bad longitude"))?;
                if fields.next().is_some() {
                    return Err(bad("trailing fields"));
                }
                if ids.contains_key(name) {
                    return Err(bad("duplicate node name"));
                }
                let id = graph.add_node(name, lat, lon);
                ids.insert(name.to_owned(), id);
            }
            Some("edge") => {
                let a = fields.next().ok_or_else(|| bad("missing endpoint"))?;
                let b = fields.next().ok_or_else(|| bad("missing endpoint"))?;
                let ms: f64 = fields
                    .next()
                    .ok_or_else(|| bad("missing latency"))?
                    .parse()
                    .map_err(|_| bad("bad latency"))?;
                if fields.next().is_some() {
                    return Err(bad("trailing fields"));
                }
                let &a = ids.get(a).ok_or_else(|| bad("edge references unknown node"))?;
                let &b = ids.get(b).ok_or_else(|| bad("edge references unknown node"))?;
                graph.add_edge(a, b, ms)?;
            }
            _ => return Err(bad("unknown directive (expected `node` or `edge`)")),
        }
    }
    Ok(graph)
}

/// Rebuilds a graph under a new name (names are immutable on `Graph`).
fn rename(old: Graph, name: &str) -> Graph {
    let mut g = Graph::new(name);
    for v in 0..old.node_count() {
        let (lat, lon) = old.node_position(v);
        g.add_node(old.node_name(v), lat, lon);
    }
    for (a, b, ms) in old.edges() {
        g.add_edge(a, b, ms).expect("edges were valid in the source graph");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{datasets, generators};

    #[test]
    fn round_trip_preserves_structure() {
        let original = generators::ring(5, 2.5).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &original).unwrap();
        let parsed = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(parsed.node_count(), original.node_count());
        assert_eq!(parsed.undirected_edge_count(), original.undirected_edge_count());
        assert_eq!(parsed.name(), "ring");
        for v in 0..original.node_count() {
            assert_eq!(parsed.node_name(v), original.node_name(v));
        }
        let mut a: Vec<_> = original.edges().collect();
        let mut b: Vec<_> = parsed.edges().collect();
        a.sort_by_key(|x| (x.0, x.1));
        b.sort_by_key(|x| (x.0, x.1));
        assert_eq!(a, b);
    }

    #[test]
    fn multi_word_city_names_are_rejected_on_write() {
        // Abilene has "Kansas City" etc.
        let err = write_edge_list(Vec::new(), &datasets::abilene()).unwrap_err();
        assert!(err.to_string().contains("whitespace"));
    }

    #[test]
    fn parses_hand_written_input() {
        let text = "\
# my network
# name: Tiny
node a 1.0 2.0
node b 3.0 4.0

edge a b 7.5
";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.name(), "Tiny");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.node_position(0), (1.0, 2.0));
        let (_, _, ms) = g.edges().next().unwrap();
        assert!((ms - 7.5).abs() < 1e-12);
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let cases = [
            "frob a b 1.0",                     // unknown directive
            "node a 1.0",                       // missing longitude
            "node a x 2.0",                     // bad latitude
            "node a 1.0 2.0 extra",             // trailing
            "node a 1.0 2.0\nnode a 1.0 2.0",   // duplicate
            "edge a b 1.0",                     // unknown nodes
            "node a 1 2\nnode b 3 4\nedge a b", // missing latency
        ];
        for text in cases {
            let err = read_edge_list(text.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("line"), "case {text:?} produced {err}");
        }
    }

    #[test]
    fn graph_level_errors_propagate() {
        let text = "node a 1 2\nnode b 3 4\nedge a a 1.0";
        assert!(matches!(read_edge_list(text.as_bytes()), Err(TopologyError::SelfLoop { .. })));
        let text = "node a 1 2\nnode b 3 4\nedge a b -1.0";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(TopologyError::InvalidWeight { .. })
        ));
    }
}
