//! Newton's method with bisection safeguards.
//!
//! The Lemma-2 residual has an analytic derivative, so Newton iterates
//! converge quadratically once near the root; the safeguard falls back
//! to bisection whenever an iterate leaves the bracket, keeping the
//! global convergence guarantee of [`crate::bisect`].

use crate::{NumericsError, Root};

const MAX_ITERS: usize = 200;

/// Safeguarded Newton–bisection on `[lo, hi]`: requires a sign change
/// like [`crate::bisect`], uses `df` for Newton steps, and falls back
/// to bisection when a step leaves the current bracket or the
/// derivative vanishes.
///
/// # Errors
///
/// Same contract as [`crate::bisect`]: malformed interval/tolerance,
/// no sign change, non-finite values, or iteration exhaustion.
pub fn newton_bisect(
    f: impl Fn(f64) -> f64,
    df: impl Fn(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<Root, NumericsError> {
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(NumericsError::InvalidInterval { lo, hi });
    }
    if !tol.is_finite() || tol <= 0.0 {
        return Err(NumericsError::InvalidTolerance { tol });
    }
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if !f_lo.is_finite() {
        return Err(NumericsError::NonFiniteValue { at: lo });
    }
    if !f_hi.is_finite() {
        return Err(NumericsError::NonFiniteValue { at: hi });
    }
    if f_lo == 0.0 {
        return Ok(Root { x: lo, f_x: 0.0, iterations: 0 });
    }
    if f_hi == 0.0 {
        return Ok(Root { x: hi, f_x: 0.0, iterations: 0 });
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(NumericsError::NoSignChange { f_lo, f_hi });
    }
    let mut x = 0.5 * (lo + hi);
    for i in 1..=MAX_ITERS {
        let fx = f(x);
        if !fx.is_finite() {
            return Err(NumericsError::NonFiniteValue { at: x });
        }
        if fx == 0.0 || (hi - lo) < tol {
            return Ok(Root { x, f_x: fx, iterations: i });
        }
        // Maintain the bracket.
        if fx.signum() == f_lo.signum() {
            lo = x;
            f_lo = fx;
        } else {
            hi = x;
        }
        // Newton step, safeguarded into the bracket.
        let d = df(x);
        let newton = if d != 0.0 && d.is_finite() { x - fx / d } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi { newton } else { 0.5 * (lo + hi) };
    }
    Err(NumericsError::DidNotConverge { best: x, iterations: MAX_ITERS })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bisect;

    #[test]
    fn converges_quadratically_on_smooth_roots() {
        let f = |x: f64| x * x - 2.0;
        let df = |x: f64| 2.0 * x;
        let newton = newton_bisect(f, df, 0.0, 2.0, 1e-14).unwrap();
        assert!((newton.x - std::f64::consts::SQRT_2).abs() < 1e-12);
        let plain = bisect(f, 0.0, 2.0, 1e-14).unwrap();
        assert!(
            newton.iterations < plain.iterations / 2,
            "newton {} vs bisect {}",
            newton.iterations,
            plain.iterations
        );
    }

    #[test]
    fn survives_bad_derivatives() {
        // A derivative that is zero half the time still converges via
        // the bisection fallback.
        let f = |x: f64| x.powi(3) - 1.0;
        let df = |x: f64| if x < 1.0 { 0.0 } else { 3.0 * x * x };
        let r = newton_bisect(f, df, 0.0, 2.0, 1e-12).unwrap();
        assert!((r.x - 1.0).abs() < 1e-10);
    }

    #[test]
    fn lemma2_residual_with_analytic_derivative() {
        // g(l) = a l^{-s} - (1-l)^{-s} - b, g'(l) = -a s l^{-s-1} - s (1-l)^{-s-1}.
        let (a, b, s) = (9.1, 4.0, 0.8);
        let g = move |l: f64| a * l.powf(-s) - (1.0 - l).powf(-s) - b;
        let dg = move |l: f64| -a * s * l.powf(-s - 1.0) - s * (1.0 - l).powf(-s - 1.0);
        let r = newton_bisect(g, dg, 1e-9, 1.0 - 1e-9, 1e-14).unwrap();
        assert!(g(r.x).abs() < 1e-9);
        let check = bisect(g, 1e-9, 1.0 - 1e-9, 1e-14).unwrap();
        assert!((r.x - check.x).abs() < 1e-10);
    }

    #[test]
    fn shares_the_bisect_error_contract() {
        assert!(matches!(
            newton_bisect(|x| x * x + 1.0, |x| 2.0 * x, -1.0, 1.0, 1e-9),
            Err(NumericsError::NoSignChange { .. })
        ));
        assert!(matches!(
            newton_bisect(|x| x, |_| 1.0, 1.0, 0.0, 1e-9),
            Err(NumericsError::InvalidInterval { .. })
        ));
        assert!(matches!(
            newton_bisect(|x| x, |_| 1.0, -1.0, 1.0, 0.0),
            Err(NumericsError::InvalidTolerance { .. })
        ));
    }

    #[test]
    fn endpoint_roots_short_circuit() {
        let r = newton_bisect(|x| x - 1.0, |_| 1.0, 1.0, 2.0, 1e-9).unwrap();
        assert_eq!(r.x, 1.0);
        assert_eq!(r.iterations, 0);
    }
}
