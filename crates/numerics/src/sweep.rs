//! Parameter sweep drivers.
//!
//! Every figure in the paper's evaluation section is a sweep of the
//! optimal strategy or a gain metric over one parameter while others
//! are held at the Table-IV defaults. [`sweep`] runs a closure over a
//! grid sequentially; [`sweep_parallel`] fans the grid out across
//! threads with `std::thread::scope` (the closure only needs `Sync`,
//! no `'static` bound, so figure code can borrow locals).

/// Builds a uniformly spaced grid of `points` values covering
/// `[lo, hi]` inclusive.
///
/// # Panics
///
/// Panics if `points == 0` or the interval is malformed.
#[must_use]
pub fn linspace(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(points > 0, "need at least one grid point");
    assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "malformed interval");
    if points == 1 {
        return vec![lo];
    }
    let h = (hi - lo) / (points - 1) as f64;
    (0..points).map(|i| lo + i as f64 * h).collect()
}

/// Builds a logarithmically spaced grid of `points` values covering
/// `[lo, hi]` inclusive, `lo > 0`.
///
/// # Panics
///
/// Panics if `points == 0` or `lo <= 0` or `hi < lo`.
#[must_use]
pub fn logspace(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi >= lo, "logspace needs 0 < lo <= hi");
    linspace(lo.ln(), hi.ln(), points).into_iter().map(f64::exp).collect()
}

/// Evaluates `f` at every grid point, returning `(x, f(x))` pairs in
/// grid order.
pub fn sweep<T>(grid: &[f64], mut f: impl FnMut(f64) -> T) -> Vec<(f64, T)> {
    grid.iter().map(|&x| (x, f(x))).collect()
}

/// Applies `f` to every item across `threads` scoped workers,
/// returning results in item order — the generic fan-out primitive
/// under [`sweep_parallel`] and the experiment runner in `ccn-bench`.
///
/// Items are split into contiguous chunks, one per worker. The closure
/// is shared by reference, so it must be `Sync`; results must be
/// `Send`. No `'static` bound: callers can borrow locals. Falls back
/// to sequential evaluation when `threads <= 1` or there is at most
/// one item.
pub fn parallel_map<I: Sync, T: Send>(
    items: &[I],
    threads: usize,
    f: impl Fn(&I) -> T + Sync,
) -> Vec<T> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let threads = threads.min(items.len());
    let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let chunk = items.len().div_ceil(threads);
        let mut rest = slots.as_mut_slice();
        let mut offset = 0;
        for _ in 0..threads {
            let take = chunk.min(rest.len());
            if take == 0 {
                break;
            }
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = offset;
            offset += take;
            let f = &f;
            scope.spawn(move || {
                for (i, slot) in head.iter_mut().enumerate() {
                    *slot = Some(f(&items[base + i]));
                }
            });
        }
    });
    slots.into_iter().map(|s| s.expect("all slots filled")).collect()
}

/// Parallel variant of [`sweep`]: grid points are distributed across
/// `threads` workers via [`parallel_map`]; results come back in grid
/// order.
pub fn sweep_parallel<T: Send>(
    grid: &[f64],
    threads: usize,
    f: impl Fn(f64) -> T + Sync,
) -> Vec<(f64, T)> {
    parallel_map(grid, threads, |&x| (x, f(x)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(3.0, 3.0, 1), vec![3.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let g = logspace(1.0, 100.0, 3);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 10.0).abs() < 1e-9);
        assert!((g[2] - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_linspace_panics() {
        let _ = linspace(0.0, 1.0, 0);
    }

    #[test]
    fn sequential_sweep_preserves_order() {
        let grid = linspace(0.0, 4.0, 5);
        let out = sweep(&grid, |x| x * x);
        assert_eq!(out.len(), 5);
        assert_eq!(out[3], (3.0, 9.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let grid = linspace(0.0, 10.0, 137);
        let seq = sweep(&grid, |x| (x.sin() * 1e6).round());
        for threads in [1, 2, 3, 8, 200] {
            let par = sweep_parallel(&grid, threads, |x| (x.sin() * 1e6).round());
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn parallel_closure_can_borrow_locals() {
        let offset = 5.0;
        let grid = linspace(0.0, 1.0, 16);
        let out = sweep_parallel(&grid, 4, |x| x + offset);
        assert!((out[0].1 - 5.0).abs() < 1e-12);
        assert!((out[15].1 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_map_over_non_numeric_items() {
        let items: Vec<String> = (0..37).map(|i| format!("item-{i}")).collect();
        let seq: Vec<usize> = items.iter().map(String::len).collect();
        for threads in [1, 2, 5, 64] {
            let par = parallel_map(&items, threads, |s| s.len());
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x * 2).is_empty());
        assert_eq!(parallel_map(&[21u32], 4, |&x| x * 2), vec![42]);
    }
}
