//! Minimization of convex one-dimensional objectives.
//!
//! Lemma 1 of the paper proves `T_w(x)` is convex on `[0, c]`, so its
//! minimum is found exactly by golden-section search; when the
//! unconstrained minimizer falls outside `[0, c]`, the search converges
//! to the correct boundary automatically (the objective is monotone on
//! the interval in that case).

use crate::NumericsError;

/// A located minimum of a scalar function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Minimum {
    /// Abscissa of the minimum.
    pub argmin: f64,
    /// Objective value at [`Minimum::argmin`].
    pub value: f64,
    /// Iterations consumed.
    pub iterations: usize,
}

const MAX_ITERS: usize = 500;
const INV_PHI: f64 = 0.618_033_988_749_894_9;

/// Golden-section search for the minimum of a convex `f` on `[lo, hi]`.
///
/// Tolerance is on the abscissa: the returned `argmin` is within `tol`
/// of the true minimizer (for convex `f`). Boundary minima are
/// returned exactly at the boundary when the interior probes are
/// monotone toward it.
///
/// # Errors
///
/// - [`NumericsError::InvalidInterval`] / [`NumericsError::InvalidTolerance`]
///   for malformed inputs;
/// - [`NumericsError::NonFiniteValue`] when `f` returns NaN/∞ at a probe.
pub fn minimize_convex(
    f: impl Fn(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<Minimum, NumericsError> {
    if !lo.is_finite() || !hi.is_finite() || lo > hi {
        return Err(NumericsError::InvalidInterval { lo, hi });
    }
    if !tol.is_finite() || tol <= 0.0 {
        return Err(NumericsError::InvalidTolerance { tol });
    }
    if lo == hi {
        let v = f(lo);
        if !v.is_finite() {
            return Err(NumericsError::NonFiniteValue { at: lo });
        }
        return Ok(Minimum { argmin: lo, value: v, iterations: 0 });
    }
    let probe = |x: f64| -> Result<f64, NumericsError> {
        let v = f(x);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(NumericsError::NonFiniteValue { at: x })
        }
    };
    let (orig_lo, orig_hi) = (lo, hi);
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let mut fc = probe(c)?;
    let mut fd = probe(d)?;
    let mut iterations = 0;
    while (hi - lo) > tol && iterations < MAX_ITERS {
        iterations += 1;
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = probe(c)?;
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = probe(d)?;
        }
    }
    // Always probe the original endpoints: convex boundary minima
    // otherwise land `tol` inside the interval, and mild boundary
    // non-convexities (e.g. CDF clamping kinks in the cache model)
    // can hide a lower value exactly at an endpoint.
    let mid = 0.5 * (lo + hi);
    let mut best = Minimum { argmin: mid, value: probe(mid)?, iterations };
    for &x in &[orig_lo, orig_hi] {
        let v = probe(x)?;
        if v < best.value {
            best = Minimum { argmin: x, value: v, iterations };
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn finds_interior_minimum() {
        let m = minimize_convex(|x| (x - 3.0) * (x - 3.0) + 1.0, 0.0, 10.0, 1e-10).unwrap();
        assert!((m.argmin - 3.0).abs() < 1e-6);
        assert!((m.value - 1.0).abs() < 1e-10);
    }

    #[test]
    fn finds_left_boundary_minimum() {
        // Monotone increasing on [0, 1]: minimum at 0 exactly.
        let m = minimize_convex(|x| x + 1.0, 0.0, 1.0, 1e-10).unwrap();
        assert_eq!(m.argmin, 0.0);
        assert!((m.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finds_right_boundary_minimum() {
        let m = minimize_convex(|x| -x, 0.0, 1.0, 1e-10).unwrap();
        assert_eq!(m.argmin, 1.0);
        assert!((m.value + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_interval_is_ok() {
        let m = minimize_convex(|x| x * x, 2.0, 2.0, 1e-10).unwrap();
        assert_eq!(m.argmin, 2.0);
        assert_eq!(m.value, 4.0);
        assert_eq!(m.iterations, 0);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(minimize_convex(|x| x, 1.0, 0.0, 1e-9).is_err());
        assert!(minimize_convex(|x| x, 0.0, 1.0, 0.0).is_err());
        assert!(minimize_convex(|x| x, f64::INFINITY, 1.0, 1e-9).is_err());
    }

    #[test]
    fn surfaces_non_finite_objective() {
        let r = minimize_convex(|_| f64::NAN, 0.0, 1.0, 1e-9);
        assert!(matches!(r, Err(NumericsError::NonFiniteValue { .. })));
    }

    /// Objective shaped like the paper's `T_w`: a sum of two opposing
    /// power-law terms plus a linear cost, convex with an interior
    /// minimum.
    #[test]
    fn paper_shaped_objective() {
        let c = 1000.0;
        let n = 20.0;
        let f = |x: f64| {
            let local = (c - x).max(1e-9);
            let coop = c + (n - 1.0) * x;
            -local.powf(0.2) - 4.0 * coop.powf(0.2) + 0.0005 * x
        };
        let m = minimize_convex(f, 0.0, c, 1e-9).unwrap();
        assert!(m.argmin > 0.0 && m.argmin < c);
        // First-order check via finite differences.
        let h = 1e-4;
        let g = (f(m.argmin + h) - f(m.argmin - h)) / (2.0 * h);
        assert!(g.abs() < 1e-3, "gradient at minimum: {g}");
    }

    proptest! {
        #[test]
        fn quadratic_minima_recovered(center in -50.0f64..50.0, scale in 0.01f64..100.0) {
            let f = move |x: f64| scale * (x - center) * (x - center);
            let m = minimize_convex(f, -100.0, 100.0, 1e-9).unwrap();
            prop_assert!((m.argmin - center).abs() < 1e-5);
        }

        #[test]
        fn clamps_to_boundary_when_minimizer_outside(center in 20.0f64..100.0) {
            let f = move |x: f64| (x - center) * (x - center);
            let m = minimize_convex(f, 0.0, 10.0, 1e-9).unwrap();
            prop_assert!((m.argmin - 10.0).abs() < 1e-6);
        }
    }
}
