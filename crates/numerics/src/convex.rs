//! Empirical convexity probing.
//!
//! Lemma 1 of the paper asserts the objective `T_w(x)` is convex on
//! `[0, c]` under mild parameter conditions. `ccn-model::verify` uses
//! [`convexity_report`] to check this claim numerically across the
//! whole Table-IV parameter grid: a convex function has non-negative
//! second differences at every interior grid point.

/// Result of probing a function for convexity on a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexityReport {
    /// Number of interior grid points probed.
    pub points: usize,
    /// Most negative second difference observed (0 if none negative).
    pub worst_violation: f64,
    /// Grid abscissa of the worst violation, if any.
    pub worst_at: Option<f64>,
    /// Relative tolerance used to ignore floating-point noise.
    pub tolerance: f64,
}

impl ConvexityReport {
    /// Whether the function passed the convexity probe.
    #[must_use]
    pub fn is_convex(&self) -> bool {
        self.worst_at.is_none()
    }
}

/// Probes `f` for convexity on `[lo, hi]` with `points` uniformly
/// spaced samples.
///
/// Second differences `f(x−h) − 2f(x) + f(x+h)` are required to be
/// `>= −tol·scale` where `scale` is the largest absolute sampled value;
/// this ignores floating-point noise on nearly linear stretches.
///
/// # Panics
///
/// Panics if `points < 3` or the interval is malformed; this is a
/// diagnostic tool and misuse is a programming error.
#[must_use]
pub fn convexity_report(
    f: impl Fn(f64) -> f64,
    lo: f64,
    hi: f64,
    points: usize,
    tol: f64,
) -> ConvexityReport {
    assert!(points >= 3, "need at least 3 grid points");
    assert!(lo.is_finite() && hi.is_finite() && lo < hi, "malformed interval");
    let h = (hi - lo) / (points - 1) as f64;
    let values: Vec<f64> = (0..points).map(|i| f(lo + i as f64 * h)).collect();
    let scale = values.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    let threshold = -tol * scale;
    let mut worst = 0.0f64;
    let mut worst_at = None;
    for i in 1..points - 1 {
        let second = values[i - 1] - 2.0 * values[i] + values[i + 1];
        if second < threshold && second < worst {
            worst = second;
            worst_at = Some(lo + i as f64 * h);
        }
    }
    ConvexityReport { points: points - 2, worst_violation: worst, worst_at, tolerance: tol }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_is_convex() {
        let r = convexity_report(|x| x * x, -5.0, 5.0, 101, 1e-12);
        assert!(r.is_convex());
        assert_eq!(r.points, 99);
    }

    #[test]
    fn linear_is_convex_despite_noise() {
        let r = convexity_report(|x| 3.0 * x + 1e9, 0.0, 1.0, 101, 1e-9);
        assert!(r.is_convex(), "violation {}", r.worst_violation);
    }

    #[test]
    fn sine_is_not_convex() {
        let r = convexity_report(f64::sin, 0.0, std::f64::consts::TAU, 101, 1e-12);
        assert!(!r.is_convex());
        assert!(r.worst_violation < 0.0);
        // Sine is concave on (0, pi): the violation must be found there.
        let at = r.worst_at.unwrap();
        assert!(at > 0.0 && at < std::f64::consts::PI);
    }

    #[test]
    fn paper_objective_shape_is_convex() {
        // -a(c-x)^{1-s} - b(c+(n-1)x)^{1-s} + w x, s in (0,1): convex.
        let (c, n, s) = (1000.0, 20.0, 0.8);
        let f = move |x: f64| {
            -(c - x).max(1e-9).powf(1.0 - s) - 4.0 * (c + (n - 1.0) * x).powf(1.0 - s) + 0.01 * x
        };
        let r = convexity_report(f, 0.0, c - 1.0, 501, 1e-10);
        assert!(r.is_convex(), "violation {} at {:?}", r.worst_violation, r.worst_at);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_points_panics() {
        let _ = convexity_report(|x| x, 0.0, 1.0, 2, 1e-9);
    }

    #[test]
    #[should_panic(expected = "malformed interval")]
    fn reversed_interval_panics() {
        let _ = convexity_report(|x| x, 1.0, 0.0, 10, 1e-9);
    }
}
