//! Summary statistics for repeated-trial experiments.
//!
//! Simulation metrics are random variables of the workload seed;
//! honest evaluation reports them with dispersion. This module gives
//! the small toolkit the examples and experiment binaries use: sample
//! mean/variance, quantiles, and normal-approximation confidence
//! intervals over per-seed results.

/// Summary of a sample of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 for fewer than two
    /// observations).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty sample; returns `None` when empty or any
    /// observation is non-finite.
    #[must_use]
    pub fn of(sample: &[f64]) -> Option<Summary> {
        if sample.is_empty() || sample.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = sample.len() as f64;
        let mean = sample.iter().sum::<f64>() / n;
        let var = if sample.len() < 2 {
            0.0
        } else {
            sample.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
        };
        Some(Summary {
            count: sample.len(),
            mean,
            std_dev: var.sqrt(),
            min: sample.iter().copied().fold(f64::INFINITY, f64::min),
            max: sample.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }

    /// Half-width of the normal-approximation confidence interval at
    /// the given z-score (1.96 ≈ 95%); 0 for single observations.
    #[must_use]
    pub fn ci_half_width(&self, z: f64) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        z * self.std_dev / (self.count as f64).sqrt()
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation
/// between order statistics; `None` for empty or non-finite samples.
#[must_use]
pub fn quantile(sample: &[f64], q: f64) -> Option<f64> {
    if sample.is_empty() || sample.iter().any(|v| !v.is_finite()) || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Unbiased std dev of this classic sample is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 1e-3);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn degenerate_samples() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        let single = Summary::of(&[3.0]).unwrap();
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.ci_half_width(1.96), 0.0);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let big_sample: Vec<f64> = (0..64).map(|i| 1.0 + 3.0 * (i % 4) as f64 / 3.0).collect();
        let big = Summary::of(&big_sample).unwrap();
        assert!(big.ci_half_width(1.96) < small.ci_half_width(1.96));
    }

    #[test]
    fn quantiles_interpolate() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&sample, 0.0), Some(1.0));
        assert_eq!(quantile(&sample, 1.0), Some(5.0));
        assert_eq!(quantile(&sample, 0.5), Some(3.0));
        assert_eq!(quantile(&sample, 0.25), Some(2.0));
        assert!((quantile(&sample, 0.9).unwrap() - 4.6).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_none());
        assert!(quantile(&sample, 1.5).is_none());
    }
}
