//! Numerical substrate for the CCN coordinated-caching reproduction.
//!
//! The paper's optimal strategy is characterized three ways, each with
//! different numerical needs:
//!
//! 1. Exact minimization of the convex objective `T_w(x)` over
//!    `[0, c]` — [`minimize`] (golden-section with boundary handling);
//! 2. The Lemma-2 fixed-point condition `a·ℓ^{-s} = (1-ℓ)^{-s} + b`,
//!    solved by bracketed root finding — [`roots`] (bisection, Brent);
//! 3. Verification of Lemma 1 (convexity) — [`convex`] probes second
//!    differences on a grid, and [`derivative`] provides central
//!    finite differences.
//!
//! [`sweep`] drives the evaluation section's parameter sweeps across
//! threads.
//!
//! # Example
//!
//! ```
//! use ccn_numerics::{minimize_convex, brent};
//!
//! # fn main() -> Result<(), ccn_numerics::NumericsError> {
//! let min = minimize_convex(|x| (x - 3.0) * (x - 3.0), 0.0, 10.0, 1e-10)?;
//! assert!((min.argmin - 3.0).abs() < 1e-6);
//!
//! let root = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-12)?;
//! assert!((root.x - 2f64.sqrt()).abs() < 1e-10);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod convex;
pub mod derivative;
pub mod minimize;
pub mod newton;
pub mod roots;
pub mod stats;
pub mod sweep;

mod error;

pub use convex::{convexity_report, ConvexityReport};
pub use derivative::{second_derivative, slope};
pub use error::NumericsError;
pub use minimize::{minimize_convex, Minimum};
pub use newton::newton_bisect;
pub use roots::{bisect, brent, Root};
pub use sweep::{parallel_map, sweep_parallel};
