use std::error::Error;
use std::fmt;

/// Errors produced by the numerical routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// The search interval was empty, reversed, or non-finite.
    InvalidInterval {
        /// Lower endpoint supplied.
        lo: f64,
        /// Upper endpoint supplied.
        hi: f64,
    },
    /// A root finder was called on an interval whose endpoint values do
    /// not bracket a sign change.
    NoSignChange {
        /// Function value at the lower endpoint.
        f_lo: f64,
        /// Function value at the upper endpoint.
        f_hi: f64,
    },
    /// The iteration budget was exhausted before reaching tolerance.
    DidNotConverge {
        /// Best abscissa at the point of failure.
        best: f64,
        /// Iterations consumed.
        iterations: usize,
    },
    /// The objective returned a non-finite value during the search.
    NonFiniteValue {
        /// Abscissa at which the objective was non-finite.
        at: f64,
    },
    /// The requested tolerance was zero, negative, or non-finite.
    InvalidTolerance {
        /// The rejected tolerance.
        tol: f64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::InvalidInterval { lo, hi } => {
                write!(f, "invalid search interval [{lo}, {hi}]")
            }
            NumericsError::NoSignChange { f_lo, f_hi } => {
                write!(f, "endpoint values {f_lo} and {f_hi} do not bracket a sign change")
            }
            NumericsError::DidNotConverge { best, iterations } => {
                write!(f, "did not converge after {iterations} iterations (best abscissa {best})")
            }
            NumericsError::NonFiniteValue { at } => {
                write!(f, "objective returned a non-finite value at {at}")
            }
            NumericsError::InvalidTolerance { tol } => {
                write!(f, "invalid tolerance {tol}: must be a finite positive value")
            }
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NumericsError::NoSignChange { f_lo: 1.0, f_hi: 2.0 };
        assert!(e.to_string().contains("sign change"));
        let e = NumericsError::InvalidInterval { lo: 2.0, hi: 1.0 };
        assert!(e.to_string().contains('['));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
