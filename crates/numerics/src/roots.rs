//! Bracketed root finding: bisection and Brent's method.
//!
//! The Lemma-2 optimality condition `g(ℓ) = a·ℓ^{-s} − (1−ℓ)^{-s} − b`
//! is strictly decreasing on `(0, 1)` with `g(0+) = +∞` and
//! `g(1−) = −∞` (Theorem 1), so any bracketing solver converges to the
//! unique crossing. Brent's method is the default; bisection is kept
//! both as a fallback and as an independent cross-check in tests.

use crate::NumericsError;

/// A located root.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Root {
    /// Abscissa of the root.
    pub x: f64,
    /// Function value at `x` (residual).
    pub f_x: f64,
    /// Iterations consumed.
    pub iterations: usize,
}

const MAX_ITERS: usize = 500;

fn check_interval(lo: f64, hi: f64, tol: f64) -> Result<(), NumericsError> {
    if !lo.is_finite() || !hi.is_finite() || lo >= hi {
        return Err(NumericsError::InvalidInterval { lo, hi });
    }
    if !tol.is_finite() || tol <= 0.0 {
        return Err(NumericsError::InvalidTolerance { tol });
    }
    Ok(())
}

/// Bisection on `[lo, hi]`, assuming `f(lo)` and `f(hi)` have opposite
/// signs.
///
/// # Errors
///
/// - [`NumericsError::InvalidInterval`] / [`NumericsError::InvalidTolerance`]
///   for malformed inputs;
/// - [`NumericsError::NoSignChange`] when the endpoints do not bracket;
/// - [`NumericsError::NonFiniteValue`] when `f` returns NaN/∞;
/// - [`NumericsError::DidNotConverge`] if the interval has not shrunk
///   below `tol` within the iteration budget.
pub fn bisect(
    f: impl Fn(f64) -> f64,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
) -> Result<Root, NumericsError> {
    check_interval(lo, hi, tol)?;
    let mut f_lo = f(lo);
    let f_hi = f(hi);
    if !f_lo.is_finite() {
        return Err(NumericsError::NonFiniteValue { at: lo });
    }
    if !f_hi.is_finite() {
        return Err(NumericsError::NonFiniteValue { at: hi });
    }
    if f_lo == 0.0 {
        return Ok(Root { x: lo, f_x: 0.0, iterations: 0 });
    }
    if f_hi == 0.0 {
        return Ok(Root { x: hi, f_x: 0.0, iterations: 0 });
    }
    if f_lo.signum() == f_hi.signum() {
        return Err(NumericsError::NoSignChange { f_lo, f_hi });
    }
    for i in 1..=MAX_ITERS {
        let mid = 0.5 * (lo + hi);
        let f_mid = f(mid);
        if !f_mid.is_finite() {
            return Err(NumericsError::NonFiniteValue { at: mid });
        }
        if f_mid == 0.0 || (hi - lo) < tol {
            return Ok(Root { x: mid, f_x: f_mid, iterations: i });
        }
        if f_mid.signum() == f_lo.signum() {
            lo = mid;
            f_lo = f_mid;
        } else {
            hi = mid;
        }
    }
    Err(NumericsError::DidNotConverge { best: 0.5 * (lo + hi), iterations: MAX_ITERS })
}

/// Brent's method on `[lo, hi]`: inverse quadratic interpolation with
/// bisection safeguards. Typically an order of magnitude fewer function
/// evaluations than bisection at the same tolerance.
///
/// # Errors
///
/// Same contract as [`bisect`].
pub fn brent(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> Result<Root, NumericsError> {
    check_interval(lo, hi, tol)?;
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() {
        return Err(NumericsError::NonFiniteValue { at: a });
    }
    if !fb.is_finite() {
        return Err(NumericsError::NonFiniteValue { at: b });
    }
    if fa == 0.0 {
        return Ok(Root { x: a, f_x: 0.0, iterations: 0 });
    }
    if fb == 0.0 {
        return Ok(Root { x: b, f_x: 0.0, iterations: 0 });
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::NoSignChange { f_lo: fa, f_hi: fb });
    }
    // Ensure |f(b)| <= |f(a)|: b is the current best.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for i in 1..=MAX_ITERS {
        if fb == 0.0 || (b - a).abs() < tol {
            return Ok(Root { x: b, f_x: fb, iterations: i });
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant step.
            b - fb * (b - a) / (fb - fa)
        };
        let lo_bound = (3.0 * a + b) / 4.0;
        let in_bounds = if lo_bound < b { s > lo_bound && s < b } else { s > b && s < lo_bound };
        let bisect_instead = !in_bounds
            || (mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            || (!mflag && (s - b).abs() >= d.abs() / 2.0)
            || (mflag && (b - c).abs() < tol)
            || (!mflag && d.abs() < tol);
        if bisect_instead {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        if !fs.is_finite() {
            return Err(NumericsError::NonFiniteValue { at: s });
        }
        d = b - c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericsError::DidNotConverge { best: b, iterations: MAX_ITERS })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2_faster() {
        let b = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r.x - std::f64::consts::SQRT_2).abs() < 1e-10);
        assert!(r.iterations < b.iterations, "brent {} vs bisect {}", r.iterations, b.iterations);
    }

    #[test]
    fn exact_root_at_endpoint_short_circuits() {
        let r = brent(|x| x, 0.0, 1.0, 1e-12).unwrap();
        assert_eq!(r.x, 0.0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn rejects_non_bracketing_interval() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(NumericsError::NoSignChange { .. })
        ));
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(NumericsError::NoSignChange { .. })
        ));
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(brent(|x| x, 1.0, 0.0, 1e-9), Err(NumericsError::InvalidInterval { .. })));
        assert!(matches!(
            brent(|x| x, 0.0, 1.0, -1.0),
            Err(NumericsError::InvalidTolerance { .. })
        ));
        assert!(matches!(
            brent(|x| x, f64::NAN, 1.0, 1e-9),
            Err(NumericsError::InvalidInterval { .. })
        ));
    }

    #[test]
    fn surfaces_non_finite_objective() {
        let r = brent(|x| if x > 0.5 { f64::NAN } else { -1.0 }, 0.0, 1.0, 1e-9);
        assert!(matches!(r, Err(NumericsError::NonFiniteValue { .. })));
    }

    /// Shape of the Lemma-2 residual: steep power-law blow-ups at both
    /// ends, exactly what the paper's equation (7) produces.
    #[test]
    fn solves_lemma2_shaped_equation() {
        let (a, b, s) = (3.5, 120.0, 0.8);
        let g = |l: f64| a * l.powf(-s) - (1.0 - l).powf(-s) - b;
        let eps = 1e-12;
        let r = brent(g, eps, 1.0 - eps, 1e-14).unwrap();
        assert!(r.x > 0.0 && r.x < 1.0);
        assert!(g(r.x).abs() < 1e-6, "residual {}", g(r.x));
        let r2 = bisect(g, eps, 1.0 - eps, 1e-14).unwrap();
        assert!((r.x - r2.x).abs() < 1e-9, "brent and bisect agree");
    }

    proptest! {
        /// Both solvers find the root of a random monotone cubic.
        #[test]
        fn agree_on_random_monotone_cubics(root in -5.0f64..5.0, scale in 0.1f64..10.0) {
            let f = move |x: f64| scale * (x - root) * ((x - root).powi(2) + 1.0);
            let b = bisect(f, -10.0, 10.0, 1e-12).unwrap();
            let br = brent(f, -10.0, 10.0, 1e-12).unwrap();
            prop_assert!((b.x - root).abs() < 1e-8);
            prop_assert!((br.x - root).abs() < 1e-8);
        }
    }
}
