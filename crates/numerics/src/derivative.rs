//! Central finite differences.
//!
//! Used by `ccn-model::verify` to cross-check the paper's analytical
//! first- and second-order derivatives of `T_w` (Appendix A) against
//! numerical differentiation, and by the sensitivity analysis of the
//! optimal strategy (`dℓ*/dα`).

/// Central-difference estimate of `f'(x)` with step `h`.
///
/// Uses the symmetric two-point stencil `(f(x+h) − f(x−h)) / 2h`,
/// accurate to `O(h²)` for smooth `f`.
#[must_use]
pub fn slope(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    (f(x + h) - f(x - h)) / (2.0 * h)
}

/// Central-difference estimate of `f''(x)` with step `h`:
/// `(f(x+h) − 2 f(x) + f(x−h)) / h²`, accurate to `O(h²)`.
#[must_use]
pub fn second_derivative(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h)
}

/// Richardson-extrapolated first derivative: combines steps `h` and
/// `h/2` to cancel the leading `O(h²)` error term, yielding `O(h⁴)`.
#[must_use]
pub fn slope_richardson(f: impl Fn(f64) -> f64, x: f64, h: f64) -> f64 {
    let coarse = slope(&f, x, h);
    let fine = slope(&f, x, h / 2.0);
    (4.0 * fine - coarse) / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic() {
        let f = |x: f64| 3.0 * x * x + 2.0 * x + 1.0;
        assert!((slope(f, 2.0, 1e-5) - 14.0).abs() < 1e-6);
    }

    #[test]
    fn second_derivative_of_quadratic_is_constant() {
        let f = |x: f64| 3.0 * x * x;
        for &x in &[-5.0, 0.0, 7.5] {
            assert!((second_derivative(f, x, 1e-4) - 6.0).abs() < 1e-4);
        }
    }

    #[test]
    fn richardson_beats_plain_slope_on_exp() {
        let x: f64 = 1.0;
        let h = 1e-2;
        let truth = x.exp();
        let plain = (slope(f64::exp, x, h) - truth).abs();
        let rich = (slope_richardson(f64::exp, x, h) - truth).abs();
        assert!(rich < plain / 10.0, "richardson {rich} vs plain {plain}");
    }

    #[test]
    fn power_law_derivatives_match_closed_form() {
        // d/dx x^{-s} = -s x^{-s-1}; d²/dx² = s(s+1) x^{-s-2}.
        let s = 0.8;
        let f = move |x: f64| x.powf(-s);
        let x = 5.0;
        assert!((slope(f, x, 1e-5) - (-s * x.powf(-s - 1.0))).abs() < 1e-8);
        assert!((second_derivative(f, x, 1e-4) - s * (s + 1.0) * x.powf(-s - 2.0)).abs() < 1e-6);
    }
}
